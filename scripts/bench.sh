#!/usr/bin/env bash
# Perf trajectory harness for the PR sequence.
#
# Runs the criterion micro-benchmarks (event dispatch, flow-link churn
# virtual-vs-reference, arena-reuse vs fresh-build campaign runs, grid
# sweep vs serial cells, scalar vs SoA analytic evaluation) and the
# end-to-end campaign + grid-sweep timers, then folds the
# machine-parsable CRITERION_JSON / CAMPAIGN_JSON / GRID_JSON /
# METRICS_JSON lines into one snapshot (default BENCH_pr9.json; earlier
# BENCH_pr<N>.json files are kept as the perf trajectory across the PR
# sequence):
#
#   median_ns_per_event            engine dispatch cost
#   events_per_sec                 its reciprocal
#   flow_churn_speedup_vs_reference  virtual-time link vs O(n) reference
#   arena_reuse_speedup[_fluid]    warm RunArena run vs fresh-build run
#   runs_per_sec / runs_per_sec_fluid  1000-run P2/XGC campaign throughput
#   grid_speedup                   4-cell POP sweep: one grid pool vs
#                                  serial per-cell campaigns (bit-
#                                  identical results, asserted)
#   grid_cells_per_sec             grid sweep throughput on that sweep
#   grid_trace_cache_hit_rate      share of unit executions served from
#                                  a worker's cached per-run trace
#   analytic_cells_per_s           SoA-batched Eq. (4)-(8) evaluation
#                                  throughput on a 2^20-cell (α, σ) grid
#   analytic_batch_speedup         that batch vs per-cell scalar calls
#   prefilter_prune_rate           share of the 4-cell POP crossover
#                                  sweep answered analytically
#                                  (PCKPT_PREFILTER tier)
#   variance_reduction_speedup     runs-to-±1%-CI on the Fig.-4 sweep:
#                                  fixed uniform provisioning vs the
#                                  adaptive antithetic+stratified engine
#   adaptive_runs_saved_pct        share of the sweep the per-cell CI
#                                  stopping rule alone saved
#   vr_ci_rel_*                    attained relative CI per strategy
#                                  (plain / antithetic / stratified /
#                                  both) at one fixed POP budget
#   shard_speedup                  Fig.-4 sweep, one single-threaded
#                                  process vs 2 single-threaded shard
#                                  subprocesses with a bit-identical
#                                  coordinator merge (≤ 1x on a
#                                  single-core host — see bench_grid)
#   shard_reexecutions             shard children re-executed by the
#                                  coordinator's failure recovery (0 on
#                                  a healthy run)
#   cache_hit_speedup              Fig.-4 sweep through the campaign
#                                  service: cold compute vs warm
#                                  content-addressed cache replay
#                                  (bit-identical, digest-asserted)
#   cache_hit_rate                 share of warm-pass cells served
#                                  without simulating
#   journal_resume_overhead_pct    full-journal crash-replay wall time
#                                  as a percentage of cold compute
#
# Usage: scripts/bench.sh [output.json]
# Env:   PCKPT_RUNS (campaign size, default 1000), PCKPT_SEED,
#        PCKPT_THREADS (campaign worker threads),
#        PCKPT_BENCH_SAMPLES / PCKPT_BENCH_SAMPLE_MS (criterion shim).

set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_pr10.json}
BENCH_LOG=$(mktemp)
CAMPAIGN_LOG=$(mktemp)
trap 'rm -f "$BENCH_LOG" "$CAMPAIGN_LOG"' EXIT

echo "== criterion benches (pckpt-bench) =="
cargo bench -p pckpt-bench 2>&1 | tee "$BENCH_LOG"

echo
echo "== end-to-end campaign timing =="
cargo run --release -q -p pckpt-bench --bin bench_campaign 2>&1 | tee "$CAMPAIGN_LOG"

echo
echo "== grid sweep vs serial cells =="
cargo run --release -q -p pckpt-bench --bin bench_grid 2>&1 | tee -a "$CAMPAIGN_LOG"

echo
echo "== campaign service: cache replay + journal resume =="
cargo run --release -q -p pckpt-bench --bin bench_service 2>&1 | tee -a "$CAMPAIGN_LOG"

python3 - "$BENCH_LOG" "$CAMPAIGN_LOG" "$OUT" <<'PYEOF'
import json
import sys

bench_log, campaign_log, out_path = sys.argv[1:4]

def parse(path, tag):
    out = {}
    with open(path) as f:
        for line in f:
            if line.startswith(tag):
                rec = json.loads(line[len(tag):])
                out[rec["name"]] = rec
    return out

benches = parse(bench_log, "CRITERION_JSON ")
campaigns = parse(campaign_log, "CAMPAIGN_JSON ")
grids = parse(campaign_log, "GRID_JSON ")
metrics = parse(campaign_log, "METRICS_JSON ")

doc = {"benchmarks": benches, "campaigns": campaigns, "grids": grids,
       "metrics": metrics}

dispatch = benches.get("engine_dispatch_100k_events")
if dispatch:
    ns_per_event = dispatch["median_ns"] / 100_000
    doc["median_ns_per_event"] = round(ns_per_event, 3)
    doc["events_per_sec"] = round(1e9 / ns_per_event, 1)

virt = benches.get("flow_link_churn/virtual_1k_concurrent")
ref = benches.get("flow_link_churn/reference_1k_concurrent")
if virt and ref:
    doc["flow_churn_speedup_vs_reference"] = round(
        ref["median_ns"] / virt["median_ns"], 2
    )

for label, key in (("analytic", "arena_reuse_speedup"),
                   ("fluid", "arena_reuse_speedup_fluid")):
    warm = benches.get(f"campaign_run/arena_reuse_{label}")
    fresh = benches.get(f"campaign_run/fresh_build_{label}")
    if warm and fresh:
        doc[key] = round(fresh["median_ns"] / warm["median_ns"], 2)

if "p2_xgc_analytic" in campaigns:
    doc["runs_per_sec"] = campaigns["p2_xgc_analytic"]["runs_per_sec"]
if "p2_xgc_fluid" in campaigns:
    doc["runs_per_sec_fluid"] = campaigns["p2_xgc_fluid"]["runs_per_sec"]

# Headline grid numbers: the 4-cell POP sweep (largest per-run trace
# share, so the strongest work-elimination case of the three apps).
pop = grids.get("grid_sweep_pop")
if pop:
    doc["grid_speedup"] = pop["speedup"]
    doc["grid_cells_per_sec"] = pop["cells_per_sec"]
    doc["grid_trace_cache_hit_rate"] = pop["trace_cache_hit_rate"]

sweep_serial = benches.get("grid_sweep/serial_cells_pop")
sweep_grid = benches.get("grid_sweep/grid_pop")
if sweep_serial and sweep_grid:
    doc["grid_sweep_speedup_micro"] = round(
        sweep_serial["median_ns"] / sweep_grid["median_ns"], 2
    )

# Analytic tier: SoA batch throughput over the 2^20-cell bench grid,
# speedup vs the per-cell scalar loop, and the pre-filter prune rate on
# the POP crossover sweep.
scalar = benches.get("analytic_batch/scalar_1m")
soa = benches.get("analytic_batch/soa_1m")
if soa:
    doc["analytic_cells_per_s"] = round((1 << 20) / (soa["median_ns"] / 1e9), 1)
if scalar and soa:
    doc["analytic_batch_speedup"] = round(
        scalar["median_ns"] / soa["median_ns"], 2
    )
prefilter = grids.get("grid_prefilter_pop")
if prefilter:
    doc["prefilter_prune_rate"] = prefilter["prune_rate"]

# Variance reduction: runs-to-±1%-CI on the Fig.-4 sweep, fixed uniform
# provisioning vs adaptive antithetic+stratified allocation, plus the
# per-strategy attained-CI columns from the fixed-budget POP cell.
vr = grids.get("variance_reduction_fig4")
if vr:
    doc["variance_reduction_speedup"] = vr["variance_reduction_speedup"]
    doc["adaptive_runs_saved_pct"] = vr["adaptive_runs_saved_pct"]
    for strategy in ("plain", "antithetic", "stratified",
                     "antithetic_stratified"):
        doc[f"vr_ci_rel_{strategy}"] = vr[f"ci_rel_{strategy}"]

# Shard scale-out: the Fig.-4 sweep fanned across 2 subprocesses with a
# bit-identical coordinator merge (digest_match is asserted inside
# bench_grid before the line is even printed).
shard = grids.get("shard_scaleout_fig4")
if shard:
    doc["shard_speedup"] = shard["shard_speedup"]
    doc["shard_reexecutions"] = shard["reexecutions"]
    doc["shard_frame_bytes"] = shard["frame_bytes"]

# Campaign service: warm content-addressed replay vs cold compute, and
# crash-recovery cost through the sweep journal (both digest-asserted
# bit-identical inside bench_service before the lines are printed).
svc_cache = grids.get("service_cache_fig4")
if svc_cache:
    doc["cache_hit_speedup"] = svc_cache["cache_hit_speedup"]
    doc["cache_hit_rate"] = svc_cache["cache_hit_rate"]
svc_journal = grids.get("service_journal_fig4")
if svc_journal:
    doc["journal_resume_overhead_pct"] = svc_journal[
        "journal_resume_overhead_pct"
    ]

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")

print(f"\nwrote {out_path}")
for key in (
    "median_ns_per_event",
    "events_per_sec",
    "flow_churn_speedup_vs_reference",
    "arena_reuse_speedup",
    "arena_reuse_speedup_fluid",
    "runs_per_sec",
    "runs_per_sec_fluid",
    "grid_speedup",
    "grid_cells_per_sec",
    "grid_trace_cache_hit_rate",
    "grid_sweep_speedup_micro",
    "analytic_cells_per_s",
    "analytic_batch_speedup",
    "prefilter_prune_rate",
    "variance_reduction_speedup",
    "adaptive_runs_saved_pct",
    "vr_ci_rel_plain",
    "vr_ci_rel_antithetic",
    "vr_ci_rel_stratified",
    "vr_ci_rel_antithetic_stratified",
    "shard_speedup",
    "shard_reexecutions",
    "cache_hit_speedup",
    "cache_hit_rate",
    "journal_resume_overhead_pct",
):
    if key in doc:
        print(f"  {key}: {doc[key]}")
PYEOF

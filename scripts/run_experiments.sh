#!/usr/bin/env bash
# Runs the full experiment sweep (every table/figure binary) into
# results/, one log per binary.
#
# Usage: scripts/run_experiments.sh [binary ...]   # default: all
# Env:   PCKPT_RUNS    Monte-Carlo runs per configuration (default 1000)
#        PCKPT_SEED    master seed
#        PCKPT_THREADS campaign worker threads
#
# Exits non-zero if any experiment fails; failures are listed at the end
# rather than aborting the sweep (later experiments still produce their
# logs).
set -euo pipefail
cd "$(dirname "$0")/.."

ALL_EXPERIMENTS=(
  exp_table1 exp_fig2a exp_fig2b exp_fig2c exp_analytical
  exp_table2 exp_table4 exp_fig4 exp_fig7
  exp_fig6a exp_fig6b exp_fig6c exp_fig8 exp_obs9
  exp_ablations exp_extensions exp_table5 exp_fluid exp_sensitivity
)
EXPERIMENTS=("${@:-${ALL_EXPERIMENTS[@]}}")

echo "== building experiment binaries =="
cargo build --release -q -p pckpt-bench

mkdir -p results
FAILED=()
for exp in "${EXPERIMENTS[@]}"; do
  echo "=== $exp start $(date +%T) ==="
  # PCKPT_RUNS / PCKPT_SEED / PCKPT_THREADS propagate through the
  # environment; pass them through explicitly so `env -i`-style callers
  # and sudo wrappers behave identically.
  if ! env \
      ${PCKPT_RUNS+PCKPT_RUNS="$PCKPT_RUNS"} \
      ${PCKPT_SEED+PCKPT_SEED="$PCKPT_SEED"} \
      ${PCKPT_THREADS+PCKPT_THREADS="$PCKPT_THREADS"} \
      "./target/release/$exp" >"results/$exp.txt" 2>&1; then
    echo "$exp FAILED (see results/$exp.txt)"
    FAILED+=("$exp")
  fi
done

# Shard / re-execution accounting: every grid METRICS_JSON line now
# carries `shards` / `reexecutions` / `frame_bytes` counters (1/0/0 for
# in-process sweeps), so a sweep that silently fell back to one process
# or quietly retried children is visible in the sweep summary.
echo "== shard accounting =="
(grep -h '^METRICS_JSON ' results/*.txt 2>/dev/null || true) | python3 - <<'PYEOF'
import json
import sys

grids = reexecs = 0
for line in sys.stdin:
    rec = json.loads(line[len("METRICS_JSON "):])
    if "shards" not in rec:
        continue
    grids += 1
    reexecs += rec.get("reexecutions", 0)
    if rec["shards"] > 1 or rec.get("reexecutions", 0) > 0:
        print(f"  {rec['name']}: shards={rec['shards']} "
              f"reexecutions={rec['reexecutions']} "
              f"frame_bytes={rec.get('frame_bytes', 0)}")
print(f"  {grids} grid metric line(s), {reexecs} shard re-execution(s)")
PYEOF

echo "ALL EXPERIMENTS DONE $(date +%T)"
if ((${#FAILED[@]} > 0)); then
  echo "FAILED: ${FAILED[*]}" >&2
  exit 1
fi

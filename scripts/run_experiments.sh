#!/bin/bash
cd "$(dirname "$0")/.."
for exp in exp_table1 exp_fig2a exp_fig2b exp_fig2c exp_analytical exp_table2 exp_table4 exp_fig4 exp_fig7 exp_fig6a exp_fig6b exp_fig6c exp_fig8 exp_obs9 exp_ablations exp_extensions exp_table5 exp_fluid exp_sensitivity; do
  echo "=== $exp start $(date +%T) ==="
  ./target/release/$exp > results/$exp.txt 2>&1 || echo "$exp FAILED"
done
echo "ALL EXPERIMENTS DONE $(date +%T)"

#!/usr/bin/env bash
# The single tier-1 gate: determinism lint, release build, test suite.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== simlint =="
cargo run -q -p simlint

echo "== release build =="
cargo build --release

echo "== tests =="
cargo test -q

echo "lint.sh: all gates passed"

#!/usr/bin/env bash
# The single tier-1 gate: determinism lint, release build, test suite.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== simlint =="
# Machine-readable report is the CI artifact: archived whether or not
# findings exist (|| true keeps the artifact on failure; the smoke below
# re-asserts zero findings and fails the gate if any slipped through).
mkdir -p target/ci
cargo run -q -p simlint -- --json > target/ci/simlint-report.json || true
python3 -c '
import json
rec = json.load(open("target/ci/simlint-report.json"))
lines = ["{}:{}: [{}] {}".format(f["path"], f["line"], f["rule"], f["message"])
         for f in rec["findings"]]
assert rec["count"] == 0 and not lines, "simlint findings:\n" + "\n".join(lines)
print("simlint clean ({} files, report: target/ci/simlint-report.json)".format(rec["files"]))
'

echo "== release build =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== bench smoke (1-run campaign) =="
# One Monte-Carlo run through the end-to-end campaign timer: proves the
# bench harness stays runnable and its CAMPAIGN_JSON / METRICS_JSON
# output parseable without paying for a full benchmark session.
PCKPT_RUNS=1 cargo run --release -q -p pckpt-bench --bin bench_campaign \
    | python3 -c '
import json, sys
seen = {"CAMPAIGN_JSON ": 0, "METRICS_JSON ": 0}
for line in sys.stdin:
    for tag in seen:
        if line.startswith(tag):
            rec = json.loads(line[len(tag):])
            if tag == "CAMPAIGN_JSON ":
                assert rec["runs_per_sec"] > 0, rec
            else:
                assert rec["runs"] == 1 and rec["events_handled"] > 0, rec
            seen[tag] += 1
for tag, n in seen.items():
    assert n == 2, f"expected 2 {tag.strip()} lines, saw {n}"
print("bench smoke ok (2 campaigns, 2 metrics blocks)")
'

echo "== bench smoke (1-run grid + prefilter + VR + shard headline) =="
# One-run grid sweep: the grid METRICS_JSON must carry the analytic
# pre-filter accounting (pruned + simulated == cells on every grid) and
# consistent shard accounting (shards >= 1; an unsharded grid reports
# zero re-executions and frame bytes, a sharded one carries real
# frames), the POP crossover sweep must actually prune at least half its
# cells, the variance-reduction headline (which runs at its own fixed
# budgets, independent of PCKPT_RUNS) must beat fixed provisioning, and
# the shard scale-out headline must report a bit-identical 2-shard
# merge. No speedup floor on sharding: on a single-core host parallel
# shards timeslice and the ratio measures coordination overhead only.
PCKPT_RUNS=1 cargo run --release -q -p pckpt-bench --bin bench_grid \
    | python3 -c '
import json, sys
grids = prefilter = vr = shard = 0
for line in sys.stdin:
    if line.startswith("METRICS_JSON ") and "\"prefilter_pruned\"" in line:
        rec = json.loads(line[len("METRICS_JSON "):])
        assert rec["prefilter_pruned"] + rec["prefilter_simulated"] == rec["cells"], rec
        assert rec["shards"] >= 1 and rec["reexecutions"] >= 0, rec
        if rec["shards"] == 1:
            assert rec["reexecutions"] == 0 and rec["frame_bytes"] == 0, rec
        else:
            assert rec["frame_bytes"] > 0, rec
        grids += 1
    if line.startswith("GRID_JSON "):
        rec = json.loads(line[len("GRID_JSON "):])
        if rec["name"] == "grid_prefilter_pop":
            assert rec["prune_rate"] >= 0.5, rec
            assert rec["pruned"] + rec["simulated"] == rec["cells"], rec
            prefilter += 1
        if rec["name"] == "variance_reduction_fig4":
            assert rec["variance_reduction_speedup"] > 1.5, rec
            assert 0.0 < rec["adaptive_runs_saved_pct"] < 100.0, rec
            vr += 1
        if rec["name"] == "shard_scaleout_fig4":
            assert rec["shards"] == 2 and rec["digest_match"] is True, rec
            assert rec["reexecutions"] == 0 and rec["frame_bytes"] > 0, rec
            assert rec["shard_speedup"] > 0.0, rec
            shard += 1
assert grids == 6, f"expected 6 grid METRICS_JSON lines, saw {grids}"
assert prefilter == 1, "missing grid_prefilter_pop GRID_JSON line"
assert vr == 1, "missing variance_reduction_fig4 GRID_JSON line"
assert shard == 1, "missing shard_scaleout_fig4 GRID_JSON line"
print("grid smoke ok (6 grids, prefilter prunes >= 50%, VR speedup > 1.5x, "
      "2-shard merge bit-identical)")
'

echo "== bench smoke (1-run campaign service: cache + journal) =="
# One-run pass through the campaign service bench: cold compute, warm
# content-addressed replay, torn-journal resume, full-journal replay.
# Asserts the cache accounting reaches meta_json (cache_hits covers the
# whole warm sweep, zero cells simulated, uncached=false) and that both
# GRID_JSON lines report digest-identical replays. No speedup floor at
# smoke budgets — bench_service only asserts >= 50x at real budgets.
PCKPT_RUNS=1 cargo run --release -q -p pckpt-bench --bin bench_service \
    | python3 -c '
import json, sys
cache = journal = metrics = 0
for line in sys.stdin:
    if line.startswith("METRICS_JSON "):
        rec = json.loads(line[len("METRICS_JSON "):])
        assert rec["name"] == "service_fig4_grid", rec
        assert rec["cache_hits"] + rec["journal_recovered"] == rec["cells"], rec
        assert rec["computed_cells"] == 0 and rec["uncached"] is False, rec
        metrics += 1
    if line.startswith("GRID_JSON "):
        rec = json.loads(line[len("GRID_JSON "):])
        if rec["name"] == "service_cache_fig4":
            assert rec["digest_match"] is True, rec
            assert rec["cache_hit_rate"] == 1.0, rec
            assert rec["cache_hit_speedup"] > 0.0, rec
            cache += 1
        if rec["name"] == "service_journal_fig4":
            assert rec["digest_match"] is True, rec
            assert rec["resume_recovered"] + rec["resume_computed"] == rec["cells"], rec
            assert rec["journal_resume_overhead_pct"] > 0.0, rec
            journal += 1
assert metrics == 1, "missing warm-pass METRICS_JSON line"
assert cache == 1, "missing service_cache_fig4 GRID_JSON line"
assert journal == 1, "missing service_journal_fig4 GRID_JSON line"
print("service smoke ok (warm pass fully cache-served, crash resume "
      "digest-identical)")
'

echo "lint.sh: all gates passed"

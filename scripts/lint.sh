#!/usr/bin/env bash
# The single tier-1 gate: determinism lint, release build, test suite.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== simlint =="
cargo run -q -p simlint

echo "== release build =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== bench smoke (1-run campaign) =="
# One Monte-Carlo run through the end-to-end campaign timer: proves the
# bench harness stays runnable and its CAMPAIGN_JSON output parseable
# without paying for a full benchmark session.
PCKPT_RUNS=1 cargo run --release -q -p pckpt-bench --bin bench_campaign \
    | python3 -c '
import json, sys
seen = 0
for line in sys.stdin:
    if line.startswith("CAMPAIGN_JSON "):
        rec = json.loads(line[len("CAMPAIGN_JSON "):])
        assert rec["runs_per_sec"] > 0, rec
        seen += 1
assert seen == 2, f"expected 2 CAMPAIGN_JSON lines, saw {seen}"
print(f"bench smoke ok ({seen} campaigns)")
'

echo "lint.sh: all gates passed"

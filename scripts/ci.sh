#!/usr/bin/env bash
# Full CI chain: the tier-1 gate plus everything it doesn't cover —
# workspace-member tests, the examples build, and the trace-feature
# build (whose golden digests prove the recorder changes nothing it
# observes).
#
#   1. scripts/lint.sh        simlint, release build, root test suite,
#                             1-run bench smoke (CAMPAIGN/METRICS_JSON)
#   2. cargo test --workspace every crate's unit tests (trace off)
#   3. cargo build --examples the doc examples compile against the
#                             current API (they are not test targets, so
#                             nothing else catches their drift)
#   4. cargo test --features trace
#                             root suite again with the recorder live:
#                             golden stream digests + on/off equivalence
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==== [1/4] tier-1 gate (scripts/lint.sh) ===="
scripts/lint.sh

echo
echo "==== [2/4] workspace tests ===="
cargo test -q --workspace

echo
echo "==== [3/4] examples build ===="
cargo build -q --examples

echo
echo "==== [4/4] trace-feature tests ===="
cargo test -q --features trace

echo
echo "ci.sh: all stages passed"

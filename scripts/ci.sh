#!/usr/bin/env bash
# Full CI chain: the tier-1 gate plus everything it doesn't cover —
# workspace-member tests, the examples build, the trace-feature build
# (whose golden digests prove the recorder changes nothing it observes),
# and the analytic-tier equivalence gates.
#
#   1. scripts/lint.sh        simlint, release build, root test suite,
#                             1-run bench smoke (CAMPAIGN/METRICS_JSON,
#                             prefilter accounting)
#   2. cargo test --workspace every crate's unit tests (trace off)
#   3. cargo build --examples the doc examples compile against the
#                             current API (they are not test targets, so
#                             nothing else catches their drift)
#   4. cargo test --features trace
#                             root suite again with the recorder live:
#                             golden stream digests + on/off equivalence
#   5. analytic tier          batch-vs-scalar bit-identity proptest and
#                             the prefilter digest oracle (the two
#                             equivalence contracts of the analytic
#                             pre-filter) as an explicit, named gate
#   6. concurrency + lint harness
#                             schedcheck's bounded-exhaustive schedule
#                             exploration of the grid pool's claim/slab/
#                             fold protocol (incl. seeded-bug regressions)
#                             and simlint's own fixture suite (each rule
#                             family must still trip on its fixture)
#   7. variance reduction     KS marginal-preservation proptests for the
#                             antithetic reflection, stratified fold
#                             consistency, VR/adaptive thread-count
#                             invariance, the adaptive-grid golden
#                             digest, and the VR-on zero-allocation gate
#   8. shard scale-out        cross-process equivalence (sharded merges
#                             bit-identical to single-process sweeps,
#                             incl. VR and prefilter modes), the sharded
#                             golden grid, and the fault-injection suite
#                             (killed / truncated / corrupted / hung
#                             children recover to the same digest)
#   9. campaign service       pckptd end-to-end suite (cache replay
#                             digest oracle, single-flight admission,
#                             torn-journal crash/resume property test)
#                             plus the service crate's unit tests
#                             (cell-frame codec, journal, cache,
#                             single-flight primitives)
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==== [1/9] tier-1 gate (scripts/lint.sh) ===="
scripts/lint.sh

echo
echo "==== [2/9] workspace tests ===="
cargo test -q --workspace

echo
echo "==== [3/9] examples build ===="
cargo build -q --examples

echo
echo "==== [4/9] trace-feature tests ===="
cargo test -q --features trace

echo
echo "==== [5/9] analytic tier: batch + prefilter equivalence ===="
cargo test -q -p pckpt-analysis --test batch_equivalence
cargo test -q --test grid_equivalence

echo
echo "==== [6/9] schedcheck exhaustive + simlint fixtures ===="
cargo test -q -p schedcheck
cargo test -q -p simlint

echo
echo "==== [7/9] variance reduction: marginals, folds, determinism ===="
cargo test -q --test variance_reduction
cargo test -q --test trace_determinism adaptive_grid
cargo test -q -p pckpt-core --test alloc_free

echo
echo "==== [8/9] shard scale-out: equivalence + fault injection ===="
cargo test -q --test grid_equivalence sharded
cargo test -q --test trace_determinism sharded_grid
cargo test -q --test shard_faults

echo
echo "==== [9/9] campaign service: cache, single-flight, crash/resume ===="
cargo test -q --test service_suite
cargo test -q -p pckpt-service

echo
echo "ci.sh: all stages passed"

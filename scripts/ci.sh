#!/usr/bin/env bash
# Full CI chain: the tier-1 gate plus everything it doesn't cover —
# workspace-member tests and the trace-feature build (whose golden
# digests prove the recorder changes nothing it observes).
#
#   1. scripts/lint.sh        simlint, release build, root test suite,
#                             1-run bench smoke (CAMPAIGN/METRICS_JSON)
#   2. cargo test --workspace every crate's unit tests (trace off)
#   3. cargo test --features trace
#                             root suite again with the recorder live:
#                             golden stream digests + on/off equivalence
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==== [1/3] tier-1 gate (scripts/lint.sh) ===="
scripts/lint.sh

echo
echo "==== [2/3] workspace tests ===="
cargo test -q --workspace

echo
echo "==== [3/3] trace-feature tests ===="
cargo test -q --features trace

echo
echo "ci.sh: all stages passed"

//! Property-based tests of failure generation and prediction.

use proptest::prelude::*;

use pckpt_failure::{
    FailureDistribution, FailureTrace, LeadTimeModel, Predictor, Projection, RateEstimator,
    TraceConfig,
};
use pckpt_simrng::SimRng;

fn arb_distribution() -> impl Strategy<Value = FailureDistribution> {
    prop_oneof![
        Just(FailureDistribution::LANL_SYSTEM_8),
        Just(FailureDistribution::LANL_SYSTEM_18),
        Just(FailureDistribution::OLCF_TITAN),
    ]
}

proptest! {
    /// Traces are well-formed for any distribution × job size × horizon:
    /// sorted times inside the horizon, nodes inside the job, leads
    /// non-negative.
    #[test]
    fn traces_always_well_formed(
        dist in arb_distribution(),
        job_nodes in 1u64..5000,
        horizon in 10.0f64..5000.0,
        lead_scale in 0.1f64..2.0,
        seed in any::<u64>(),
    ) {
        let projection = if job_nodes <= dist.system_nodes {
            Projection::Thinning
        } else {
            Projection::MinStability
        };
        let cfg = TraceConfig::new(dist, job_nodes, horizon)
            .with_lead_scale(lead_scale)
            .with_projection(projection);
        let leads = LeadTimeModel::desh_default();
        let predictor = Predictor::aarohi_default();
        let mut rng = SimRng::seed_from(seed);
        let trace = FailureTrace::generate(&cfg, &leads, &predictor, &mut rng);
        prop_assert!(trace.failures.windows(2).all(|w| w[0].time_hours <= w[1].time_hours));
        prop_assert!(trace.failures.iter().all(|f| f.time_hours < horizon));
        prop_assert!(trace.failures.iter().all(|f| (f.node as u64) < job_nodes));
        prop_assert!(trace.failures.iter().all(|f| f.lead_secs >= 0.0));
        prop_assert!(trace.failures.iter().all(|f| (1..=10).contains(&f.sequence_id)));
        prop_assert!(trace.false_positives.windows(2).all(|w| w[0].at_hours <= w[1].at_hours));
        prop_assert!(trace.false_positives.iter().all(|p| !p.genuine));
        prop_assert!(trace.predicted_count() <= trace.failure_count());
    }

    /// The same seed always yields the same trace; the projection rate
    /// ordering holds: a bigger job never sees fewer failures in
    /// expectation (checked on a paired seed for thinning, where the
    /// coupling is exact).
    #[test]
    fn trace_determinism(seed in any::<u64>()) {
        let dist = FailureDistribution::OLCF_TITAN;
        let cfg = TraceConfig::new(dist, 1000, 2000.0).with_projection(Projection::Thinning);
        let leads = LeadTimeModel::desh_default();
        let predictor = Predictor::aarohi_default();
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        let ta = FailureTrace::generate(&cfg, &leads, &predictor, &mut a);
        let tb = FailureTrace::generate(&cfg, &leads, &predictor, &mut b);
        prop_assert_eq!(ta, tb);
    }

    /// Weibull job projections: the job's mean inter-arrival exceeds the
    /// system's whenever the job is a strict subset.
    #[test]
    fn job_weibull_slower_than_system(
        dist in arb_distribution(),
        frac in 0.01f64..0.99,
    ) {
        use pckpt_simrng::Distribution;
        let job_nodes = ((dist.system_nodes as f64 * frac) as u64).max(1);
        let sys_mean = dist.system_weibull().mean().unwrap();
        let job_mean = dist.job_weibull(job_nodes).mean().unwrap();
        prop_assert!(job_mean >= sys_mean * (1.0 - 1e-9));
        // Rates: job_rate scales linearly with nodes.
        let r1 = dist.job_rate(job_nodes);
        let r2 = dist.job_rate(job_nodes * 2);
        prop_assert!((r2 / r1 - 2.0).abs() < 1e-9);
    }

    /// Predictor arithmetic: usable lead never negative, never exceeds
    /// the raw lead; FN constructor round-trips.
    #[test]
    fn predictor_arithmetic(recall in 0.0f64..=1.0, fp in 0.0f64..0.99, raw in 0.0f64..1e4) {
        let p = Predictor::new(recall, fp, 0.31e-3);
        let usable = p.usable_lead_secs(raw);
        prop_assert!(usable >= 0.0 && usable <= raw);
        prop_assert!((p.false_negative_rate() - (1.0 - recall)).abs() < 1e-12);
        let q = p.with_false_negative_rate(0.25);
        prop_assert!((q.recall() - 0.75).abs() < 1e-12);
        prop_assert_eq!(q.fp_share(), p.fp_share());
        if fp > 0.0 {
            prop_assert!(p.fp_per_true_prediction() > 0.0);
        }
    }

    /// Rate estimator: never negative, respects the prior with no data,
    /// and the empirical rate reflects in-window counts.
    #[test]
    fn rate_estimator_sane(
        window in 1.0f64..1000.0,
        prior in 0.001f64..10.0,
        gaps in proptest::collection::vec(0.01f64..50.0, 0..40),
    ) {
        let mut est = RateEstimator::new(window, prior, 3);
        prop_assert_eq!(est.rate(0.0), prior);
        let mut t = 0.0;
        for g in &gaps {
            t += g;
            est.record(t);
        }
        let r = est.rate(t);
        prop_assert!(r > 0.0);
        if est.in_window() >= 3 {
            let expected = est.in_window() as f64 / window.min(t.max(f64::EPSILON));
            prop_assert!((r - expected).abs() < 1e-9);
        } else {
            prop_assert_eq!(r, prior);
        }
    }

    /// Lead-time mixture: scaled sampling matches scaled survival — the
    /// contract the variability experiments rely on.
    #[test]
    fn lead_scaling_contract(scale in 0.2f64..2.0, threshold in 1.0f64..300.0) {
        let m = LeadTimeModel::desh_default();
        // P(scale·L > threshold) must equal survival(threshold/scale).
        let direct = m.survival(threshold / scale);
        prop_assert!((0.0..=1.0).contains(&direct));
        // Spot-check by sampling.
        let mut rng = SimRng::seed_from(7);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| m.sample(&mut rng).1 * scale > threshold)
            .count();
        let emp = hits as f64 / n as f64;
        prop_assert!((emp - direct).abs() < 0.03, "empirical {emp} vs analytic {direct}");
    }
}

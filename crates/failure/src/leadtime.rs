//! Failure-prediction lead-time model (Fig. 2a).
//!
//! Desh-style log mining yields, for each recurring failure-chain
//! *sequence*, a distribution of lead times — the gap between the first
//! phrase of the chain appearing in the logs and the failure itself. The
//! paper reports ten such sequences over three production systems, with
//! per-sequence box plots whose lead times range from tens to hundreds of
//! seconds, light tails ("most failures are bounded by the whiskers"), and
//! heavier outliers for sequences 3 and 4.
//!
//! The raw logs are proprietary, so [`LeadTimeModel::desh_default`] carries
//! a calibrated reconstruction: ten truncated-normal components whose
//! mixture CDF reproduces the paper's *observable consequences* — the
//! FT-ratio tables (see DESIGN.md §6). The calibration anchors are encoded
//! as unit tests at the bottom of this file, so any retuning that breaks
//! the paper's shape fails loudly.

use pckpt_simrng::dist::{Distribution, Mixture, TruncatedNormal};
use pckpt_simrng::SimRng;

/// Lead times can never be shorter than this (the predictor needs a
/// non-zero moment to emit its prediction).
const MIN_LEAD_SECS: f64 = 0.5;

/// Descriptive statistics of one failure-chain sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceStats {
    /// Sequence id (1-based, as on the x-axis of Fig. 2a).
    pub id: u32,
    /// Short description of the chain (first-phrase family).
    pub label: &'static str,
    /// Mean lead time, seconds.
    pub mean_secs: f64,
    /// Lead-time standard deviation, seconds.
    pub sd_secs: f64,
    /// Number of occurrences mined from the logs (box-plot annotation).
    pub occurrences: u64,
}

/// The mixture lead-time model: which failure sequence occurred, and how
/// much warning it gives.
pub struct LeadTimeModel {
    sequences: Vec<SequenceStats>,
    mixture: Mixture,
}

impl LeadTimeModel {
    /// Builds a model from per-sequence statistics (truncated-normal
    /// components weighted by occurrence count).
    pub fn from_sequences(sequences: Vec<SequenceStats>) -> Self {
        assert!(!sequences.is_empty(), "at least one failure sequence");
        let components: Vec<Box<dyn Distribution + Send + Sync>> = sequences
            .iter()
            .map(|s| {
                assert!(s.mean_secs > 0.0 && s.sd_secs > 0.0 && s.occurrences > 0);
                Box::new(TruncatedNormal::new(s.mean_secs, s.sd_secs, MIN_LEAD_SECS))
                    as Box<dyn Distribution + Send + Sync>
            })
            .collect();
        let weights = sequences.iter().map(|s| s.occurrences as f64).collect();
        Self {
            sequences,
            mixture: Mixture::new(components, weights),
        }
    }

    /// The calibrated default reconstruction of the paper's Fig. 2a.
    ///
    /// Sequence means span 15 s – 240 s; the bulk of the mass sits between
    /// 60 s and 110 s. Sequences 3 and 4 carry wider spreads (the paper
    /// notes their outliers).
    pub fn desh_default() -> Self {
        Self::from_sequences(vec![
            SequenceStats { id: 1,  label: "MCE cascade",            mean_secs: 15.0,  sd_secs: 5.0,  occurrences: 204 },
            SequenceStats { id: 2,  label: "GPU XID fatal",          mean_secs: 30.0,  sd_secs: 8.0,  occurrences: 120 },
            SequenceStats { id: 3,  label: "Lustre client eviction", mean_secs: 45.0,  sd_secs: 20.0, occurrences: 96 },
            SequenceStats { id: 4,  label: "NVLink replay storm",    mean_secs: 60.0,  sd_secs: 25.0, occurrences: 84 },
            SequenceStats { id: 5,  label: "EDAC uncorrectable",     mean_secs: 75.0,  sd_secs: 15.0, occurrences: 264 },
            SequenceStats { id: 6,  label: "fan/thermal trip",       mean_secs: 90.0,  sd_secs: 18.0, occurrences: 216 },
            SequenceStats { id: 7,  label: "power supply degrade",   mean_secs: 110.0, sd_secs: 22.0, occurrences: 120 },
            SequenceStats { id: 8,  label: "DIMM throttle chain",    mean_secs: 140.0, sd_secs: 30.0, occurrences: 48 },
            SequenceStats { id: 9,  label: "OST slow-drain",         mean_secs: 180.0, sd_secs: 40.0, occurrences: 24 },
            SequenceStats { id: 10, label: "node controller hang",   mean_secs: 240.0, sd_secs: 50.0, occurrences: 24 },
        ])
    }

    /// Per-sequence statistics (render Fig. 2a from these plus samples).
    pub fn sequences(&self) -> &[SequenceStats] {
        &self.sequences
    }

    /// FNV-1a digest over the exact bit patterns of every sequence
    /// parameter. Two models with equal digests draw identical lead
    /// times from identical RNG streams, so campaign grids use this to
    /// decide (and report) cross-cell trace sharing: `LeadTimeModel`
    /// itself is neither `Clone` nor `PartialEq` (it owns boxed mixture
    /// components), but its behaviour is fully determined by these stats.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for s in &self.sequences {
            eat(s.id as u64);
            eat(s.mean_secs.to_bits());
            eat(s.sd_secs.to_bits());
            eat(s.occurrences);
        }
        h
    }

    /// Draws `(sequence id, lead time in seconds)` for one failure.
    pub fn sample(&self, rng: &mut SimRng) -> (u32, f64) {
        let (idx, lead) = self.mixture.sample_tagged(rng);
        (self.sequences[idx].id, lead.max(MIN_LEAD_SECS))
    }

    /// Mean lead time of the mixture, seconds (ignoring truncation, which
    /// moves the mean by well under 1 %).
    pub fn mean_secs(&self) -> f64 {
        let total: f64 = self.sequences.iter().map(|s| s.occurrences as f64).sum();
        self.sequences
            .iter()
            // Occurrence-count weighting, not a time cast. simlint: allow(no-lossy-time-cast)
            .map(|s| s.mean_secs * s.occurrences as f64 / total)
            .sum()
    }

    /// Probability that a lead time exceeds `t` seconds (mixture survival
    /// function, conditioned on the 0.5 s lead-time floor exactly
    /// like the sampler).
    ///
    /// This is what the analytic σ of Eq. (2) is computed from: the
    /// fraction of *predicted* failures whose lead exceeds the
    /// live-migration latency θ.
    pub fn survival(&self, t_secs: f64) -> f64 {
        if t_secs <= MIN_LEAD_SECS {
            return 1.0;
        }
        let total: f64 = self.sequences.iter().map(|s| s.occurrences as f64).sum();
        self.sequences
            .iter()
            .map(|s| {
                let z = (t_secs - s.mean_secs) / s.sd_secs;
                let z0 = (MIN_LEAD_SECS - s.mean_secs) / s.sd_secs;
                let cond = normal_survival(z) / normal_survival(z0);
                cond.min(1.0) * s.occurrences as f64 / total
            })
            .sum()
    }

    /// Number of mixture components (10 in the default model).
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// True if the model has no sequences (never post-construction).
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }
}

/// Standard-normal survival function `P(Z > z)` via the Abramowitz–Stegun
/// erf approximation (|error| < 1.5e-7, ample for calibration math).
pub fn normal_survival(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    // A&S 7.1.26 on |x|, reflected for negative x.
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * ax);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let e = poly * (-ax * ax).exp();
    if x >= 0.0 {
        e
    } else {
        2.0 - e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_survival_known_points() {
        assert!((normal_survival(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_survival(1.0) - 0.158_655).abs() < 1e-5);
        assert!((normal_survival(-1.0) - 0.841_345).abs() < 1e-5);
        assert!((normal_survival(1.96) - 0.025).abs() < 1e-4);
        assert!(normal_survival(8.0) < 1e-14);
    }

    #[test]
    fn default_model_has_ten_sequences() {
        let m = LeadTimeModel::desh_default();
        assert_eq!(m.len(), 10);
        assert_eq!(m.sequences()[0].id, 1);
        assert_eq!(m.sequences()[9].id, 10);
        // Total occurrences: 1200 mined instances.
        let total: u64 = m.sequences().iter().map(|s| s.occurrences).sum();
        assert_eq!(total, 1200);
    }

    #[test]
    fn samples_respect_floor_and_attribution() {
        let m = LeadTimeModel::desh_default();
        let mut rng = SimRng::seed_from(42);
        for _ in 0..10_000 {
            let (id, lead) = m.sample(&mut rng);
            assert!((1..=10).contains(&id));
            assert!(lead >= 0.5);
        }
    }

    #[test]
    fn sample_mean_matches_analytic_mean() {
        let m = LeadTimeModel::desh_default();
        let mut rng = SimRng::seed_from(7);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| m.sample(&mut rng).1).sum::<f64>() / n as f64;
        let analytic = m.mean_secs();
        assert!(
            (mean - analytic).abs() / analytic < 0.01,
            "sampled {mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn survival_matches_empirical() {
        let m = LeadTimeModel::desh_default();
        let mut rng = SimRng::seed_from(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample(&mut rng).1).collect();
        for t in [20.0, 40.0, 70.0, 120.0, 250.0] {
            let emp = samples.iter().filter(|&&x| x > t).count() as f64 / n as f64;
            let ana = m.survival(t);
            assert!(
                (emp - ana).abs() < 0.01,
                "P(L>{t}): empirical {emp} vs analytic {ana}"
            );
        }
    }

    /// Calibration anchors (DESIGN.md §6). These encode the paper-shape
    /// constraints the mixture was tuned against; see the FT-ratio tables
    /// (II and IV) for their provenance.
    #[test]
    fn calibration_anchors_hold() {
        let m = LeadTimeModel::desh_default();
        // p-ckpt phase-1 for CHIMERA (~21 s alone to PFS): the vast
        // majority of leads suffice → P1's FT ratio is high.
        let p_pckpt_chimera = m.survival(21.5);
        assert!(
            (0.78..=0.92).contains(&p_pckpt_chimera),
            "P(L > t_pckpt(CHIMERA)) = {p_pckpt_chimera}"
        );
        // LM for CHIMERA (3 × 284 GB at 12.5 GB/s ≈ 68 s): roughly half the
        // leads suffice → M2's FT ratio ≈ 0.5 at base lead times.
        let p_lm_chimera = m.survival(68.0);
        assert!(
            (0.45..=0.65).contains(&p_lm_chimera),
            "P(L > θ_LM(CHIMERA)) = {p_lm_chimera}"
        );
        // Safeguard (all nodes to PFS, ~260 s for CHIMERA): essentially no
        // lead is long enough → M1's FT ratio ≈ 0 for large apps.
        let p_sg_chimera = m.survival(260.0);
        assert!(
            p_sg_chimera < 0.03,
            "P(L > t_safeguard(CHIMERA)) = {p_sg_chimera}"
        );
        // Safeguard for XGC (~120-130 s): a small but non-zero fraction.
        let p_sg_xgc = m.survival(125.0);
        assert!(
            (0.02..=0.12).contains(&p_sg_xgc),
            "P(L > t_safeguard(XGC)) = {p_sg_xgc}"
        );
        // Small applications (sub-second latencies): every lead suffices.
        assert!(m.survival(1.0) > 0.999);
    }

    #[test]
    fn gof_mixture_samples_match_analytic_survival() {
        // KS-style goodness-of-fit of the empirical lead-time mixture
        // against its own survival function. The sampler clamps at the
        // 0.5 s floor while the analytic form conditions on it, so we pin
        // the KS *statistic* with a generous band rather than a p-value:
        // any real drift between sampler and closed form (a re-weighted
        // sequence, a wrong σ) moves D by far more than 0.02.
        use pckpt_simrng::stats::ks_one_sample;
        let m = LeadTimeModel::desh_default();
        let mut rng = SimRng::seed_from(13);
        let samples: Vec<f64> = (0..4000).map(|_| m.sample(&mut rng).1).collect();
        let r = ks_one_sample(&samples, |t| (1.0 - m.survival(t)).clamp(0.0, 1.0));
        assert!(
            r.statistic < 0.02,
            "mixture sampler diverges from its survival function: D = {}",
            r.statistic
        );
    }

    #[test]
    fn fig2a_survival_anchors() {
        // Fig. 2a: the mined mixture's overall mean lead is ≈59.4 s, and
        // the box plots top out around 250-450 s. Pin the survival curve
        // there: a meaningful fraction of leads exceeds the mean, almost
        // none exceed the largest whisker.
        let m = LeadTimeModel::desh_default();
        let mean = m.mean_secs();
        // The calibrated reconstruction's mean sits at ≈71 s (the paper's
        // 59.4 s is not reachable while also hitting the Table II/IV
        // FT-ratio anchors the mixture was tuned against — DESIGN.md §6).
        assert!(
            (60.0..=80.0).contains(&mean),
            "mixture mean {mean}s drifted from its calibrated ≈71 s"
        );
        let at_mean = m.survival(59.4);
        assert!(
            (0.45..=0.70).contains(&at_mean),
            "P(L > 59.4s) = {at_mean}, outside the Fig. 2a band"
        );
        assert!(
            m.survival(459.0) < 0.01,
            "leads beyond the largest Fig. 2a whisker must be rare"
        );
    }

    #[test]
    fn survival_is_monotone_decreasing() {
        let m = LeadTimeModel::desh_default();
        let mut prev = 1.0;
        for t in (0..60).map(|i| i as f64 * 10.0) {
            let s = m.survival(t);
            assert!(s <= prev + 1e-12, "survival must not increase at t={t}");
            prev = s;
        }
    }

    #[test]
    fn custom_single_sequence_model() {
        let m = LeadTimeModel::from_sequences(vec![SequenceStats {
            id: 1,
            label: "only",
            mean_secs: 100.0,
            sd_secs: 10.0,
            occurrences: 5,
        }]);
        assert_eq!(m.mean_secs(), 100.0);
        assert!((m.survival(100.0) - 0.5).abs() < 1e-6);
        let mut rng = SimRng::seed_from(3);
        let (id, lead) = m.sample(&mut rng);
        assert_eq!(id, 1);
        assert!(lead > 50.0 && lead < 150.0);
    }
}

//! Desh-style failure-chain mining over (synthetic) system logs.
//!
//! Desh characterizes failures as *chains*: recurring sequences of log
//! phrases that culminate in a failure. The time between the first phrase
//! of a chain and the failure is the prediction lead time; mining a
//! machine's logs yields the per-chain lead-time distributions of Fig. 2a.
//!
//! The production logs Desh was trained on are proprietary, so this module
//! implements the *whole pipeline* synthetically (DESIGN.md §3):
//!
//! * [`LogGenerator`] plants phrase chains into a stream of background
//!   noise — for each generated failure it picks a chain template, samples
//!   the failure's lead time, and spreads the template's phrases over that
//!   interval on the failing node;
//! * [`ChainAnalyzer`] mines a log the way Desh does: per-node cursors
//!   advance through each known template as its phrases appear, and a
//!   completed match records `lead = t(last phrase) − t(first phrase)`;
//! * [`AnalysisReport`] aggregates mined instances per sequence and can be
//!   converted back into a [`LeadTimeModel`], closing the loop: the
//!   simulation's lead times come from *mined* statistics, not directly
//!   from the generator's ground truth.

use crate::leadtime::{LeadTimeModel, SequenceStats};
use pckpt_simrng::dist::{Distribution, TruncatedNormal, Uniform};
use pckpt_simrng::stats::{BoxPlot, Summary};
use pckpt_simrng::SimRng;

/// One line of a (synthetic) system log.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEvent {
    /// Seconds since the start of the log window.
    pub time_secs: f64,
    /// Node the line was emitted by.
    pub node: u32,
    /// The log phrase (already normalized, as after Desh's tokenization).
    pub message: String,
}

impl LogEvent {
    /// Serializes to the on-disk line format:
    /// `<seconds>\t<node>\t<message>`.
    pub fn to_line(&self) -> String {
        format!("{:.3}\t{}\t{}", self.time_secs, self.node, self.message)
    }

    /// Parses one line of the on-disk format.
    pub fn from_line(line: &str) -> Result<Self, String> {
        let mut parts = line.splitn(3, '\t');
        let time: f64 = parts
            .next()
            .ok_or("missing timestamp")?
            .parse()
            .map_err(|e| format!("bad timestamp: {e}"))?;
        if !time.is_finite() || time < 0.0 {
            return Err(format!("timestamp {time} out of range"));
        }
        let node: u32 = parts
            .next()
            .ok_or("missing node")?
            .parse()
            .map_err(|e| format!("bad node: {e}"))?;
        let message = parts.next().ok_or("missing message")?.to_string();
        Ok(Self {
            time_secs: time,
            node,
            message,
        })
    }
}

/// Writes a log to `w`, one event per line.
pub fn write_log(w: &mut impl std::io::Write, log: &[LogEvent]) -> std::io::Result<()> {
    for ev in log {
        writeln!(w, "{}", ev.to_line())?;
    }
    Ok(())
}

/// Reads a log written by [`write_log`]. Blank lines and `#` comments are
/// skipped; any malformed line aborts with its line number.
pub fn read_log(r: impl std::io::BufRead) -> Result<Vec<LogEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", i + 1))?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(LogEvent::from_line(trimmed).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// An ordered phrase chain that culminates in a failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainTemplate {
    /// Sequence id (matches [`SequenceStats::id`]).
    pub sequence_id: u32,
    /// Ordered phrases; the final phrase is the failure itself. At least
    /// two phrases (otherwise there is no lead time to speak of).
    pub phrases: Vec<&'static str>,
}

/// The ten chain templates paired with the default lead-time statistics.
pub fn desh_default_templates() -> Vec<ChainTemplate> {
    vec![
        ChainTemplate { sequence_id: 1,  phrases: vec!["EDAC MC0: correctable ECC error", "machine check events logged", "mce: hardware error cpu", "kernel panic - not syncing"] },
        ChainTemplate { sequence_id: 2,  phrases: vec!["NVRM: Xid 48 double bit ecc", "gpu has fallen off the bus", "nvidia-smi unable to determine device handle"] },
        ChainTemplate { sequence_id: 3,  phrases: vec!["lustre: client connection lost", "ptlrpc: request timed out", "lustre: evicting client", "client mount unusable"] },
        ChainTemplate { sequence_id: 4,  phrases: vec!["nvlink: replay counter increasing", "nvlink: crc errors on link", "nvlink: link retrain failed", "nvlink: fatal link failure"] },
        ChainTemplate { sequence_id: 5,  phrases: vec!["EDAC MC1: uncorrectable ECC error", "memory failure: recovery action required", "page offline request", "uncorrected hardware memory error"] },
        ChainTemplate { sequence_id: 6,  phrases: vec!["fan speed below threshold", "core temperature above threshold", "thermal throttle engaged", "emergency thermal shutdown"] },
        ChainTemplate { sequence_id: 7,  phrases: vec!["psu: input voltage fluctuation", "psu: output rail degraded", "psu: switching to redundant supply", "power supply failure"] },
        ChainTemplate { sequence_id: 8,  phrases: vec!["dimm temperature high", "memory bandwidth throttled", "dimm disabled by bios", "memory subsystem failure"] },
        ChainTemplate { sequence_id: 9,  phrases: vec!["ost: slow io observed", "ost: request queue growing", "ost: evicting export", "ost failure detected"] },
        ChainTemplate { sequence_id: 10, phrases: vec!["bmc: watchdog pre-timeout", "bmc: sensor scan stalled", "bmc: host unresponsive", "node controller hang"] },
    ]
}

/// Background phrases that never belong to a failure chain.
const NOISE_PHRASES: [&str; 8] = [
    "slurmd: job launched",
    "systemd: session opened",
    "nfs: server ok",
    "kernel: audit rate limit",
    "sshd: accepted publickey",
    "ntpd: clock step",
    "lustre: reconnected",
    "cron: job finished",
];

/// Ground truth of one generated failure (used by round-trip tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlantedFailure {
    /// Sequence that was planted.
    pub sequence_id: u32,
    /// Failing node.
    pub node: u32,
    /// Failure time (last phrase), seconds.
    pub fail_time_secs: f64,
    /// Planted lead time, seconds.
    pub lead_secs: f64,
}

/// Generates synthetic logs containing chains drawn from the given
/// statistics.
pub struct LogGenerator {
    templates: Vec<ChainTemplate>,
    stats: Vec<SequenceStats>,
    /// Mean background-noise lines per hour per node.
    noise_per_node_hour: f64,
}

impl LogGenerator {
    /// Creates a generator over templates and matching per-sequence
    /// statistics (matched by `sequence_id`). Panics on mismatch.
    pub fn new(
        templates: Vec<ChainTemplate>,
        stats: Vec<SequenceStats>,
        noise_per_node_hour: f64,
    ) -> Self {
        assert_eq!(templates.len(), stats.len(), "one stat per template");
        for (t, s) in templates.iter().zip(&stats) {
            assert_eq!(t.sequence_id, s.id, "templates and stats must align");
            assert!(t.phrases.len() >= 2, "chains need at least two phrases");
        }
        assert!(noise_per_node_hour >= 0.0);
        Self {
            templates,
            stats,
            noise_per_node_hour,
        }
    }

    /// The default pipeline: ten templates with the calibrated statistics.
    pub fn desh_default() -> Self {
        Self::new(
            desh_default_templates(),
            LeadTimeModel::desh_default().sequences().to_vec(),
            2.0,
        )
    }

    /// Generates a log window of `duration_secs` over `nodes` nodes
    /// containing `n_failures` planted chains plus background noise.
    /// Returns the (time-sorted) log and the ground truth.
    pub fn generate(
        &self,
        rng: &mut SimRng,
        duration_secs: f64,
        nodes: u32,
        n_failures: usize,
    ) -> (Vec<LogEvent>, Vec<PlantedFailure>) {
        assert!(duration_secs > 0.0 && nodes > 0);
        let mut log = Vec::new();
        let mut truth = Vec::new();
        let weights: Vec<f64> = self.stats.iter().map(|s| s.occurrences as f64).collect();
        let selector = pckpt_simrng::dist::Discrete::new(&weights);
        for _ in 0..n_failures {
            let idx = selector.sample_index(rng);
            let stat = &self.stats[idx];
            let template = &self.templates[idx];
            let lead =
                TruncatedNormal::new(stat.mean_secs, stat.sd_secs, 0.5).sample(rng);
            // The failure must land inside the window with its full chain.
            let fail_time = Uniform::new(lead.min(duration_secs * 0.5), duration_secs).sample(rng);
            let node = rng.below(nodes as u64) as u32;
            self.emit_chain(rng, &mut log, template, node, fail_time, lead);
            truth.push(PlantedFailure {
                sequence_id: template.sequence_id,
                node,
                fail_time_secs: fail_time,
                lead_secs: lead,
            });
        }
        // Background noise: Poisson-ish via exponential gaps, over all nodes.
        let noise_rate_per_sec = self.noise_per_node_hour * nodes as f64 / 3600.0;
        if noise_rate_per_sec > 0.0 {
            let gap = pckpt_simrng::dist::Exponential::from_rate(noise_rate_per_sec);
            let mut t = gap.sample(rng);
            while t < duration_secs {
                log.push(LogEvent {
                    time_secs: t,
                    node: rng.below(nodes as u64) as u32,
                    message: NOISE_PHRASES[rng.below(NOISE_PHRASES.len() as u64) as usize]
                        .to_string(),
                });
                t += gap.sample(rng);
            }
        }
        log.sort_by(|a, b| a.time_secs.total_cmp(&b.time_secs));
        (log, truth)
    }

    fn emit_chain(
        &self,
        rng: &mut SimRng,
        log: &mut Vec<LogEvent>,
        template: &ChainTemplate,
        node: u32,
        fail_time: f64,
        lead: f64,
    ) {
        let k = template.phrases.len();
        let first_time = (fail_time - lead).max(0.0);
        // Interior phrases at sorted uniform offsets strictly inside the
        // lead window; first and last pinned to the window edges.
        let mut offsets: Vec<f64> = (0..k.saturating_sub(2))
            .map(|_| Uniform::new(0.05, 0.95).sample(rng))
            .collect();
        offsets.sort_by(f64::total_cmp);
        let mut times = Vec::with_capacity(k);
        times.push(first_time);
        for off in offsets {
            times.push(first_time + off * (fail_time - first_time));
        }
        times.push(fail_time);
        for (phrase, t) in template.phrases.iter().zip(times) {
            log.push(LogEvent {
                time_secs: t,
                node,
                message: phrase.to_string(),
            });
        }
    }
}

/// One mined chain instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinedChain {
    /// Which template matched.
    pub sequence_id: u32,
    /// Node the chain unfolded on.
    pub node: u32,
    /// First-phrase timestamp, seconds.
    pub first_secs: f64,
    /// Failure (last-phrase) timestamp, seconds.
    pub fail_secs: f64,
}

impl MinedChain {
    /// The mined lead time.
    pub fn lead_secs(&self) -> f64 {
        self.fail_secs - self.first_secs
    }
}

/// Aggregated mining results.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// All mined chains in log order.
    pub chains: Vec<MinedChain>,
    templates: Vec<ChainTemplate>,
}

impl AnalysisReport {
    /// Mined lead times for one sequence id.
    pub fn leads_for(&self, sequence_id: u32) -> Vec<f64> {
        self.chains
            .iter()
            .filter(|c| c.sequence_id == sequence_id)
            .map(|c| c.lead_secs())
            .collect()
    }

    /// Box-plot statistics per sequence with at least one instance —
    /// the contents of Fig. 2a.
    pub fn boxplots(&self) -> Vec<(u32, usize, BoxPlot)> {
        self.templates
            .iter()
            .filter_map(|t| {
                let leads = self.leads_for(t.sequence_id);
                if leads.is_empty() {
                    None
                } else {
                    Some((t.sequence_id, leads.len(), BoxPlot::new(&leads)))
                }
            })
            .collect()
    }

    /// Builds a [`LeadTimeModel`] from the *mined* statistics (mean, sd,
    /// occurrence count per sequence). Sequences with fewer than two
    /// instances are dropped (no spread estimate).
    pub fn to_leadtime_model(&self, labels: &[(u32, &'static str)]) -> LeadTimeModel {
        let mut seqs = Vec::new();
        for t in &self.templates {
            let leads = self.leads_for(t.sequence_id);
            if leads.len() < 2 {
                continue;
            }
            let s = Summary::from_slice(&leads);
            let label = labels
                .iter()
                .find(|(id, _)| *id == t.sequence_id)
                .map(|&(_, l)| l)
                .unwrap_or("mined");
            seqs.push(SequenceStats {
                id: t.sequence_id,
                label,
                mean_secs: s.mean(),
                sd_secs: s.std_dev().max(0.1),
                occurrences: leads.len() as u64,
            });
        }
        LeadTimeModel::from_sequences(seqs)
    }
}

/// Mines failure chains from a log given known templates.
pub struct ChainAnalyzer {
    templates: Vec<ChainTemplate>,
}

impl ChainAnalyzer {
    /// Creates an analyzer for the given templates.
    pub fn new(templates: Vec<ChainTemplate>) -> Self {
        assert!(!templates.is_empty());
        Self { templates }
    }

    /// Analyzer for the ten default templates.
    pub fn desh_default() -> Self {
        Self::new(desh_default_templates())
    }

    /// Scans a time-sorted log and extracts every completed chain.
    ///
    /// Per (node, template) a cursor tracks the next expected phrase;
    /// unrelated lines are skipped (noise tolerance), and a completed
    /// match resets the cursor so repeated failures of the same kind on
    /// the same node are all found.
    pub fn analyze(&self, log: &[LogEvent]) -> AnalysisReport {
        assert!(
            log.windows(2).all(|w| w[0].time_secs <= w[1].time_secs),
            "log must be time-sorted"
        );
        // cursor state per (node, template): (next phrase index, first ts)
        use std::collections::BTreeMap;
        let mut cursors: BTreeMap<(u32, usize), (usize, f64)> = BTreeMap::new();
        let mut chains = Vec::new();
        for event in log {
            for (ti, template) in self.templates.iter().enumerate() {
                let key = (event.node, ti);
                let (next, first) = cursors.get(&key).copied().unwrap_or((0, 0.0));
                if template.phrases[next] == event.message {
                    let first = if next == 0 { event.time_secs } else { first };
                    if next + 1 == template.phrases.len() {
                        chains.push(MinedChain {
                            sequence_id: template.sequence_id,
                            node: event.node,
                            first_secs: first,
                            fail_secs: event.time_secs,
                        });
                        cursors.remove(&key);
                    } else {
                        cursors.insert(key, (next + 1, first));
                    }
                }
            }
        }
        AnalysisReport {
            chains,
            templates: self.templates.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, node: u32, msg: &str) -> LogEvent {
        LogEvent {
            time_secs: t,
            node,
            message: msg.to_string(),
        }
    }

    #[test]
    fn analyzer_finds_a_hand_built_chain() {
        let templates = vec![ChainTemplate {
            sequence_id: 7,
            phrases: vec!["a", "b", "c"],
        }];
        let log = vec![
            ev(1.0, 0, "noise"),
            ev(2.0, 0, "a"),
            ev(3.0, 0, "noise"),
            ev(4.0, 0, "b"),
            ev(9.0, 0, "c"),
        ];
        let report = ChainAnalyzer::new(templates).analyze(&log);
        assert_eq!(report.chains.len(), 1);
        let c = report.chains[0];
        assert_eq!(c.sequence_id, 7);
        assert!((c.lead_secs() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn chains_on_different_nodes_do_not_mix() {
        let templates = vec![ChainTemplate {
            sequence_id: 1,
            phrases: vec!["a", "b"],
        }];
        // Node 0 emits "a", node 1 emits "b" — no chain completes.
        let log = vec![ev(1.0, 0, "a"), ev(2.0, 1, "b")];
        let report = ChainAnalyzer::new(templates.clone()).analyze(&log);
        assert!(report.chains.is_empty());
        // Same node: completes.
        let log = vec![ev(1.0, 3, "a"), ev(2.0, 3, "b")];
        let report = ChainAnalyzer::new(templates).analyze(&log);
        assert_eq!(report.chains.len(), 1);
        assert_eq!(report.chains[0].node, 3);
    }

    #[test]
    fn interleaved_different_chains_on_one_node_both_found() {
        let templates = vec![
            ChainTemplate {
                sequence_id: 1,
                phrases: vec!["a1", "a2"],
            },
            ChainTemplate {
                sequence_id: 2,
                phrases: vec!["b1", "b2"],
            },
        ];
        let log = vec![
            ev(1.0, 0, "a1"),
            ev(2.0, 0, "b1"),
            ev(3.0, 0, "a2"),
            ev(4.0, 0, "b2"),
        ];
        let report = ChainAnalyzer::new(templates).analyze(&log);
        assert_eq!(report.chains.len(), 2);
        assert!((report.chains[0].lead_secs() - 2.0).abs() < 1e-12);
        assert!((report.chains[1].lead_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_chain_on_same_node_counted_twice() {
        let templates = vec![ChainTemplate {
            sequence_id: 1,
            phrases: vec!["a", "b"],
        }];
        let log = vec![
            ev(1.0, 0, "a"),
            ev(2.0, 0, "b"),
            ev(5.0, 0, "a"),
            ev(9.0, 0, "b"),
        ];
        let report = ChainAnalyzer::new(templates).analyze(&log);
        assert_eq!(report.chains.len(), 2);
        assert!((report.chains[1].lead_secs() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn generator_roundtrip_recovers_planted_failures() {
        let mut rng = SimRng::seed_from(101);
        let generator = LogGenerator::desh_default();
        let six_months_secs = 0.5 * 365.25 * 24.0 * 3600.0;
        let (log, truth) = generator.generate(&mut rng, six_months_secs, 500, 1200);
        let report = ChainAnalyzer::desh_default().analyze(&log);
        // Every planted chain must be found (collisions — same sequence on
        // the same node overlapping in time — are rare at 500 nodes but can
        // merge two instances; allow a small deficit).
        assert!(
            report.chains.len() as f64 >= truth.len() as f64 * 0.97,
            "mined {} of {} planted chains",
            report.chains.len(),
            truth.len()
        );
        // Mined lead times per sequence must match ground truth closely.
        let model = LeadTimeModel::desh_default();
        for stat in model.sequences() {
            let mined = report.leads_for(stat.id);
            if mined.len() < 20 {
                continue;
            }
            let mean = Summary::from_slice(&mined).mean();
            assert!(
                (mean - stat.mean_secs).abs() < stat.mean_secs * 0.15,
                "sequence {}: mined mean {mean} vs planted {}",
                stat.id,
                stat.mean_secs
            );
        }
    }

    #[test]
    fn mined_model_feeds_back_into_simulation() {
        let mut rng = SimRng::seed_from(77);
        let generator = LogGenerator::desh_default();
        let (log, _) = generator.generate(&mut rng, 2_000_000.0, 300, 800);
        let report = ChainAnalyzer::desh_default().analyze(&log);
        let labels: Vec<(u32, &'static str)> = LeadTimeModel::desh_default()
            .sequences()
            .iter()
            .map(|s| (s.id, s.label))
            .collect();
        let mined_model = report.to_leadtime_model(&labels);
        assert!(mined_model.len() >= 8, "most sequences recovered");
        // The mined mixture's mean must be near the design mixture's mean.
        let design_mean = LeadTimeModel::desh_default().mean_secs();
        let mined_mean = mined_model.mean_secs();
        assert!(
            (mined_mean - design_mean).abs() < design_mean * 0.15,
            "mined {mined_mean} vs design {design_mean}"
        );
        // And it must be sampleable.
        let (_, lead) = mined_model.sample(&mut rng);
        assert!(lead > 0.0);
    }

    #[test]
    fn mined_leads_pass_a_ks_test_against_the_design_distribution() {
        use pckpt_simrng::ks_two_sample;
        let mut rng = SimRng::seed_from(271);
        let generator = LogGenerator::desh_default();
        let (log, _) = generator.generate(&mut rng, 4_000_000.0, 400, 1500);
        let report = ChainAnalyzer::desh_default().analyze(&log);
        let model = LeadTimeModel::desh_default();
        // Per high-occurrence sequence: mined lead times vs fresh samples
        // from the matching design component must be indistinguishable.
        let mut tested = 0;
        for stat in model.sequences() {
            let mined = report.leads_for(stat.id);
            if mined.len() < 80 {
                continue;
            }
            let reference = TruncatedNormal::new(stat.mean_secs, stat.sd_secs, 0.5)
                .sample_n(&mut rng, mined.len());
            let ks = ks_two_sample(&mined, &reference);
            assert!(
                ks.same_distribution(0.001),
                "sequence {}: mined leads diverge (D={:.3}, p={:.4})",
                stat.id,
                ks.statistic,
                ks.p_value
            );
            tested += 1;
        }
        assert!(tested >= 4, "need several high-volume sequences, got {tested}");
    }

    #[test]
    fn boxplots_cover_sequences_with_data() {
        let mut rng = SimRng::seed_from(5);
        let generator = LogGenerator::desh_default();
        let (log, _) = generator.generate(&mut rng, 1_000_000.0, 200, 600);
        let report = ChainAnalyzer::desh_default().analyze(&log);
        let plots = report.boxplots();
        assert!(plots.len() >= 8);
        for (id, n, plot) in &plots {
            assert!(*id >= 1 && *id <= 10);
            assert!(*n > 0);
            assert!(plot.median > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn analyzer_rejects_unsorted_log() {
        let templates = desh_default_templates();
        let log = vec![ev(5.0, 0, "x"), ev(1.0, 0, "y")];
        ChainAnalyzer::new(templates).analyze(&log);
    }

    #[test]
    fn log_line_roundtrip() {
        let ev = ev(12.345, 42, "lustre: client connection lost");
        let parsed = LogEvent::from_line(&ev.to_line()).unwrap();
        assert_eq!(parsed, ev);
        // Messages may contain tabs-free arbitrary text; spaces fine.
        assert!(LogEvent::from_line("bad").is_err());
        assert!(LogEvent::from_line("1.0\tx\tmsg").is_err());
        assert!(LogEvent::from_line("-1.0\t3\tmsg").is_err());
        assert!(LogEvent::from_line("nan\t3\tmsg").is_err());
    }

    #[test]
    fn log_file_roundtrip_preserves_analysis() {
        let mut rng = SimRng::seed_from(55);
        let (log, _) = LogGenerator::desh_default().generate(&mut rng, 200_000.0, 64, 150);
        let mut buf = Vec::new();
        write_log(&mut buf, &log).unwrap();
        let reader = std::io::BufReader::new(buf.as_slice());
        let reread = read_log(reader).unwrap();
        assert_eq!(reread.len(), log.len());
        let a = ChainAnalyzer::desh_default().analyze(&log);
        let b = ChainAnalyzer::desh_default().analyze(&reread);
        assert_eq!(a.chains.len(), b.chains.len());
        // Lead times survive the 1 ms timestamp quantization.
        for (x, y) in a.chains.iter().zip(&b.chains) {
            assert!((x.lead_secs() - y.lead_secs()).abs() < 0.01);
        }
    }

    #[test]
    fn read_log_skips_comments_and_reports_bad_lines() {
        let text = "# header\n\n1.0\t3\thello world\n2.0\t4\tbye\n";
        let r = std::io::BufReader::new(text.as_bytes());
        let log = read_log(r).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].message, "hello world");
        let bad = "1.0\t3\tok\ngarbage line\n";
        let r = std::io::BufReader::new(bad.as_bytes());
        let err = read_log(r).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn generator_respects_failure_count_and_window() {
        let mut rng = SimRng::seed_from(9);
        let generator = LogGenerator::desh_default();
        let (log, truth) = generator.generate(&mut rng, 100_000.0, 50, 100);
        assert_eq!(truth.len(), 100);
        assert!(log.len() > 100 * 3, "chains plus noise");
        assert!(log.iter().all(|e| e.time_secs >= 0.0 && e.time_secs <= 100_000.0));
        assert!(truth.iter().all(|t| t.node < 50));
    }
}

//! System-level failure distributions (Table III) and rate estimation.

use pckpt_simrng::dist::{gamma_fn, Weibull};

/// A production system's failure process: Weibull inter-arrival parameters
/// plus the machine's node count (needed to project the process onto a
/// job's node subset).
///
/// The three rows of Table III in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureDistribution {
    /// Human-readable system name.
    pub name: &'static str,
    /// Weibull shape parameter (all three systems have shape < 1:
    /// failures arrive in bursts).
    pub shape: f64,
    /// Weibull scale parameter, in hours, of system-wide inter-arrivals.
    pub scale_hours: f64,
    /// Number of nodes in the system the distribution was fitted on.
    pub system_nodes: u64,
}

impl FailureDistribution {
    /// LANL System 8 (164 nodes): shape 0.7111, scale 67.375 h.
    pub const LANL_SYSTEM_8: Self = Self {
        name: "LANL System 8",
        shape: 0.7111,
        scale_hours: 67.375,
        system_nodes: 164,
    };

    /// LANL System 18 (1024 nodes): shape 0.8170, scale 6.6293 h.
    pub const LANL_SYSTEM_18: Self = Self {
        name: "LANL System 18",
        shape: 0.8170,
        scale_hours: 6.6293,
        system_nodes: 1024,
    };

    /// OLCF Titan (18688 nodes): shape 0.6885, scale 5.4527 h. The paper
    /// lists 18868 nodes; Titan had 18688 — we keep the paper's figure for
    /// fidelity since only the ratio c/N matters.
    pub const OLCF_TITAN: Self = Self {
        name: "OLCF Titan",
        shape: 0.6885,
        scale_hours: 5.4527,
        system_nodes: 18868,
    };

    /// All three evaluation distributions, in the paper's order.
    pub const ALL: [Self; 3] = [Self::LANL_SYSTEM_8, Self::LANL_SYSTEM_18, Self::OLCF_TITAN];

    /// The distribution selected by CLI short key `key` (`titan`,
    /// `lanl8`, `lanl18`; case-insensitive) — the inverse of
    /// [`Self::short_key`].
    pub fn by_name(key: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|d| d.short_key().eq_ignore_ascii_case(key.trim()))
    }

    /// Stable CLI short key for this distribution, suitable for
    /// re-serializing a parsed `--dist` into a child process's argv.
    pub fn short_key(&self) -> &'static str {
        match self.name {
            "LANL System 8" => "lanl8",
            "LANL System 18" => "lanl18",
            _ => "titan",
        }
    }

    /// System-wide Weibull inter-arrival distribution (hours).
    pub fn system_weibull(&self) -> Weibull {
        Weibull::new(self.shape, self.scale_hours)
    }

    /// Mean time between failures for the whole system, hours.
    pub fn system_mtbf_hours(&self) -> f64 {
        self.scale_hours * gamma_fn(1.0 + 1.0 / self.shape)
    }

    /// Mean per-node failure rate, failures/hour — `1 / (N · MTBF_sys)`.
    pub fn per_node_rate(&self) -> f64 {
        // Node-count cast, not a time cast. simlint: allow(no-lossy-time-cast)
        1.0 / (self.system_nodes as f64 * self.system_mtbf_hours())
    }

    /// Mean failure rate seen by a job on `job_nodes` nodes,
    /// failures/hour. This is the λ·c of Young's formula (Eq. 1).
    pub fn job_rate(&self, job_nodes: u64) -> f64 {
        self.per_node_rate() * job_nodes as f64
    }

    /// Weibull inter-arrival distribution (hours) for a job spanning
    /// `job_nodes` nodes, by Weibull min-stability (see
    /// [`Weibull::rate_scaled`]).
    pub fn job_weibull(&self, job_nodes: u64) -> Weibull {
        assert!(job_nodes >= 1, "job must have at least one node");
        self.system_weibull()
            .rate_scaled(job_nodes as f64 / self.system_nodes as f64)
    }
}

/// Windowed failure-rate estimator.
///
/// "The OCI of each application SimPy process is updated periodically ...
/// to better account for a dynamically changing system failure rate"
/// (Sec. III). The estimator keeps failure timestamps inside a sliding
/// window and reports the empirical rate, falling back to a prior until it
/// has seen enough events.
#[derive(Debug, Clone)]
pub struct RateEstimator {
    window_hours: f64,
    prior_rate: f64,
    min_events: usize,
    events: Vec<f64>, // failure times, hours, ascending
}

impl RateEstimator {
    /// Creates an estimator with a sliding `window_hours`, an initial
    /// `prior_rate` (failures/hour, e.g. from Table III), and the minimum
    /// number of in-window events before the empirical estimate is
    /// trusted.
    pub fn new(window_hours: f64, prior_rate: f64, min_events: usize) -> Self {
        assert!(window_hours > 0.0 && prior_rate > 0.0);
        Self {
            window_hours,
            prior_rate,
            min_events,
            events: Vec::new(),
        }
    }

    /// Forgets all recorded failures (retaining the event buffer's
    /// allocation), returning the estimator to its just-built prior-only
    /// state — for recycling one estimator across campaign runs.
    pub fn reset(&mut self) {
        self.events.clear();
    }

    /// Records a failure at absolute time `now_hours`.
    pub fn record(&mut self, now_hours: f64) {
        if let Some(&last) = self.events.last() {
            assert!(now_hours >= last, "failures must be recorded in order");
        }
        self.events.push(now_hours);
        self.evict(now_hours);
    }

    fn evict(&mut self, now_hours: f64) {
        let cutoff = now_hours - self.window_hours;
        let keep_from = self.events.partition_point(|&t| t < cutoff);
        if keep_from > 0 {
            self.events.drain(..keep_from);
        }
    }

    /// Estimated failure rate (failures/hour) at `now_hours`.
    ///
    /// Empirical `k / window` once `k ≥ min_events` events are in the
    /// window; the prior otherwise. The observation span is clamped to the
    /// window even early on, so a burst right after start is not
    /// over-extrapolated.
    pub fn rate(&mut self, now_hours: f64) -> f64 {
        self.evict(now_hours);
        let k = self.events.len();
        if k < self.min_events {
            return self.prior_rate;
        }
        let span = self.window_hours.min(now_hours.max(f64::EPSILON));
        k as f64 / span
    }

    /// Number of failures currently inside the window.
    pub fn in_window(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_mtbfs_are_plausible() {
        // Titan's system MTBF computes to ≈7 h — consistent with published
        // Titan reliability studies.
        let titan = FailureDistribution::OLCF_TITAN;
        let mtbf = titan.system_mtbf_hours();
        assert!((mtbf - 7.0).abs() < 0.1, "Titan MTBF = {mtbf}");
        // System 18 (old LANL hardware): ≈7.4 h for only 1024 nodes.
        let s18 = FailureDistribution::LANL_SYSTEM_18;
        assert!((s18.system_mtbf_hours() - 7.4).abs() < 0.2);
        // System 8: ≈84 h for 164 nodes.
        let s8 = FailureDistribution::LANL_SYSTEM_8;
        assert!((s8.system_mtbf_hours() - 84.0).abs() < 2.0);
    }

    #[test]
    fn per_node_rates_order_titan_cleanest() {
        // Titan's per-node rate is the lowest of the three (newest
        // machine), System 18's the highest.
        let titan = FailureDistribution::OLCF_TITAN.per_node_rate();
        let s8 = FailureDistribution::LANL_SYSTEM_8.per_node_rate();
        let s18 = FailureDistribution::LANL_SYSTEM_18.per_node_rate();
        assert!(titan < s8, "titan {titan} < s8 {s8}");
        assert!(s8 < s18, "s8 {s8} < s18 {s18}");
    }

    #[test]
    fn job_rate_is_proportional_to_job_size() {
        let d = FailureDistribution::OLCF_TITAN;
        let r1 = d.job_rate(126);
        let r2 = d.job_rate(2272);
        assert!((r2 / r1 - 2272.0 / 126.0).abs() < 1e-9);
        // CHIMERA on Titan-like Summit: about one failure per ~58 h.
        let mtbf_chimera = 1.0 / d.job_rate(2272);
        assert!(
            (mtbf_chimera - 58.0).abs() < 2.0,
            "CHIMERA MTBF = {mtbf_chimera}"
        );
    }

    #[test]
    fn job_weibull_keeps_shape() {
        let d = FailureDistribution::OLCF_TITAN;
        let w = d.job_weibull(505);
        assert_eq!(w.shape, d.shape);
        assert!(w.scale > d.scale_hours);
    }

    #[test]
    fn estimator_uses_prior_until_enough_events() {
        let mut e = RateEstimator::new(100.0, 0.5, 3);
        assert_eq!(e.rate(10.0), 0.5);
        e.record(10.0);
        e.record(20.0);
        assert_eq!(e.rate(25.0), 0.5, "two events < min_events=3");
        e.record(30.0);
        let r = e.rate(30.0);
        assert!((r - 3.0 / 30.0).abs() < 1e-12, "empirical rate = {r}");
    }

    #[test]
    fn estimator_evicts_old_failures() {
        let mut e = RateEstimator::new(50.0, 0.1, 1);
        e.record(0.0);
        e.record(10.0);
        e.record(60.0);
        // At t=70, the window [20,70] holds only the t=60 event.
        let _ = e.rate(70.0);
        assert_eq!(e.in_window(), 1);
        // Far in the future the window is empty → prior.
        assert_eq!(e.rate(500.0), 0.1);
    }

    #[test]
    fn estimator_clamps_early_burst() {
        let mut e = RateEstimator::new(100.0, 0.1, 2);
        e.record(1.0);
        e.record(2.0);
        // Two events within 2 h of start: the span clamps to now (2 h),
        // yielding 1/h — not the window-diluted 0.02/h, and not infinite.
        let r = e.rate(2.0);
        assert!((r - 1.0).abs() < 1e-9, "r = {r}");
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn estimator_rejects_out_of_order() {
        let mut e = RateEstimator::new(10.0, 1.0, 1);
        e.record(5.0);
        e.record(4.0);
    }
}

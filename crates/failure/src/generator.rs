//! Per-run failure traces: when, where, and with how much warning.
//!
//! "The failure generation and prediction component uses the failure
//! distribution parameters to generate one of the failures along with its
//! prediction lead time ... For each failure generation, a node is
//! randomly selected from a uniform probability distribution" (Sec. III).
//!
//! A [`FailureTrace`] is everything one simulation run needs to know about
//! fate: the genuine failures (predicted or not) and the false-positive
//! predictions. Generating the trace up front — instead of lazily during
//! the simulation — keeps the C/R models free of RNG plumbing and lets
//! different models be compared on *identical* fault streams (variance
//! reduction for the model-vs-model comparisons in Figs. 6–8).

use crate::leadtime::LeadTimeModel;
use crate::predictor::{Prediction, Predictor};
use crate::system::FailureDistribution;
use pckpt_simrng::dist::{Distribution, Exponential};
use pckpt_simrng::SimRng;

/// How the system-wide failure process is projected onto the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Projection {
    /// Generate job-level Weibull inter-arrivals directly, with the scale
    /// adjusted by min-stability (`(N/c)^{1/k}`). Works for any job size,
    /// including jobs larger than the source system (the LANL
    /// distributions applied to Summit-scale jobs, Fig. 6b).
    #[default]
    MinStability,
    /// Generate system-wide arrivals and keep each with probability `c/N`
    /// (uniform node selection, the paper's literal procedure). Requires
    /// `c ≤ N`.
    Thinning,
}

/// Which node a failure lands on (extension; the paper assumes
/// uniform selection).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum NodeSelection {
    /// "a node is randomly selected from a uniform probability
    /// distribution" (Sec. III).
    #[default]
    Uniform,
    /// Production machines show failure *locality*: a small set of
    /// repeat offenders accounts for a disproportionate share of events
    /// (cf. Doomsday's per-node prediction premise). `fraction` of the
    /// job's nodes are `weight`× likelier to fail than the rest.
    Hotspot {
        /// Fraction of nodes that are failure-prone, in (0, 1).
        fraction: f64,
        /// Relative failure weight of a hotspot node (> 1).
        weight: f64,
    },
}

impl NodeSelection {
    /// Picks a job-local node index in `0..n`.
    pub fn pick(&self, rng: &mut SimRng, n: u64) -> u32 {
        match *self {
            NodeSelection::Uniform => rng.below(n) as u32,
            NodeSelection::Hotspot { fraction, weight } => {
                assert!((0.0..1.0).contains(&fraction) && fraction > 0.0);
                assert!(weight > 1.0);
                let hot = ((n as f64 * fraction).ceil() as u64).clamp(1, n);
                let cold = n - hot;
                let hot_mass = hot as f64 * weight;
                let p_hot = hot_mass / (hot_mass + cold as f64);
                if rng.chance(p_hot) || cold == 0 {
                    // Hotspot nodes occupy the low indices.
                    rng.below(hot) as u32
                } else {
                    (hot + rng.below(cold)) as u32
                }
            }
        }
    }
}

/// Configuration of one trace generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Which system's failure process drives the run (Table III).
    pub distribution: FailureDistribution,
    /// Job size in nodes (`c` in the paper).
    pub job_nodes: u64,
    /// How far to generate, hours (≥ the application's total runtime
    /// including overheads — the C/R driver asks for a generous margin).
    pub horizon_hours: f64,
    /// Projection strategy.
    pub projection: Projection,
    /// Lead-time scaling factor for the variability experiments
    /// (Figs. 4/7/8): 1.5 = "+50 %", 0.5 = "−50 %".
    pub lead_scale: f64,
    /// Node-selection model (extension; defaults to the paper's uniform).
    pub node_selection: NodeSelection,
    /// Coefficient of variation of the *estimated* lead time around the
    /// actual one (extension; the paper assumes exact knowledge — "we
    /// consider the actual lead time of any failure during simulation").
    /// With noise, the C/R model *decides* on the estimate but the
    /// failure fires at the actual time, so an overestimate can make a
    /// live migration lose its race.
    pub lead_error_cv: f64,
}

impl TraceConfig {
    /// Titan-distribution defaults at reference lead times.
    pub fn new(distribution: FailureDistribution, job_nodes: u64, horizon_hours: f64) -> Self {
        assert!(job_nodes >= 1 && horizon_hours > 0.0);
        Self {
            distribution,
            job_nodes,
            horizon_hours,
            projection: Projection::MinStability,
            lead_scale: 1.0,
            node_selection: NodeSelection::Uniform,
            lead_error_cv: 0.0,
        }
    }

    /// Sets the node-selection model.
    pub fn with_node_selection(mut self, selection: NodeSelection) -> Self {
        self.node_selection = selection;
        self
    }

    /// Sets the lead-time estimation error (coefficient of variation;
    /// 0 = the paper's exact-knowledge assumption).
    pub fn with_lead_error(mut self, cv: f64) -> Self {
        assert!((0.0..=2.0).contains(&cv), "lead error CV out of range");
        self.lead_error_cv = cv;
        self
    }

    /// Sets the lead-time variability factor.
    pub fn with_lead_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "lead scale must be positive");
        self.lead_scale = scale;
        self
    }

    /// Sets the projection strategy.
    pub fn with_projection(mut self, projection: Projection) -> Self {
        self.projection = projection;
        self
    }

    /// The scale-invariant core of this configuration.
    ///
    /// `lead_scale` is a *pure per-event transform*: generation draws the
    /// raw lead from the mixture first and only then computes
    /// `usable_lead_secs(raw × scale)` (see [`FailureTrace::generate_into`]
    /// and `make_failure`), so two configs that differ only in
    /// `lead_scale` consume **identical RNG draw sequences**. Campaign
    /// grids exploit this: cells with equal cores share one generated
    /// [`TraceCore`] and instantiate their own lead-scale view from it
    /// bit-identically (the paper's paired-trace variance reduction,
    /// extended across sweep points).
    pub fn scale_invariant(&self) -> TraceConfig {
        TraceConfig {
            lead_scale: 1.0,
            ..*self
        }
    }
}

/// One genuine failure in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureEvent {
    /// Absolute failure time, hours into the run.
    pub time_hours: f64,
    /// Failing node, job-local index `0..job_nodes`.
    pub node: u32,
    /// The failure-chain sequence behind it.
    pub sequence_id: u32,
    /// Actual lead time (seconds) between prediction delivery and the
    /// failure — already scaled by `lead_scale` and net of inference
    /// latency.
    pub lead_secs: f64,
    /// The lead time the predictor *reports* (what the C/R model decides
    /// on). Equals `lead_secs` unless `lead_error_cv > 0`.
    pub est_lead_secs: f64,
    /// Whether the predictor actually announces it (false ⇒ false
    /// negative: the failure strikes unannounced).
    pub predicted: bool,
}

impl FailureEvent {
    /// The moment the prediction is delivered, hours (failure time minus
    /// lead). Meaningless if `!predicted`.
    pub fn prediction_time_hours(&self) -> f64 {
        (self.time_hours - self.lead_secs / 3600.0).max(0.0)
    }
}

/// Number of Bernoulli(`p`) trials up to and including the first success,
/// inverted from the single quantile `u`: `G = 1 + ⌊ln(1−u) / ln(1−p)⌋`.
///
/// This is the variance-reduction form of the thinning projection's
/// membership test: instead of one raw draw per system event ("is this
/// event in the job?"), one *uniform* decides how many system events pass
/// before the next in-job failure. Identical in law — in an i.i.d.
/// Bernoulli sequence the index of the next success is Geometric — but
/// the run's dominant noise now flows through an inversion-sampled
/// uniform, which antithetic reflection mirrors and a stratum remap can
/// confine. `u = 1` (reachable under reflection) saturates: the caller's
/// horizon check terminates the block.
fn geometric_trials(u: f64, p: f64) -> u64 {
    if p >= 1.0 {
        return 1;
    }
    let g = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    (g as u64).saturating_add(1)
}

/// A complete fault stream for one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FailureTrace {
    /// Genuine failures, ascending in time.
    pub failures: Vec<FailureEvent>,
    /// False-positive predictions, ascending in time.
    pub false_positives: Vec<Prediction>,
}

impl FailureTrace {
    /// Generates a trace.
    pub fn generate(
        config: &TraceConfig,
        leads: &LeadTimeModel,
        predictor: &Predictor,
        rng: &mut SimRng,
    ) -> Self {
        let mut trace = Self::default();
        trace.generate_into(config, leads, predictor, rng);
        trace
    }

    /// Regenerates this trace in place: clears and refills the failure and
    /// false-positive buffers, retaining their allocations, with exactly
    /// the same RNG draw sequence as [`generate`](Self::generate) — so a
    /// campaign worker recycling one trace across runs produces
    /// bit-identical streams to one constructing a fresh trace per run.
    pub fn generate_into(
        &mut self,
        config: &TraceConfig,
        leads: &LeadTimeModel,
        predictor: &Predictor,
        rng: &mut SimRng,
    ) {
        self.failures.clear();
        self.false_positives.clear();
        let failures = &mut self.failures;
        // Variance-reduction structured path (see [`geometric_trials`]):
        // active when the stream is an antithetic pair member or carries
        // an armed stratum. Same law as the literal path; the default
        // path is untouched — every fixed-run digest depends on its
        // exact draw sequence.
        let vr = rng.paired() || rng.stratum_armed();
        let mut event: u64 = 0;
        match config.projection {
            Projection::MinStability => {
                let w = config.distribution.job_weibull(config.job_nodes);
                let mut t = 0.0;
                loop {
                    t += w.sample(rng);
                    if t >= config.horizon_hours {
                        break;
                    }
                    if vr {
                        // Attribute draws from a per-event substream keep
                        // the main stream's consumption unconditional, so
                        // a mirrored pair stays draw-aligned all horizon.
                        let mut sub = rng.split(event);
                        failures.push(Self::make_failure_vr(config, leads, predictor, &mut sub, t));
                    } else {
                        failures.push(Self::make_failure(config, leads, predictor, rng, t, None));
                    }
                    event += 1;
                }
            }
            Projection::Thinning => {
                let n = config.distribution.system_nodes;
                assert!(
                    config.job_nodes <= n,
                    "thinning projection requires job_nodes ({}) ≤ system nodes ({n})",
                    config.job_nodes
                );
                let w = config.distribution.system_weibull();
                let mut t = 0.0;
                if vr {
                    // Geometric-block form: the count of system events up
                    // to and including the next in-job one is
                    // Geometric(c/N), inverted from ONE uniform — the
                    // run's first uniform becomes the first-job-failure
                    // quantile (what the stratum confines, and what
                    // reflection mirrors). Identical law to the literal
                    // per-event Bernoulli path below.
                    let p = config.job_nodes as f64 / n as f64;
                    'events: loop {
                        let g = geometric_trials(rng.uniform01(), p);
                        // Gaps live in the block's substream: the main
                        // stream consumes exactly one uniform per block,
                        // so pair members' j-th geometric quantiles stay
                        // positionally mirrored no matter where either
                        // run's horizon lands.
                        let mut sub = rng.split(event);
                        event += 1;
                        let mut gaps = sub.split(0);
                        for _ in 0..g {
                            t += w.sample(&mut gaps);
                            if t >= config.horizon_hours {
                                break 'events;
                            }
                        }
                        failures.push(Self::make_failure_vr(config, leads, predictor, &mut sub, t));
                    }
                } else {
                    loop {
                        t += w.sample(rng);
                        if t >= config.horizon_hours {
                            break;
                        }
                        // Uniform node over the whole system; in-job nodes
                        // keep the event. Under a non-uniform selection
                        // model the membership probability stays c/N but
                        // the job-local placement is re-drawn from the
                        // selection.
                        let node = rng.below(n);
                        if node < config.job_nodes {
                            let job_node = match config.node_selection {
                                NodeSelection::Uniform => node as u32,
                                sel => sel.pick(rng, config.job_nodes),
                            };
                            failures.push(Self::make_failure(
                                config,
                                leads,
                                predictor,
                                rng,
                                t,
                                Some(job_node),
                            ));
                        }
                    }
                }
            }
        }

        // False positives: a Poisson process whose expected count keeps
        // the configured share of all predictions false.
        let expected_true_predictions =
            failures.iter().filter(|f| f.predicted).count() as f64;
        let expected_fp = expected_true_predictions * predictor.fp_per_true_prediction();
        if expected_fp > 0.0 {
            let gap = Exponential::from_rate(expected_fp / config.horizon_hours);
            let mut t = gap.sample(rng);
            while t < config.horizon_hours {
                let (sequence_id, raw_lead) = leads.sample(rng);
                let lead_secs =
                    predictor.usable_lead_secs(raw_lead * config.lead_scale);
                self.false_positives.push(Prediction {
                    node: config.node_selection.pick(rng, config.job_nodes),
                    at_hours: t,
                    lead_secs,
                    sequence_id,
                    genuine: false,
                });
                t += gap.sample(rng);
            }
        }
    }

    fn make_failure(
        config: &TraceConfig,
        leads: &LeadTimeModel,
        predictor: &Predictor,
        rng: &mut SimRng,
        time_hours: f64,
        node: Option<u32>,
    ) -> FailureEvent {
        let node = node.unwrap_or_else(|| config.node_selection.pick(rng, config.job_nodes));
        let (sequence_id, raw_lead) = leads.sample(rng);
        let lead_secs = predictor.usable_lead_secs(raw_lead * config.lead_scale);
        let est_lead_secs = if config.lead_error_cv > 0.0 {
            let noise =
                pckpt_simrng::dist::LogNormal::from_mean_cv(1.0, config.lead_error_cv)
                    .sample(rng);
            (lead_secs * noise).max(0.0)
        } else {
            lead_secs
        };
        FailureEvent {
            time_hours,
            node,
            sequence_id,
            lead_secs,
            est_lead_secs,
            predicted: predictor.predicts(rng),
        }
    }

    /// Variance-reduction variant of [`Self::make_failure`]: every
    /// attribute class draws from its own child of the event substream,
    /// so variable-length draws in one class (the lead-time mixture's
    /// rejection sampling, a multi-draw node selection) cannot shift the
    /// stream positions of the others. Across an antithetic pair this
    /// keeps each attribute of the j-th failure exactly mirrored — in
    /// particular the predicted flag, whose complement (`u < r` vs
    /// `u > 1 − r`) makes the pair's unpredicted-failure indicators
    /// disjoint for recall > ½.
    fn make_failure_vr(
        config: &TraceConfig,
        leads: &LeadTimeModel,
        predictor: &Predictor,
        sub: &mut SimRng,
        time_hours: f64,
    ) -> FailureEvent {
        let node = config.node_selection.pick(&mut sub.split(1), config.job_nodes);
        let mut lead_rng = sub.split(2);
        let (sequence_id, raw_lead) = leads.sample(&mut lead_rng);
        let lead_secs = predictor.usable_lead_secs(raw_lead * config.lead_scale);
        let est_lead_secs = if config.lead_error_cv > 0.0 {
            let noise = pckpt_simrng::dist::LogNormal::from_mean_cv(1.0, config.lead_error_cv)
                .sample(&mut lead_rng);
            (lead_secs * noise).max(0.0)
        } else {
            lead_secs
        };
        FailureEvent {
            time_hours,
            node,
            sequence_id,
            lead_secs,
            est_lead_secs,
            predicted: predictor.predicts(&mut sub.split(3)),
        }
    }

    /// Count of genuine failures.
    pub fn failure_count(&self) -> usize {
        self.failures.len()
    }

    /// Count of predicted genuine failures.
    pub fn predicted_count(&self) -> usize {
        self.failures.iter().filter(|f| f.predicted).count()
    }
}

/// One genuine failure before the lead-scale view is applied.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CoreFailure {
    time_hours: f64,
    node: u32,
    sequence_id: u32,
    /// Raw mixture draw, before `× lead_scale` and the latency subtraction.
    raw_lead: f64,
    /// Estimation-noise factor (1.0 when `lead_error_cv == 0`).
    est_noise: f64,
    predicted: bool,
}

/// One false-positive prediction before the lead-scale view is applied.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CoreFp {
    at_hours: f64,
    node: u32,
    sequence_id: u32,
    raw_lead: f64,
}

/// The scale-independent capture of one generated trace.
///
/// Everything `FailureTrace::generate_into` draws from the RNG is stored
/// *before* the lead-scale transform: failure times, nodes, sequence ids,
/// raw mixture leads, estimation-noise factors, predicted flags, and the
/// false-positive process. Any lead-scale view of the same core is then a
/// deterministic, RNG-free transform ([`instantiate_into`]
/// (Self::instantiate_into)) — bit-identical to generating the scaled
/// trace directly, because `lead_scale` only ever appears as
/// `usable_lead_secs(raw × scale)` downstream of every draw.
///
/// This is what lets a campaign grid share one generation across an
/// entire lead-scale sweep (Figs. 4/7/8, Tables II/IV) while every cell
/// still sees exactly the trace it would have generated alone.
#[derive(Debug, Clone, Default)]
pub struct TraceCore {
    failures: Vec<CoreFailure>,
    false_positives: Vec<CoreFp>,
    /// The scale-invariant config this core was generated under (None
    /// until the first generation); instantiation debug-asserts against
    /// it so a core is never viewed through a non-scale-mate config.
    key: Option<TraceConfig>,
}

impl TraceCore {
    /// Regenerates this core in place, retaining buffer allocations.
    ///
    /// Consumes **exactly** the RNG draw sequence of
    /// [`FailureTrace::generate_into`] under `config` at *any*
    /// `lead_scale` — the draws are scale-independent (see
    /// [`TraceConfig::scale_invariant`]), so the RNG leaves in the same
    /// state and a downstream `rng.split(..)` stream is unaffected by
    /// whether the trace was generated directly or through a core.
    pub fn generate_into(
        &mut self,
        config: &TraceConfig,
        leads: &LeadTimeModel,
        predictor: &Predictor,
        rng: &mut SimRng,
    ) {
        self.failures.clear();
        self.false_positives.clear();
        self.key = Some(config.scale_invariant());
        let failures = &mut self.failures;
        // Same structured/literal path split as
        // `FailureTrace::generate_into` — the two must consume identical
        // draw sequences in every mode.
        let vr = rng.paired() || rng.stratum_armed();
        let mut event: u64 = 0;
        match config.projection {
            Projection::MinStability => {
                let w = config.distribution.job_weibull(config.job_nodes);
                let mut t = 0.0;
                loop {
                    t += w.sample(rng);
                    if t >= config.horizon_hours {
                        break;
                    }
                    if vr {
                        let mut sub = rng.split(event);
                        failures.push(Self::make_core_failure_vr(
                            config, leads, predictor, &mut sub, t,
                        ));
                    } else {
                        failures
                            .push(Self::make_core_failure(config, leads, predictor, rng, t, None));
                    }
                    event += 1;
                }
            }
            Projection::Thinning => {
                let n = config.distribution.system_nodes;
                assert!(
                    config.job_nodes <= n,
                    "thinning projection requires job_nodes ({}) ≤ system nodes ({n})",
                    config.job_nodes
                );
                let w = config.distribution.system_weibull();
                let mut t = 0.0;
                if vr {
                    let p = config.job_nodes as f64 / n as f64;
                    'events: loop {
                        let g = geometric_trials(rng.uniform01(), p);
                        let mut sub = rng.split(event);
                        event += 1;
                        let mut gaps = sub.split(0);
                        for _ in 0..g {
                            t += w.sample(&mut gaps);
                            if t >= config.horizon_hours {
                                break 'events;
                            }
                        }
                        failures.push(Self::make_core_failure_vr(
                            config, leads, predictor, &mut sub, t,
                        ));
                    }
                } else {
                    loop {
                        t += w.sample(rng);
                        if t >= config.horizon_hours {
                            break;
                        }
                        let node = rng.below(n);
                        if node < config.job_nodes {
                            let job_node = match config.node_selection {
                                NodeSelection::Uniform => node as u32,
                                sel => sel.pick(rng, config.job_nodes),
                            };
                            failures.push(Self::make_core_failure(
                                config,
                                leads,
                                predictor,
                                rng,
                                t,
                                Some(job_node),
                            ));
                        }
                    }
                }
            }
        }

        let expected_true_predictions =
            failures.iter().filter(|f| f.predicted).count() as f64;
        let expected_fp = expected_true_predictions * predictor.fp_per_true_prediction();
        if expected_fp > 0.0 {
            let gap = Exponential::from_rate(expected_fp / config.horizon_hours);
            let mut t = gap.sample(rng);
            while t < config.horizon_hours {
                let (sequence_id, raw_lead) = leads.sample(rng);
                self.false_positives.push(CoreFp {
                    node: config.node_selection.pick(rng, config.job_nodes),
                    at_hours: t,
                    sequence_id,
                    raw_lead,
                });
                t += gap.sample(rng);
            }
        }
    }

    /// Mirrors `FailureTrace::make_failure` draw-for-draw, storing the
    /// raw lead and noise factor instead of the scaled view.
    fn make_core_failure(
        config: &TraceConfig,
        leads: &LeadTimeModel,
        predictor: &Predictor,
        rng: &mut SimRng,
        time_hours: f64,
        node: Option<u32>,
    ) -> CoreFailure {
        let node = node.unwrap_or_else(|| config.node_selection.pick(rng, config.job_nodes));
        let (sequence_id, raw_lead) = leads.sample(rng);
        let est_noise = if config.lead_error_cv > 0.0 {
            pckpt_simrng::dist::LogNormal::from_mean_cv(1.0, config.lead_error_cv).sample(rng)
        } else {
            1.0
        };
        CoreFailure {
            time_hours,
            node,
            sequence_id,
            raw_lead,
            est_noise,
            predicted: predictor.predicts(rng),
        }
    }

    /// Mirrors `FailureTrace::make_failure_vr` draw-for-draw, storing the
    /// raw lead and noise factor instead of the scaled view.
    fn make_core_failure_vr(
        config: &TraceConfig,
        leads: &LeadTimeModel,
        predictor: &Predictor,
        sub: &mut SimRng,
        time_hours: f64,
    ) -> CoreFailure {
        let node = config.node_selection.pick(&mut sub.split(1), config.job_nodes);
        let mut lead_rng = sub.split(2);
        let (sequence_id, raw_lead) = leads.sample(&mut lead_rng);
        let est_noise = if config.lead_error_cv > 0.0 {
            pckpt_simrng::dist::LogNormal::from_mean_cv(1.0, config.lead_error_cv)
                .sample(&mut lead_rng)
        } else {
            1.0
        };
        CoreFailure {
            time_hours,
            node,
            sequence_id,
            raw_lead,
            est_noise,
            predicted: predictor.predicts(&mut sub.split(3)),
        }
    }

    /// Fills `out` with the `config.lead_scale` view of this core,
    /// retaining `out`'s allocations.
    ///
    /// Bit-identical to `FailureTrace::generate_into(config, ..)` over
    /// the same RNG stream: the lead computation is the same expression
    /// (`usable_lead_secs(raw × scale)`, then `(lead × noise).max(0)`
    /// when estimation error is on) applied to the same stored draws.
    pub fn instantiate_into(
        &self,
        config: &TraceConfig,
        predictor: &Predictor,
        out: &mut FailureTrace,
    ) {
        debug_assert_eq!(
            self.key.as_ref(),
            Some(&config.scale_invariant()),
            "a TraceCore may only be viewed through scale-mates of its generation config"
        );
        out.failures.clear();
        out.false_positives.clear();
        for f in &self.failures {
            let lead_secs = predictor.usable_lead_secs(f.raw_lead * config.lead_scale);
            let est_lead_secs = if config.lead_error_cv > 0.0 {
                (lead_secs * f.est_noise).max(0.0)
            } else {
                lead_secs
            };
            out.failures.push(FailureEvent {
                time_hours: f.time_hours,
                node: f.node,
                sequence_id: f.sequence_id,
                lead_secs,
                est_lead_secs,
                predicted: f.predicted,
            });
        }
        for p in &self.false_positives {
            let lead_secs = predictor.usable_lead_secs(p.raw_lead * config.lead_scale);
            out.false_positives.push(Prediction {
                node: p.node,
                at_hours: p.at_hours,
                lead_secs,
                sequence_id: p.sequence_id,
                genuine: false,
            });
        }
    }

    /// Count of genuine failures captured in the core.
    pub fn failure_count(&self) -> usize {
        self.failures.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (LeadTimeModel, Predictor) {
        (LeadTimeModel::desh_default(), Predictor::aarohi_default())
    }

    #[test]
    fn failure_rate_matches_distribution_min_stability() {
        let (leads, predictor) = setup();
        let dist = FailureDistribution::OLCF_TITAN;
        let cfg = TraceConfig::new(dist, 2272, 10_000.0);
        let mut rng = SimRng::seed_from(1);
        let mut total = 0usize;
        let runs = 40;
        for _ in 0..runs {
            total += FailureTrace::generate(&cfg, &leads, &predictor, &mut rng).failure_count();
        }
        let rate = total as f64 / (runs as f64 * 10_000.0);
        // Min-stability mean inter-arrival: scale·(N/c)^{1/k}·Γ(1+1/k).
        let expected = 1.0 / dist.job_weibull(2272).mean().unwrap();
        assert!(
            (rate - expected).abs() / expected < 0.1,
            "rate {rate} vs expected {expected}"
        );
    }

    #[test]
    fn thinning_rate_matches_c_over_n() {
        let (leads, predictor) = setup();
        let dist = FailureDistribution::OLCF_TITAN;
        let cfg = TraceConfig::new(dist, 9434, 5_000.0).with_projection(Projection::Thinning);
        let mut rng = SimRng::seed_from(2);
        let mut total = 0usize;
        let runs = 30;
        for _ in 0..runs {
            total += FailureTrace::generate(&cfg, &leads, &predictor, &mut rng).failure_count();
        }
        let rate = total as f64 / (runs as f64 * 5_000.0);
        // Half the system → half the system event rate.
        let expected = 0.5 / dist.system_mtbf_hours();
        assert!(
            (rate - expected).abs() / expected < 0.12,
            "rate {rate} vs expected {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "thinning projection requires")]
    fn thinning_rejects_oversized_jobs() {
        let (leads, predictor) = setup();
        let cfg = TraceConfig::new(FailureDistribution::LANL_SYSTEM_8, 2272, 100.0)
            .with_projection(Projection::Thinning);
        let mut rng = SimRng::seed_from(3);
        let _ = FailureTrace::generate(&cfg, &leads, &predictor, &mut rng);
    }

    #[test]
    fn predicted_fraction_tracks_recall() {
        let (leads, _) = setup();
        let predictor = Predictor::new(0.6, 0.0, 0.0);
        let cfg = TraceConfig::new(FailureDistribution::LANL_SYSTEM_18, 1024, 20_000.0);
        let mut rng = SimRng::seed_from(4);
        let trace = FailureTrace::generate(&cfg, &leads, &predictor, &mut rng);
        assert!(trace.failure_count() > 500, "need statistics");
        let frac = trace.predicted_count() as f64 / trace.failure_count() as f64;
        assert!((frac - 0.6).abs() < 0.05, "predicted fraction {frac}");
        assert!(trace.false_positives.is_empty(), "fp share 0 → none");
    }

    #[test]
    fn fp_share_is_respected() {
        let (leads, _) = setup();
        let predictor = Predictor::new(1.0, 0.18, 0.0);
        let cfg = TraceConfig::new(FailureDistribution::LANL_SYSTEM_18, 1024, 20_000.0);
        let mut rng = SimRng::seed_from(5);
        let trace = FailureTrace::generate(&cfg, &leads, &predictor, &mut rng);
        let genuine = trace.predicted_count() as f64;
        let fp = trace.false_positives.len() as f64;
        let share = fp / (fp + genuine);
        assert!((share - 0.18).abs() < 0.03, "fp share {share}");
        assert!(trace
            .false_positives
            .iter()
            .all(|p| !p.genuine && p.at_hours < 20_000.0));
    }

    #[test]
    fn lead_scaling_scales_leads() {
        let (leads, predictor) = setup();
        let base = TraceConfig::new(FailureDistribution::OLCF_TITAN, 2272, 30_000.0);
        let scaled = base.with_lead_scale(1.5);
        let mut rng1 = SimRng::seed_from(6);
        let mut rng2 = SimRng::seed_from(6);
        let t1 = FailureTrace::generate(&base, &leads, &predictor, &mut rng1);
        let t2 = FailureTrace::generate(&scaled, &leads, &predictor, &mut rng2);
        assert_eq!(t1.failure_count(), t2.failure_count(), "same seed, same events");
        for (a, b) in t1.failures.iter().zip(&t2.failures) {
            // usable_lead subtracts the 0.31 ms inference latency *after*
            // scaling, so allow that much slack.
            let latency = predictor.latency_secs();
            assert!((b.lead_secs - 1.5 * a.lead_secs).abs() < 2.0 * latency + 1e-9);
        }
    }

    #[test]
    fn failures_ascend_and_land_inside_job() {
        let (leads, predictor) = setup();
        let cfg = TraceConfig::new(FailureDistribution::OLCF_TITAN, 505, 50_000.0);
        let mut rng = SimRng::seed_from(7);
        let trace = FailureTrace::generate(&cfg, &leads, &predictor, &mut rng);
        assert!(trace
            .failures
            .windows(2)
            .all(|w| w[0].time_hours <= w[1].time_hours));
        assert!(trace.failures.iter().all(|f| f.node < 505));
        assert!(trace.failures.iter().all(|f| f.time_hours < 50_000.0));
    }

    #[test]
    fn hotspot_selection_concentrates_failures() {
        let sel = NodeSelection::Hotspot {
            fraction: 0.1,
            weight: 10.0,
        };
        let mut rng = SimRng::seed_from(8);
        let n = 1000u64;
        let hot_count = 100u64;
        let draws = 100_000;
        let hot_hits = (0..draws)
            .filter(|_| (sel.pick(&mut rng, n) as u64) < hot_count)
            .count();
        // Hot mass: 100·10 / (100·10 + 900) = 1000/1900 ≈ 0.526.
        let frac = hot_hits as f64 / draws as f64;
        assert!((frac - 0.526).abs() < 0.01, "hot fraction {frac}");
        // Uniform stays uniform.
        let uni = NodeSelection::Uniform;
        let uni_hits = (0..draws)
            .filter(|_| (uni.pick(&mut rng, n) as u64) < hot_count)
            .count();
        let ufrac = uni_hits as f64 / draws as f64;
        assert!((ufrac - 0.1).abs() < 0.01, "uniform fraction {ufrac}");
    }

    #[test]
    fn hotspot_traces_remain_well_formed_and_uniform_is_unchanged() {
        let (leads, predictor) = setup();
        let base = TraceConfig::new(FailureDistribution::OLCF_TITAN, 505, 10_000.0);
        // Uniform must be bit-identical with and without the explicit
        // default (regression: adding the extension must not perturb the
        // RNG stream of existing experiments).
        let mut r1 = SimRng::seed_from(3);
        let mut r2 = SimRng::seed_from(3);
        let a = FailureTrace::generate(&base, &leads, &predictor, &mut r1);
        let b = FailureTrace::generate(
            &base.with_node_selection(NodeSelection::Uniform),
            &leads,
            &predictor,
            &mut r2,
        );
        assert_eq!(a, b);
        // Hotspot traces stay valid and actually concentrate.
        let hot_cfg = base.with_node_selection(NodeSelection::Hotspot {
            fraction: 0.05,
            weight: 20.0,
        });
        let mut r3 = SimRng::seed_from(4);
        let t = FailureTrace::generate(&hot_cfg, &leads, &predictor, &mut r3);
        assert!(t.failures.iter().all(|f| (f.node as u64) < 505));
        if t.failure_count() >= 20 {
            let hot_cut = (505.0f64 * 0.05).ceil() as u32;
            let hot = t.failures.iter().filter(|f| f.node < hot_cut).count();
            assert!(
                hot as f64 / t.failure_count() as f64 > 0.25,
                "hotspots must attract failures"
            );
        }
    }

    #[test]
    fn generate_into_matches_generate_and_reuses_buffers() {
        let (leads, predictor) = setup();
        let cfg_a = TraceConfig::new(FailureDistribution::OLCF_TITAN, 505, 5_000.0);
        let cfg_b = TraceConfig::new(FailureDistribution::LANL_SYSTEM_18, 1024, 2_000.0)
            .with_projection(Projection::Thinning);
        let mut reused = FailureTrace::default();
        for (i, cfg) in [cfg_a, cfg_b, cfg_a].iter().enumerate() {
            let seed = 100 + i as u64;
            let mut r1 = SimRng::seed_from(seed);
            let mut r2 = SimRng::seed_from(seed);
            let fresh = FailureTrace::generate(cfg, &leads, &predictor, &mut r1);
            reused.generate_into(cfg, &leads, &predictor, &mut r2);
            assert_eq!(fresh, reused, "identical draws for config {i}");
            assert_eq!(
                r1.uniform01().to_bits(),
                r2.uniform01().to_bits(),
                "RNGs left in the same state"
            );
        }
    }

    #[test]
    fn core_instantiation_is_bit_identical_to_direct_generation() {
        // For every projection, noise setting, and lead scale: generating
        // a TraceCore and instantiating a scale view must (a) consume the
        // exact RNG stream of direct generation and (b) reproduce the
        // direct trace bit-for-bit.
        let (leads, predictor) = setup();
        let configs = [
            TraceConfig::new(FailureDistribution::OLCF_TITAN, 505, 5_000.0),
            TraceConfig::new(FailureDistribution::OLCF_TITAN, 2272, 2_000.0)
                .with_projection(Projection::Thinning),
            TraceConfig::new(FailureDistribution::LANL_SYSTEM_18, 1024, 3_000.0)
                .with_lead_error(0.4),
            TraceConfig::new(FailureDistribution::LANL_SYSTEM_8, 40, 20_000.0)
                .with_projection(Projection::Thinning)
                .with_node_selection(NodeSelection::Hotspot {
                    fraction: 0.1,
                    weight: 5.0,
                }),
        ];
        let mut core = TraceCore::default();
        let mut view = FailureTrace::default();
        for (i, base) in configs.iter().enumerate() {
            for (j, scale) in [1.5, 1.1, 1.0, 0.9, 0.5].iter().enumerate() {
                let cfg = base.with_lead_scale(*scale);
                let seed = 1000 + (i * 10 + j) as u64;
                let mut r1 = SimRng::seed_from(seed);
                let mut r2 = SimRng::seed_from(seed);
                let direct = FailureTrace::generate(&cfg, &leads, &predictor, &mut r1);
                // Generate the core under a *different* scale-mate of the
                // same config — the draws must not depend on the scale.
                core.generate_into(&base.with_lead_scale(2.0), &leads, &predictor, &mut r2);
                core.instantiate_into(&cfg, &predictor, &mut view);
                assert_eq!(direct, view, "config {i} scale {scale}");
                assert_eq!(
                    r1.uniform01().to_bits(),
                    r2.uniform01().to_bits(),
                    "config {i} scale {scale}: RNGs must leave in the same state"
                );
            }
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scale-mates")]
    fn core_rejects_non_scale_mate_views() {
        let (leads, predictor) = setup();
        let a = TraceConfig::new(FailureDistribution::OLCF_TITAN, 505, 2_000.0);
        let b = TraceConfig::new(FailureDistribution::OLCF_TITAN, 1024, 2_000.0);
        let mut core = TraceCore::default();
        let mut rng = SimRng::seed_from(9);
        core.generate_into(&a, &leads, &predictor, &mut rng);
        let mut out = FailureTrace::default();
        core.instantiate_into(&b, &predictor, &mut out);
    }

    #[test]
    fn scale_invariant_normalizes_only_the_lead_scale() {
        let cfg = TraceConfig::new(FailureDistribution::OLCF_TITAN, 505, 2_000.0)
            .with_lead_scale(1.5)
            .with_lead_error(0.3)
            .with_projection(Projection::Thinning);
        let core = cfg.scale_invariant();
        assert_eq!(core.lead_scale, 1.0);
        assert_eq!(core, cfg.with_lead_scale(0.5).scale_invariant());
        // Everything else participates in the key.
        assert_ne!(core, cfg.with_lead_error(0.0).scale_invariant());
    }

    #[test]
    fn prediction_time_never_negative() {
        let f = FailureEvent {
            time_hours: 0.001, // failure 3.6 s in, lead 60 s
            node: 0,
            sequence_id: 1,
            lead_secs: 60.0,
            est_lead_secs: 60.0,
            predicted: true,
        };
        assert_eq!(f.prediction_time_hours(), 0.0);
    }
}

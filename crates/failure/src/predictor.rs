//! Aarohi-style online failure predictor.
//!
//! The paper places one predictor instance per compute node (on a spare
//! core) and credits it with 0.31 ms inference latency over 18 log streams.
//! For the C/R simulation what matters is the predictor's *contract*:
//!
//! * a true failure is announced `lead` seconds ahead with probability
//!   `recall` (the complement of the false-negative rate swept in
//!   Observation 9);
//! * some announcements are spurious — the paper holds the false-positive
//!   share of predictions at 18 %;
//! * announcing costs `latency` (0.31 ms), which is subtracted from the
//!   usable lead time.

use pckpt_simrng::SimRng;

/// A failure prediction as delivered to the C/R runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Node the prediction is for (job-local index).
    pub node: u32,
    /// Absolute time the prediction is delivered, hours.
    pub at_hours: f64,
    /// Usable lead time from delivery to (predicted) failure, seconds.
    pub lead_secs: f64,
    /// Failure-chain sequence the prediction is based on.
    pub sequence_id: u32,
    /// False if this is a false positive (no failure will follow).
    pub genuine: bool,
}

/// Predictor quality parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predictor {
    recall: f64,
    fp_share: f64,
    latency_secs: f64,
}

impl Predictor {
    /// Creates a predictor with `recall` ∈ \[0, 1\] (1 − false-negative
    /// rate) and `fp_share` ∈ \[0, 1) (fraction of all predictions that are
    /// false positives).
    pub fn new(recall: f64, fp_share: f64, latency_secs: f64) -> Self {
        assert!((0.0..=1.0).contains(&recall), "recall must be in [0,1]");
        assert!((0.0..1.0).contains(&fp_share), "fp share must be in [0,1)");
        assert!(latency_secs >= 0.0);
        Self {
            recall,
            fp_share,
            latency_secs,
        }
    }

    /// The paper's working point: recall 0.85 (see DESIGN.md §3 item 6 for
    /// how this is inferred from the FT-ratio tables), 18 % false-positive
    /// share, 0.31 ms inference latency.
    pub fn aarohi_default() -> Self {
        Self::new(0.85, 0.18, 0.31e-3)
    }

    /// A copy with a different recall (Observation 9 sweeps the FN rate —
    /// `with_false_negative_rate(fnr)` keeps the other parameters).
    pub fn with_false_negative_rate(self, fnr: f64) -> Self {
        Self::new(1.0 - fnr, self.fp_share, self.latency_secs)
    }

    /// A copy with a different false-positive share.
    pub fn with_fp_share(self, fp_share: f64) -> Self {
        Self::new(self.recall, fp_share, self.latency_secs)
    }

    /// Probability a true failure is predicted.
    pub fn recall(&self) -> f64 {
        self.recall
    }

    /// False-negative rate.
    pub fn false_negative_rate(&self) -> f64 {
        1.0 - self.recall
    }

    /// Fraction of emitted predictions that are false positives.
    pub fn fp_share(&self) -> f64 {
        self.fp_share
    }

    /// Expected number of false positives per *genuine* prediction:
    /// `fp / (fp + genuine) = fp_share` ⇒ `fp/genuine = s/(1−s)`.
    pub fn fp_per_true_prediction(&self) -> f64 {
        self.fp_share / (1.0 - self.fp_share)
    }

    /// Inference latency, seconds.
    pub fn latency_secs(&self) -> f64 {
        self.latency_secs
    }

    /// Rolls whether a particular true failure gets predicted.
    pub fn predicts(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.recall)
    }

    /// The lead time usable by the C/R runtime once inference latency is
    /// paid.
    pub fn usable_lead_secs(&self, raw_lead_secs: f64) -> f64 {
        (raw_lead_secs - self.latency_secs).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let p = Predictor::aarohi_default();
        assert_eq!(p.recall(), 0.85);
        assert!((p.false_negative_rate() - 0.15).abs() < 1e-12);
        assert_eq!(p.fp_share(), 0.18);
        assert_eq!(p.latency_secs(), 0.31e-3);
    }

    #[test]
    fn fp_per_true_prediction_algebra() {
        let p = Predictor::new(1.0, 0.18, 0.0);
        // 0.18/0.82 ≈ 0.2195 false positives per genuine prediction.
        assert!((p.fp_per_true_prediction() - 0.18 / 0.82).abs() < 1e-12);
        let none = Predictor::new(1.0, 0.0, 0.0);
        assert_eq!(none.fp_per_true_prediction(), 0.0);
    }

    #[test]
    fn predicts_fraction_matches_recall() {
        let p = Predictor::new(0.7, 0.0, 0.0);
        let mut rng = SimRng::seed_from(1);
        let n = 100_000;
        let hits = (0..n).filter(|_| p.predicts(&mut rng)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn usable_lead_subtracts_latency() {
        let p = Predictor::aarohi_default();
        assert!((p.usable_lead_secs(10.0) - (10.0 - 0.31e-3)).abs() < 1e-12);
        assert_eq!(p.usable_lead_secs(1e-5), 0.0, "clamped at zero");
    }

    #[test]
    fn fn_sweep_constructor() {
        let p = Predictor::aarohi_default().with_false_negative_rate(0.4);
        assert!((p.recall() - 0.6).abs() < 1e-12);
        assert_eq!(p.fp_share(), 0.18, "fp share preserved");
        let q = p.with_fp_share(0.0);
        assert_eq!(q.fp_share(), 0.0);
        assert!((q.recall() - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "recall")]
    fn rejects_bad_recall() {
        let _ = Predictor::new(1.5, 0.1, 0.0);
    }
}

//! `pckpt-failure` — failure generation, log-based failure-chain analysis,
//! and lead-time prediction.
//!
//! The paper's C/R models are driven by three failure-related inputs:
//!
//! 1. **When failures happen** — Weibull inter-arrival processes fitted to
//!    three production systems (Table III: LANL systems 8 and 18, OLCF
//!    Titan). [`system`] carries those parameters and projects a
//!    system-wide process onto a job's node subset; [`generator`] turns
//!    them into concrete per-run failure traces.
//! 2. **How much warning a prediction gives** — lead times mined from
//!    production logs with Desh-style failure-chain analysis (Fig. 2a).
//!    [`chains`] implements the full synthetic pipeline: a log generator
//!    that plants phrase chains ahead of each failure, and an analyzer
//!    that recovers the chains and their first-phrase-to-failure lead
//!    times. [`leadtime`] is the resulting 10-sequence mixture model.
//! 3. **Whether the predictor catches a failure** — an Aarohi-style online
//!    predictor abstraction ([`predictor`]) with configurable recall
//!    (1 − false-negative rate), an 18 % false-positive share, and the
//!    0.31 ms inference latency the paper quotes.
//!
//! [`system::RateEstimator`] additionally provides the windowed failure-rate
//! estimate the simulation uses to refresh the optimal checkpoint interval
//! "to better account for a dynamically changing system failure rate"
//! (Sec. III).

#![warn(missing_docs)]

pub mod chains;
pub mod generator;
pub mod leadtime;
pub mod predictor;
pub mod system;

pub use generator::{FailureEvent, FailureTrace, Projection, TraceConfig, TraceCore};
pub use leadtime::{LeadTimeModel, SequenceStats};
pub use predictor::{Prediction, Predictor};
pub use system::{FailureDistribution, RateEstimator};

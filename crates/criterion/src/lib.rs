//! Offline compatibility shim for the subset of the `criterion` API used
//! by this workspace's benches.
//!
//! The build environment cannot reach crates.io. This crate provides a
//! working measurement harness behind criterion's names: calibrated
//! timing loops, warmup, multi-sample medians, substring filters from
//! the CLI, and machine-readable output.
//!
//! Every completed benchmark prints one human line and one
//! `CRITERION_JSON {...}` line; `scripts/bench.sh` parses the latter
//! into `BENCH_pr1.json`. Environment knobs:
//!
//! * `PCKPT_BENCH_SAMPLE_MS` — target wall time per sample (default 10)
//! * `PCKPT_BENCH_SAMPLES` — samples per benchmark (default 12)

#![warn(missing_docs)]

use std::time::Instant;

/// How batched inputs are grouped (accepted for API parity; the shim
/// times one routine call per drawn input regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifies a benchmark within a group (`function_id/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id that is just a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// One benchmark's summary statistics (nanoseconds per iteration).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark path (`group/function/parameter`).
    pub name: String,
    /// Median over samples.
    pub median_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Iterations per sample used.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

/// The measurement context handed to each benchmark closure.
pub struct Bencher {
    sample_ns_target: f64,
    samples_target: usize,
    /// Per-iteration nanoseconds, one entry per sample.
    sample_ns_per_iter: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new() -> Self {
        let sample_ms: f64 = std::env::var("PCKPT_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10.0);
        let samples = std::env::var("PCKPT_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(12usize)
            .max(3);
        Self {
            sample_ns_target: sample_ms * 1e6,
            samples_target: samples,
            sample_ns_per_iter: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Calibrates the per-sample iteration count from one timed call.
    fn calibrate(&mut self, first_call_ns: f64) {
        let per_iter = first_call_ns.max(1.0);
        self.iters_per_sample = ((self.sample_ns_target / per_iter).ceil() as u64).clamp(1, 10_000_000);
    }

    /// Benchmarks `routine` called back-to-back.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let t0 = Instant::now();
        std::hint::black_box(routine());
        self.calibrate(t0.elapsed().as_nanos() as f64);
        // One warmup sample, discarded.
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        for _ in 0..self.samples_target {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64;
            self.sample_ns_per_iter.push(ns / self.iters_per_sample as f64);
        }
    }

    /// Benchmarks `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        self.calibrate(t0.elapsed().as_nanos() as f64);
        // Bound batch memory: inputs are pre-drawn per sample.
        self.iters_per_sample = self.iters_per_sample.min(4096);
        let mut inputs: Vec<I> = Vec::with_capacity(self.iters_per_sample as usize);
        for sample in 0..=self.samples_target {
            inputs.clear();
            for _ in 0..self.iters_per_sample {
                inputs.push(setup());
            }
            let t = Instant::now();
            for input in inputs.drain(..) {
                std::hint::black_box(routine(input));
            }
            let ns = t.elapsed().as_nanos() as f64;
            if sample > 0 {
                // Sample 0 is warmup.
                self.sample_ns_per_iter.push(ns / self.iters_per_sample as f64);
            }
        }
    }

    fn result(mut self, name: &str) -> BenchResult {
        assert!(
            !self.sample_ns_per_iter.is_empty(),
            "benchmark {name} never called iter()/iter_batched()"
        );
        self.sample_ns_per_iter
            .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = self.sample_ns_per_iter.len();
        let median = if n % 2 == 1 {
            self.sample_ns_per_iter[n / 2]
        } else {
            0.5 * (self.sample_ns_per_iter[n / 2 - 1] + self.sample_ns_per_iter[n / 2])
        };
        let mean = self.sample_ns_per_iter.iter().sum::<f64>() / n as f64;
        BenchResult {
            name: name.to_string(),
            median_ns: median,
            mean_ns: mean,
            min_ns: self.sample_ns_per_iter[0],
            iters_per_sample: self.iters_per_sample,
            samples: n,
        }
    }
}

/// The top-level benchmark harness.
pub struct Criterion {
    filters: Vec<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filters: Vec::new(),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Builds a harness from CLI arguments: flags are ignored, positional
    /// arguments become substring filters on benchmark names.
    pub fn from_args() -> Self {
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filters.push(arg);
            }
        }
        Self {
            filters,
            results: Vec::new(),
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    fn record(&mut self, result: BenchResult) {
        println!(
            "{:<52} time: [{} median, {} mean, {} min] ({} samples x {} iters)",
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.mean_ns),
            fmt_ns(result.min_ns),
            result.samples,
            result.iters_per_sample,
        );
        println!(
            "CRITERION_JSON {{\"name\":\"{}\",\"median_ns\":{:.3},\"mean_ns\":{:.3},\"min_ns\":{:.3},\"samples\":{},\"iters_per_sample\":{}}}",
            result.name,
            result.median_ns,
            result.mean_ns,
            result.min_ns,
            result.samples,
            result.iters_per_sample,
        );
        self.results.push(result);
    }

    /// Runs one benchmark if it passes the CLI filter.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        if self.selected(name) {
            let mut b = Bencher::new();
            f(&mut b);
            let r = b.result(name);
            self.record(r);
        }
        self
    }

    /// Opens a named group; benchmark names are prefixed `group/...`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the closing summary (called by `criterion_main!`).
    pub fn final_summary(&self) {
        println!("\n{} benchmark(s) completed", self.results.len());
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let selected = self.criterion.selected(&full);
        if selected {
            let mut b = Bencher::new();
            f(&mut b);
            let r = b.result(&full);
            self.criterion.record(r);
        }
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group (no-op; for API parity).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Re-export for closures that want explicit black-boxing (real
/// criterion deprecated its own in favor of `std::hint`).
pub use std::hint::black_box;

/// Declares a benchmark group function combining several registration
/// functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `set_var` is process-global while tests run concurrently; every
    /// test mutating `PCKPT_BENCH_SAMPLE_MS` holds this lock for its
    /// whole span (the same pattern as `pckpt_core::env_test_lock`,
    /// local here because this shim depends on nothing).
    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn bencher_measures_and_summarizes() {
        let _env = env_lock();
        std::env::set_var("PCKPT_BENCH_SAMPLE_MS", "1");
        let mut b = Bencher::new();
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        let r = b.result("tiny");
        assert!(r.median_ns > 0.0 && r.median_ns.is_finite());
        assert!(r.min_ns <= r.median_ns);
        assert_eq!(r.samples, 12);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let _env = env_lock();
        std::env::set_var("PCKPT_BENCH_SAMPLE_MS", "1");
        let mut b = Bencher::new();
        b.iter_batched(
            || vec![1u64; 64],
            |v| std::hint::black_box(v.iter().sum::<u64>()),
            BatchSize::SmallInput,
        );
        let r = b.result("batched");
        assert!(r.median_ns > 0.0);
    }

    #[test]
    fn filters_select_by_substring() {
        let c = Criterion {
            filters: vec!["flow".into()],
            results: Vec::new(),
        };
        assert!(c.selected("flow_link_churn"));
        assert!(!c.selected("event_queue"));
        let open = Criterion::default();
        assert!(open.selected("anything"));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("CHIMERA").to_string(), "CHIMERA");
    }
}

//! Minimal argument parsing (no external parser crates on the approved
//! dependency list — the grammar is small enough to hand-roll and test).

use pckpt_core::ModelKind;
use pckpt_failure::FailureDistribution;

/// CLI usage text.
pub const USAGE: &str = "\
usage:
  pckpt simulate --app <NAME> --model <B|M1|M2|P1|P2> [common options]
  pckpt compare  --app <NAME> [common options]
  pckpt leads
  pckpt io --app <NAME>
  pckpt apps
  pckpt logs generate --out <FILE> [--nodes 400] [--failures 900]
                      [--months 6] [--seed 42]
  pckpt logs analyze --in <FILE>
  pckpt trace --app <NAME> --model <B|M1|M2|P1|P2> [--run 0] [--verbose true]
              [common options]
  pckpt grid  --app <NAME> [--scales 1.5,1,0.5] [--models B,P2]
              [--shards N] [common options]
  pckpt shard --app <NAME> [--scales ...] [--models ...] [common options]
              (internal: executes one shard; requires PCKPT_SHARD and
               PCKPT_SHARD_OUT in the environment)

common options:
  --runs <N>          Monte-Carlo runs (default 400)
  --seed <N>          master seed (default 42)
  --dist <D>          titan | lanl8 | lanl18 (default titan)
  --lead-scale <F>    lead-time scaling, e.g. 0.5 = -50% (default 1.0)
  --fn-rate <F>       predictor false-negative rate (default 0.15)
  --alpha <F>         LM transfer factor (default 3.0)

environment:
  PCKPT_RUNS=auto[:target[:cap]]  adaptive CI-driven run allocation
  PCKPT_VR=antithetic,stratified[:K]  variance-reduced trace generation
  PCKPT_SHARD_TIMEOUT_SECS=N      per-shard watchdog for `grid --shards`";

/// Options shared by the simulation subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Application name (Table I).
    pub app: String,
    /// Monte-Carlo runs.
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
    /// Failure distribution.
    pub dist: FailureDistribution,
    /// Lead-time scaling factor.
    pub lead_scale: f64,
    /// False-negative rate.
    pub fn_rate: f64,
    /// LM transfer factor α.
    pub alpha: f64,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            app: String::new(),
            runs: 400,
            seed: 42,
            dist: FailureDistribution::OLCF_TITAN,
            lead_scale: 1.0,
            fn_rate: 0.15,
            alpha: 3.0,
        }
    }
}

/// Options for `logs generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogGenOptions {
    /// Output path.
    pub out: String,
    /// Node count of the synthetic system.
    pub nodes: u32,
    /// Failures to plant.
    pub failures: usize,
    /// Log window length in months.
    pub months: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Options for the `grid` and `shard` subcommands: a lead-time sweep of
/// one application across several models, optionally scaled out over
/// subprocess shards.
#[derive(Debug, Clone, PartialEq)]
pub struct GridOptions {
    /// Common simulation options (`lead_scale` is ignored — the sweep
    /// covers `scales` instead).
    pub opts: SimOptions,
    /// Lead-time scales, one grid cell per entry.
    pub scales: Vec<f64>,
    /// Models simulated in every cell.
    pub models: Vec<ModelKind>,
    /// Shard subprocesses to fan out over (1 = in-process).
    pub shards: usize,
}

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// One model on one application.
    Simulate(ModelKind, SimOptions),
    /// All five models, paired traces.
    Compare(SimOptions),
    /// Print the lead-time model.
    Leads,
    /// Print derived I/O latencies for one app.
    Io(String),
    /// Print Table I.
    Apps,
    /// Generate a synthetic log file.
    LogsGenerate(LogGenOptions),
    /// Narrate one run of one model (run index, verbose flag).
    Trace(ModelKind, SimOptions, usize, bool),
    /// Mine failure chains from a log file.
    LogsAnalyze(String),
    /// A lead-time sweep grid, optionally sharded across subprocesses.
    Grid(GridOptions),
    /// Internal: execute one shard of a grid (spawned by `grid --shards`).
    Shard(GridOptions),
}

/// Parses an argument vector into a [`Command`].
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let sub = it.next().ok_or("missing subcommand")?;
    match sub.as_str() {
        "leads" => expect_end(it).map(|()| Command::Leads),
        "apps" => expect_end(it).map(|()| Command::Apps),
        "io" => {
            let (opts, extra) = parse_options(it)?;
            if let Some(k) = extra.first() {
                return Err(format!("unexpected option {k}"));
            }
            if opts.app.is_empty() {
                return Err("io requires --app".into());
            }
            Ok(Command::Io(opts.app))
        }
        "simulate" => {
            let (opts, extra) = parse_options(it)?;
            let model = extract_model(&extra)?;
            if opts.app.is_empty() {
                return Err("simulate requires --app".into());
            }
            Ok(Command::Simulate(model, opts))
        }
        "compare" => {
            let (opts, extra) = parse_options(it)?;
            if let Some(k) = extra.first() {
                return Err(format!("unexpected option {k}"));
            }
            if opts.app.is_empty() {
                return Err("compare requires --app".into());
            }
            Ok(Command::Compare(opts))
        }
        "logs" => parse_logs(it),
        "grid" => parse_grid(it).map(Command::Grid),
        "shard" => parse_grid(it).map(Command::Shard),
        "trace" => {
            let (opts, extra) = parse_options(it)?;
            let model = extract_model(&extra)?;
            if opts.app.is_empty() {
                return Err("trace requires --app".into());
            }
            let run = extract_kv(&extra, "--run")?.unwrap_or(0);
            let verbose = extract_kv::<bool>(&extra, "--verbose")?.unwrap_or(false);
            Ok(Command::Trace(model, opts, run, verbose))
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn parse_logs<'a>(mut it: impl Iterator<Item = &'a String>) -> Result<Command, String> {
    let action = it.next().ok_or("logs requires generate|analyze")?;
    match action.as_str() {
        "generate" => {
            let mut opts = LogGenOptions {
                out: String::new(),
                nodes: 400,
                failures: 900,
                months: 6.0,
                seed: 42,
            };
            while let Some(key) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| format!("option {key} requires a value"))?;
                match key.as_str() {
                    "--out" => opts.out = value.clone(),
                    "--nodes" => opts.nodes = parse_num(key, value)?,
                    "--failures" => opts.failures = parse_num(key, value)?,
                    "--months" => opts.months = parse_float(key, value, 0.1, 120.0)?,
                    "--seed" => opts.seed = parse_num(key, value)?,
                    other => return Err(format!("unknown option {other:?}")),
                }
            }
            if opts.out.is_empty() {
                return Err("logs generate requires --out".into());
            }
            if opts.nodes == 0 || opts.failures == 0 {
                return Err("--nodes and --failures must be positive".into());
            }
            Ok(Command::LogsGenerate(opts))
        }
        "analyze" => {
            let mut input = String::new();
            while let Some(key) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| format!("option {key} requires a value"))?;
                match key.as_str() {
                    "--in" => input = value.clone(),
                    other => return Err(format!("unknown option {other:?}")),
                }
            }
            if input.is_empty() {
                return Err("logs analyze requires --in".into());
            }
            Ok(Command::LogsAnalyze(input))
        }
        other => Err(format!("unknown logs action {other:?}")),
    }
}

fn parse_grid<'a>(it: impl Iterator<Item = &'a String>) -> Result<GridOptions, String> {
    let (opts, extra) = parse_options(it)?;
    if opts.app.is_empty() {
        return Err("grid requires --app".into());
    }
    if let Some(k) = extra
        .iter()
        .step_by(2)
        .find(|k| !matches!(k.as_str(), "--scales" | "--models" | "--shards"))
    {
        return Err(format!("unexpected option {k}"));
    }
    let scales = match extract_kv::<String>(&extra, "--scales")? {
        None => vec![opts.lead_scale],
        Some(csv) => csv
            .split(',')
            .map(|s| parse_float("--scales", s.trim(), 0.01, 10.0))
            .collect::<Result<Vec<_>, _>>()?,
    };
    let models = match extract_kv::<String>(&extra, "--models")? {
        None => vec![ModelKind::B, ModelKind::P2],
        Some(csv) => csv
            .split(',')
            .map(|s| {
                ModelKind::by_name(s.trim())
                    .ok_or_else(|| format!("--models: unknown model {s:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    if scales.is_empty() || models.is_empty() {
        return Err("--scales and --models must be non-empty".into());
    }
    let shards = extract_kv::<usize>(&extra, "--shards")?.unwrap_or(1);
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(GridOptions {
        opts,
        scales,
        models,
        shards,
    })
}

fn expect_end<'a>(mut it: impl Iterator<Item = &'a String>) -> Result<(), String> {
    match it.next() {
        None => Ok(()),
        Some(x) => Err(format!("unexpected argument {x:?}")),
    }
}

/// Parses `--key value` pairs; returns options plus any `--model` pair
/// left for the caller.
fn parse_options<'a>(
    mut it: impl Iterator<Item = &'a String>,
) -> Result<(SimOptions, Vec<String>), String> {
    let mut opts = SimOptions::default();
    let mut extra = Vec::new();
    while let Some(key) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("option {key} requires a value"))?;
        match key.as_str() {
            "--app" => opts.app = value.clone(),
            "--runs" => opts.runs = parse_num(key, value)?,
            "--seed" => opts.seed = parse_num(key, value)?,
            "--lead-scale" => opts.lead_scale = parse_float(key, value, 0.01, 10.0)?,
            "--fn-rate" => opts.fn_rate = parse_float(key, value, 0.0, 1.0)?,
            "--alpha" => opts.alpha = parse_float(key, value, 0.1, 100.0)?,
            "--dist" => {
                opts.dist = FailureDistribution::by_name(value)
                    .ok_or_else(|| format!("unknown distribution {value:?}"))?
            }
            "--model" | "--run" | "--verbose" | "--scales" | "--models" | "--shards" => {
                extra.push(key.clone());
                extra.push(value.clone());
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if opts.runs == 0 {
        return Err("--runs must be at least 1".into());
    }
    Ok((opts, extra))
}

/// Pulls an optional `--key value` pair out of the passthrough list.
fn extract_kv<T: std::str::FromStr>(extra: &[String], key: &str) -> Result<Option<T>, String> {
    match extra.iter().position(|k| k == key) {
        None => Ok(None),
        Some(pos) => {
            let value = extra
                .get(pos + 1)
                .ok_or_else(|| format!("{key} requires a value"))?;
            value
                .parse()
                .map(Some)
                .map_err(|_| format!("{key}: cannot parse {value:?}"))
        }
    }
}

fn extract_model(extra: &[String]) -> Result<ModelKind, String> {
    let pos = extra
        .iter()
        .position(|k| k == "--model")
        .ok_or("simulate requires --model")?;
    let value = extra
        .get(pos + 1)
        .ok_or("--model requires a value (B, M1, M2, P1 or P2)")?;
    ModelKind::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(value))
        .ok_or_else(|| format!("unknown model {value:?} (use B, M1, M2, P1 or P2)"))
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{key}: cannot parse {value:?}"))
}

fn parse_float(key: &str, value: &str, lo: f64, hi: f64) -> Result<f64, String> {
    let x: f64 = parse_num(key, value)?;
    if !(lo..=hi).contains(&x) {
        return Err(format!("{key}: {x} out of range [{lo}, {hi}]"));
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_simulate() {
        let cmd = parse(&v(&[
            "simulate", "--app", "XGC", "--model", "p2", "--runs", "10", "--lead-scale", "0.5",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate(model, opts) => {
                assert_eq!(model, ModelKind::P2);
                assert_eq!(opts.app, "XGC");
                assert_eq!(opts.runs, 10);
                assert_eq!(opts.lead_scale, 0.5);
                assert_eq!(opts.seed, 42, "default seed");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn dangling_flags_error_instead_of_panicking() {
        // A trailing key with no value used to index past the end.
        let err = parse(&v(&["simulate", "--app", "XGC", "--model"])).unwrap_err();
        assert!(err.contains("--model requires a value"), "got: {err}");
        let err = parse(&v(&["simulate", "--app", "XGC", "--model", "p2", "--run"])).unwrap_err();
        assert!(err.contains("--run requires a value"), "got: {err}");
    }

    #[test]
    fn unknown_app_error_lists_the_catalog() {
        use pckpt_workloads::Application;
        let err = "NOPE".parse::<Application>().unwrap_err();
        assert!(err.contains("unknown application"), "got: {err}");
        assert!(err.contains("CHIMERA") && err.contains("VULCAN"), "got: {err}");
    }

    #[test]
    fn parses_compare_with_distribution() {
        let cmd = parse(&v(&["compare", "--app", "POP", "--dist", "lanl18"])).unwrap();
        match cmd {
            Command::Compare(opts) => {
                assert_eq!(opts.dist, FailureDistribution::LANL_SYSTEM_18)
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_bare_subcommands() {
        assert_eq!(parse(&v(&["leads"])).unwrap(), Command::Leads);
        assert_eq!(parse(&v(&["apps"])).unwrap(), Command::Apps);
        assert_eq!(
            parse(&v(&["io", "--app", "S3D"])).unwrap(),
            Command::Io("S3D".into())
        );
    }

    #[test]
    fn parses_logs_subcommands() {
        let cmd = parse(&v(&[
            "logs", "generate", "--out", "/tmp/x.log", "--nodes", "64", "--failures", "50",
            "--months", "1", "--seed", "7",
        ]))
        .unwrap();
        match cmd {
            Command::LogsGenerate(o) => {
                assert_eq!(o.out, "/tmp/x.log");
                assert_eq!(o.nodes, 64);
                assert_eq!(o.failures, 50);
                assert_eq!(o.months, 1.0);
                assert_eq!(o.seed, 7);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert_eq!(
            parse(&v(&["logs", "analyze", "--in", "f.log"])).unwrap(),
            Command::LogsAnalyze("f.log".into())
        );
        assert!(parse(&v(&["logs"])).is_err());
        assert!(parse(&v(&["logs", "generate"])).is_err()); // no --out
        assert!(parse(&v(&["logs", "analyze"])).is_err()); // no --in
        assert!(parse(&v(&["logs", "prune"])).is_err());
        assert!(parse(&v(&["logs", "generate", "--out", "x", "--nodes", "0"])).is_err());
    }

    #[test]
    fn parses_grid_with_sweep_and_shards() {
        let cmd = parse(&v(&[
            "grid", "--app", "XGC", "--scales", "1.5,1,0.5", "--models", "b,P2", "--shards", "4",
            "--runs", "12", "--seed", "61",
        ]))
        .unwrap();
        match cmd {
            Command::Grid(g) => {
                assert_eq!(g.opts.app, "XGC");
                assert_eq!(g.scales, vec![1.5, 1.0, 0.5]);
                assert_eq!(g.models, vec![ModelKind::B, ModelKind::P2]);
                assert_eq!(g.shards, 4);
                assert_eq!(g.opts.runs, 12);
                assert_eq!(g.opts.seed, 61);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults: one cell at --lead-scale, B + P2, no sharding.
        match parse(&v(&["grid", "--app", "POP", "--lead-scale", "0.9"])).unwrap() {
            Command::Grid(g) => {
                assert_eq!(g.scales, vec![0.9]);
                assert_eq!(g.models, vec![ModelKind::B, ModelKind::P2]);
                assert_eq!(g.shards, 1);
            }
            other => panic!("wrong command {other:?}"),
        }
        // `shard` shares the grammar.
        match parse(&v(&["shard", "--app", "XGC", "--scales", "1"])).unwrap() {
            Command::Shard(g) => assert_eq!(g.scales, vec![1.0]),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn grid_rejects_bad_input() {
        assert!(parse(&v(&["grid", "--scales", "1"])).is_err()); // no app
        assert!(parse(&v(&["grid", "--app", "XGC", "--shards", "0"])).is_err());
        assert!(parse(&v(&["grid", "--app", "XGC", "--models", "Z9"])).is_err());
        assert!(parse(&v(&["grid", "--app", "XGC", "--scales", "nope"])).is_err());
        assert!(parse(&v(&["grid", "--app", "XGC", "--model", "P2"])).is_err());
        assert!(parse(&v(&["grid", "--app", "XGC", "--run", "1"])).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&v(&[])).is_err());
        assert!(parse(&v(&["nope"])).is_err());
        assert!(parse(&v(&["simulate", "--app", "XGC"])).is_err()); // no model
        assert!(parse(&v(&["simulate", "--model", "P2"])).is_err()); // no app
        assert!(parse(&v(&["simulate", "--app", "XGC", "--model", "Z9"])).is_err());
        assert!(parse(&v(&["compare", "--app", "XGC", "--runs"])).is_err()); // dangling
        assert!(parse(&v(&["compare", "--app", "XGC", "--runs", "0"])).is_err());
        assert!(parse(&v(&["compare", "--app", "XGC", "--fn-rate", "1.5"])).is_err());
        assert!(parse(&v(&["compare", "--app", "XGC", "--dist", "cori"])).is_err());
        assert!(parse(&v(&["leads", "extra"])).is_err());
        assert!(parse(&v(&["compare", "--app", "X", "--model", "P1"])).is_err());
    }
}

//! `pckptd` — the campaign daemon and its client.
//!
//! ```text
//! pckptd serve  --socket <PATH> [--cache-dir <DIR>] [--state-dir <DIR>]
//!               [--max-requests <N>]
//! pckptd once   --request <FILE-or-DIR> [--cache-dir <DIR>] [--state-dir <DIR>]
//! pckptd submit --socket <PATH> --request <FILE>
//! ```
//!
//! `serve` runs the long-lived service on a Unix socket (one JSON
//! request per connection; `--max-requests` bounds the accept loop for
//! scripted runs). `once` processes a request file — or every `*.json`
//! in a directory, sorted — in-process against the same cache and
//! journal directories a daemon would use, so a cold `once`, a crashed
//! daemon, and a resumed daemon all share state. `submit` is the thin
//! client: it sends one request file to a running daemon and prints
//! the response verbatim.
//!
//! Environment: `PCKPT_CACHE_DIR`, `PCKPT_CACHE_MAX`,
//! `PCKPT_JOURNAL_SYNC=always|off` (flags override the environment).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use pckpt_service::{respond, serve_unix, submit_unix, Service, ServiceConfig};

const USAGE: &str = "\
usage:
  pckptd serve  --socket <PATH> [--cache-dir <DIR>] [--state-dir <DIR>]
                [--max-requests <N>]
  pckptd once   --request <FILE-or-DIR> [--cache-dir <DIR>] [--state-dir <DIR>]
  pckptd submit --socket <PATH> --request <FILE>

environment:
  PCKPT_CACHE_DIR      persistent cell-cache directory
  PCKPT_CACHE_MAX      on-disk cell retention cap (default 4096)
  PCKPT_JOURNAL_SYNC   always (default) | off";

struct Flags {
    socket: Option<PathBuf>,
    request: Option<PathBuf>,
    cache_dir: Option<PathBuf>,
    state_dir: Option<PathBuf>,
    max_requests: Option<usize>,
}

fn parse_flags(argv: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        socket: None,
        request: None,
        cache_dir: None,
        state_dir: None,
        max_requests: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--socket" => flags.socket = Some(PathBuf::from(value("--socket")?)),
            "--request" => flags.request = Some(PathBuf::from(value("--request")?)),
            "--cache-dir" => flags.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--state-dir" => flags.state_dir = Some(PathBuf::from(value("--state-dir")?)),
            "--max-requests" => {
                flags.max_requests = Some(
                    value("--max-requests")?
                        .parse()
                        .map_err(|_| "--max-requests needs an integer".to_string())?,
                )
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(flags)
}

/// Builds the service config: environment defaults, flag overrides.
fn service_config(flags: &Flags) -> ServiceConfig {
    let mut cfg = ServiceConfig::from_env();
    if let Some(dir) = flags.cache_dir.clone() {
        cfg.state_dir = Some(dir.join("journal"));
        cfg.cache_dir = Some(dir);
    }
    if let Some(dir) = flags.state_dir.clone() {
        cfg.state_dir = Some(dir);
    }
    cfg
}

fn request_files(path: &Path) -> Result<Vec<PathBuf>, String> {
    if path.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("no *.json requests in {}", path.display()));
        }
        Ok(files)
    } else {
        Ok(vec![path.to_path_buf()])
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(mode) = argv.first() else {
        return Err("missing subcommand".into());
    };
    let flags = parse_flags(&argv[1..])?;
    match mode.as_str() {
        "serve" => {
            let socket = flags.socket.clone().ok_or("serve needs --socket")?;
            let service = Arc::new(Service::open(service_config(&flags))?);
            serve_unix(&socket, service, flags.max_requests)
        }
        "once" => {
            let request = flags.request.clone().ok_or("once needs --request")?;
            let service = Service::open(service_config(&flags))?;
            for file in request_files(&request)? {
                let text = std::fs::read_to_string(&file)
                    .map_err(|e| format!("read {}: {e}", file.display()))?;
                print!("{}", respond(text.trim(), &service));
            }
            Ok(())
        }
        "submit" => {
            let socket = flags.socket.ok_or("submit needs --socket")?;
            let request = flags.request.ok_or("submit needs --request")?;
            let text = std::fs::read_to_string(&request)
                .map_err(|e| format!("read {}: {e}", request.display()))?;
            let body = submit_unix(&socket, text.trim())?;
            print!("{body}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

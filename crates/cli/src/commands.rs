//! Command implementations.

use pckpt_analysis::Table;
use pckpt_core::{
    run_grid, run_grid_sharded, run_shard_child, shard_child_config, shard_spec_from_env,
    Aggregate, GridCell, ModelKind, RunnerConfig, ShardLauncher, SimParams,
};
use pckpt_failure::LeadTimeModel;
use pckpt_workloads::{Application, TABLE_I};

use crate::args::{Command, GridOptions, LogGenOptions, SimOptions};

/// Executes a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Simulate(model, opts) => simulate(&[model], &opts),
        Command::Compare(opts) => simulate(&ModelKind::ALL, &opts),
        Command::Leads => leads(),
        Command::Io(app) => io(&app),
        Command::Apps => apps(),
        Command::LogsGenerate(opts) => logs_generate(&opts),
        Command::LogsAnalyze(path) => logs_analyze(&path),
        Command::Trace(model, opts, run, verbose) => trace_run(model, &opts, run, verbose),
        Command::Grid(g) => grid(&g),
        Command::Shard(g) => shard(&g),
    }
}

/// Builds the grid cells for a `grid`/`shard` invocation. Coordinator and
/// shard children call this with identical [`GridOptions`], so both sides
/// reconstruct bit-identical `SimParams` — the shard protocol ships only
/// results, never configuration.
fn build_grid_cells(g: &GridOptions) -> Result<Vec<GridCell>, String> {
    let mut cells = Vec::with_capacity(g.scales.len());
    for &scale in &g.scales {
        let mut params = build_params(&g.opts)?;
        params.lead_scale = scale;
        cells.push(
            GridCell::new(params, &g.models).with_label(format!("{}@{}", g.opts.app, scale)),
        );
    }
    Ok(cells)
}

/// Rebuilds this invocation's argv as a `shard` subcommand for child
/// processes. `f64` `Display` is shortest-roundtrip, so the child parses
/// back the exact scales the coordinator holds.
fn shard_launcher(g: &GridOptions) -> Result<ShardLauncher, String> {
    let join = |xs: &[String]| xs.join(",");
    let args = vec![
        "shard".to_string(),
        "--app".into(),
        g.opts.app.clone(),
        "--dist".into(),
        g.opts.dist.short_key().into(),
        "--fn-rate".into(),
        g.opts.fn_rate.to_string(),
        "--alpha".into(),
        g.opts.alpha.to_string(),
        "--scales".into(),
        join(&g.scales.iter().map(f64::to_string).collect::<Vec<_>>()),
        "--models".into(),
        join(&g.models.iter().map(|m| m.name().to_string()).collect::<Vec<_>>()),
    ];
    ShardLauncher::current_exe(args)
}

fn grid(g: &GridOptions) -> Result<(), String> {
    let cells = build_grid_cells(g)?;
    let leads = LeadTimeModel::desh_default();
    let config = RunnerConfig::new(g.opts.runs, g.opts.seed).with_env_vr();
    let result = if g.shards > 1 {
        run_grid_sharded(&cells, &leads, &config, g.shards, &shard_launcher(g)?)?
    } else {
        run_grid(&cells, &leads, &config)
    };
    let mut t = Table::new(vec!["cell", "model", "total (h)", "vs B", "FT ratio"]).with_title(
        format!(
            "{} sweep on {} — {} runs/cell, seed {}",
            g.opts.app, g.opts.dist.name, g.opts.runs, g.opts.seed
        ),
    );
    for (i, cell) in result.cells.iter().enumerate() {
        let label = &result.labels[i];
        if let Some(v) = result.analytic_verdicts[i] {
            t.row(vec![
                label.clone(),
                "-".into(),
                "-".into(),
                format!("analytic: {}", if v.pckpt_wins { "p-ckpt" } else { "LM" }),
                "-".into(),
            ]);
            continue;
        }
        let base = cell.get(ModelKind::B);
        for (model, agg) in cell.models.iter().zip(&cell.aggregates) {
            t.row(vec![
                label.clone(),
                model.name().to_string(),
                format!("{:.2}", agg.total_hours.mean()),
                match base {
                    Some(b) if !std::ptr::eq(agg as *const Aggregate, b as *const Aggregate) => {
                        format!("{:+.1}%", agg.reduction_vs(b))
                    }
                    _ => "-".to_string(),
                },
                format!("{:.2}", agg.ft_ratio_pooled()),
            ]);
        }
    }
    println!("{t}");
    if let Some(s) = result.shard_meta {
        println!(
            "sharded over {} subprocess(es): {} re-execution(s), {} frame byte(s)",
            s.shards, s.reexecutions, s.frame_bytes
        );
    }
    println!(
        "GRID_JSON {}",
        result.meta_json(&format!("cli_grid_{}", g.opts.app.to_ascii_lowercase()))
    );
    Ok(())
}

fn shard(g: &GridOptions) -> Result<(), String> {
    let spec = shard_spec_from_env()
        .ok_or("shard is internal: requires PCKPT_SHARD=<i>/<RxG> and PCKPT_SHARD_OUT=<path>")?;
    let cells = build_grid_cells(g)?;
    let leads = LeadTimeModel::desh_default();
    run_shard_child(&cells, &leads, &shard_child_config(), &spec)
}

fn trace_run(model: ModelKind, opts: &SimOptions, run: usize, verbose: bool) -> Result<(), String> {
    use pckpt_core::CrSim;
    use pckpt_failure::{FailureTrace, TraceConfig};
    use pckpt_simrng::SimRng;
    let mut params = build_params(opts)?;
    params.model = model;
    let leads = LeadTimeModel::desh_default();
    // Reconstruct exactly the trace that run `run` of a campaign with
    // this seed would see.
    let mut rng = SimRng::seed_from(opts.seed).split(run as u64);
    let cfg = TraceConfig::new(
        params.distribution,
        params.app.nodes,
        params.app.compute_hours * params.horizon_factor,
    )
    .with_lead_scale(params.lead_scale)
    .with_projection(params.projection)
    .with_node_selection(params.node_selection);
    let failure_trace = FailureTrace::generate(&cfg, &leads, &params.predictor, &mut rng);
    println!(
        "run {run} of {} under {} (seed {}): {} failures, {} false alarms\n",
        params.app.name,
        model.name(),
        opts.seed,
        failure_trace.failure_count(),
        failure_trace.false_positives.len()
    );
    let (result, story) = CrSim::new(params, failure_trace, &leads).run_traced();
    print!("{}", story.render(verbose));
    println!(
        "\nwall {:.1} h (ideal {:.0} h) | ckpt {:.2} h, recomp {:.2} h, recovery {:.2} h | FT {:.2}",
        result.wall_secs / 3600.0,
        result.ideal_secs / 3600.0,
        result.ledger.ckpt_bucket_secs() / 3600.0,
        result.ledger.recomp_secs / 3600.0,
        result.ledger.recovery_secs / 3600.0,
        result.ledger.ft_ratio(),
    );
    Ok(())
}

fn logs_generate(opts: &LogGenOptions) -> Result<(), String> {
    use pckpt_failure::chains::{write_log, LogGenerator};
    use pckpt_simrng::SimRng;
    let mut rng = SimRng::seed_from(opts.seed);
    let window_secs = opts.months / 12.0 * 365.25 * 24.0 * 3600.0;
    let (log, truth) =
        LogGenerator::desh_default().generate(&mut rng, window_secs, opts.nodes, opts.failures);
    let file = std::fs::File::create(&opts.out)
        .map_err(|e| format!("cannot create {}: {e}", opts.out))?;
    let mut w = std::io::BufWriter::new(file);
    write_log(&mut w, &log).map_err(|e| format!("write failed: {e}"))?;
    std::io::Write::flush(&mut w).map_err(|e| format!("flush failed: {e}"))?;
    println!(
        "wrote {} log lines ({} planted failures over {:.1} months on {} nodes) to {}",
        log.len(),
        truth.len(),
        opts.months,
        opts.nodes,
        opts.out
    );
    Ok(())
}

fn logs_analyze(path: &str) -> Result<(), String> {
    use pckpt_failure::chains::{read_log, ChainAnalyzer};
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let r = std::io::BufReader::new(file);
    let log = read_log(r)?;
    let report = ChainAnalyzer::desh_default().analyze(&log);
    println!("{}: {} lines, {} failure chains mined", path, log.len(), report.chains.len());
    let mut t = Table::new(vec!["seq", "instances", "mean lead (s)", "q1", "median", "q3"]);
    for (id, n, plot) in report.boxplots() {
        t.row(vec![
            format!("{id}"),
            format!("{n}"),
            format!("{:.1}", plot.mean),
            format!("{:.1}", plot.q1),
            format!("{:.1}", plot.median),
            format!("{:.1}", plot.q3),
        ]);
    }
    println!("{t}");
    let labels: Vec<(u32, &'static str)> = LeadTimeModel::desh_default()
        .sequences()
        .iter()
        .map(|s| (s.id, s.label))
        .collect();
    let mined = report.to_leadtime_model(&labels);
    println!(
        "mined lead-time model: {} sequences, mixture mean {:.1}s",
        mined.len(),
        mined.mean_secs()
    );
    Ok(())
}

fn lookup(app: &str) -> Result<Application, String> {
    app.parse()
}

fn build_params(opts: &SimOptions) -> Result<SimParams, String> {
    let app = lookup(&opts.app)?;
    let mut params = SimParams::with_distribution(ModelKind::B, app, opts.dist);
    params.lead_scale = opts.lead_scale;
    params.lm_transfer_factor = opts.alpha;
    params.predictor = params.predictor.with_false_negative_rate(opts.fn_rate);
    Ok(params)
}

fn simulate(models: &[ModelKind], opts: &SimOptions) -> Result<(), String> {
    let params = build_params(opts)?;
    let leads = LeadTimeModel::desh_default();
    println!(
        "{} on {} ({} nodes), {} runs, seed {}, leads x{:.2}, FN {:.0}%, alpha {:.1}",
        opts.dist.name,
        params.app.name,
        params.app.nodes,
        opts.runs,
        opts.seed,
        opts.lead_scale,
        opts.fn_rate * 100.0,
        opts.alpha,
    );
    let cells = [GridCell::new(params.clone(), models)];
    let grid = run_grid(
        &cells,
        &leads,
        &RunnerConfig::new(opts.runs, opts.seed).with_env_vr(),
    );
    let campaign = grid.cell(0);
    if let Some(v) = grid.analytic_verdicts[0] {
        // PCKPT_PREFILTER answered the cell analytically — report the
        // closed-form verdict instead of a simulated table.
        println!(
            "analytic pre-filter: {} wins the LM-vs-p-ckpt crossover \
             (alpha {:.2}, sigma {:.3}, clearance {:.0}% past the threshold); \
             unset PCKPT_PREFILTER to simulate this cell",
            if v.pckpt_wins { "p-ckpt" } else { "LM" },
            v.alpha,
            v.sigma,
            100.0 * v.clearance,
        );
        return Ok(());
    }
    let base = campaign.get(ModelKind::B);
    let mut t = Table::new(vec![
        "model",
        "ckpt (h)",
        "recomp (h)",
        "recovery (h)",
        "total (h)",
        "vs B",
        "FT ratio",
    ]);
    for (model, agg) in campaign.models.iter().zip(&campaign.aggregates) {
        t.row(vec![
            model.name().to_string(),
            format!("{:.2}", agg.ckpt_hours.mean()),
            format!("{:.2}", agg.recomp_hours.mean()),
            format!("{:.2}", agg.recovery_hours.mean()),
            format!("{:.2}", agg.total_hours.mean()),
            match base {
                Some(b) if !std::ptr::eq(agg as *const Aggregate, b as *const Aggregate) => {
                    format!("{:+.1}%", agg.reduction_vs(b))
                }
                _ => "-".to_string(),
            },
            format!("{:.2}", agg.ft_ratio_pooled()),
        ]);
    }
    println!("{t}");
    let first = &campaign.aggregates[0];
    println!(
        "{:.2} failures per run on average; wall time {:.1} h (ideal {:.0} h).",
        first.failures.mean(),
        first.wall_hours.mean(),
        params.app.compute_hours,
    );
    println!(
        "ran {} model lane(s) as {} execution unit(s) on {} thread(s); \
         trace cache hit rate {:.0}%",
        grid.lanes,
        grid.units,
        grid.threads,
        100.0 * grid.trace_cache_hit_rate(),
    );
    Ok(())
}

fn leads() -> Result<(), String> {
    let model = LeadTimeModel::desh_default();
    let mut t = Table::new(vec!["seq", "label", "mean (s)", "sd (s)", "occurrences"])
        .with_title("Lead-time model (Desh-calibrated, Fig. 2a)");
    for s in model.sequences() {
        t.row(vec![
            format!("{}", s.id),
            s.label.to_string(),
            format!("{:.0}", s.mean_secs),
            format!("{:.0}", s.sd_secs),
            format!("{}", s.occurrences),
        ]);
    }
    println!("{t}");
    println!("Mixture mean: {:.1} s", model.mean_secs());
    for threshold in [10.0, 30.0, 60.0, 120.0, 240.0] {
        println!(
            "  P(lead > {threshold:>5.0} s) = {:.3}",
            model.survival(threshold)
        );
    }
    Ok(())
}

fn io(app: &str) -> Result<(), String> {
    let app = lookup(app)?;
    let params = SimParams::paper_defaults(ModelKind::P2, app);
    let per_node = params.per_node_bytes();
    let pfs = &params.io.pfs;
    println!("{} — derived I/O latencies (Summit hierarchy)", app.name);
    println!("  checkpoint per node     : {:>10.2} GB", per_node / 1e9);
    println!("  BB write (periodic ckpt): {:>10.2} s", params.bb_write_secs());
    println!("  BB read  (recovery)     : {:>10.2} s", params.io.bb.read_secs(per_node));
    println!(
        "  PFS 1-node write (p-ckpt phase 1): {:>10.2} s",
        pfs.single_node_write_secs(per_node)
    );
    println!(
        "  PFS all-nodes write (safeguard)  : {:>10.2} s",
        pfs.write_secs(app.nodes, per_node)
    );
    println!(
        "  PFS all-nodes read (recovery)    : {:>10.2} s",
        pfs.read_secs(app.nodes, per_node)
    );
    println!("  LM transfer theta                : {:>10.2} s", params.theta_secs());
    println!(
        "  OCI (Eq. 1, Titan rates)         : {:>10.2} h",
        pckpt_core::oci::young_oci_secs(
            params.bb_write_secs(),
            params.distribution.job_rate(app.nodes)
        ) / 3600.0
    );
    Ok(())
}

fn apps() -> Result<(), String> {
    let mut t = Table::new(vec![
        "application",
        "nodes",
        "ckpt total (GB)",
        "ckpt/node (GB)",
        "compute (h)",
    ])
    .with_title("Table I — workload characteristics");
    for app in &TABLE_I {
        t.row(vec![
            app.name.to_string(),
            format!("{}", app.nodes),
            format!("{:.1}", app.checkpoint_total / 1e9),
            format!("{:.2}", app.checkpoint_per_node_gb()),
            format!("{:.0}", app.compute_hours),
        ]);
    }
    println!("{t}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::SimOptions;

    #[test]
    fn build_params_applies_overrides() {
        let opts = SimOptions {
            app: "XGC".into(),
            lead_scale: 0.5,
            alpha: 2.0,
            fn_rate: 0.4,
            ..Default::default()
        };
        let p = build_params(&opts).unwrap();
        assert_eq!(p.app.name, "XGC");
        assert_eq!(p.lead_scale, 0.5);
        assert_eq!(p.lm_transfer_factor, 2.0);
        assert!((p.predictor.recall() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn unknown_app_is_reported() {
        let opts = SimOptions {
            app: "NOPE".into(),
            ..Default::default()
        };
        let err = build_params(&opts).unwrap_err();
        assert!(err.contains("unknown application"));
        assert!(err.contains("CHIMERA"));
    }

    #[test]
    fn informational_commands_run() {
        leads().unwrap();
        io("POP").unwrap();
        apps().unwrap();
        assert!(io("NOPE").is_err());
    }

    #[test]
    fn logs_roundtrip_via_files() {
        let dir = std::env::temp_dir().join("pckpt-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("synthetic.log");
        let path_str = path.to_str().unwrap().to_string();
        logs_generate(&LogGenOptions {
            out: path_str.clone(),
            nodes: 64,
            failures: 80,
            months: 1.0,
            seed: 9,
        })
        .unwrap();
        logs_analyze(&path_str).unwrap();
        assert!(logs_analyze("/nonexistent/file.log").is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn grid_small_sweep_runs_in_process() {
        let g = GridOptions {
            opts: SimOptions {
                app: "XGC".into(),
                runs: 2,
                ..Default::default()
            },
            scales: vec![1.0, 0.5],
            models: vec![ModelKind::B, ModelKind::P2],
            shards: 1,
        };
        grid(&g).unwrap();
        // `shard` is internal and refuses to run without the coordinator's
        // environment contract.
        let _lock = pckpt_core::env_test_lock();
        std::env::remove_var("PCKPT_SHARD");
        let err = shard(&g).unwrap_err();
        assert!(err.contains("PCKPT_SHARD"), "got: {err}");
    }

    #[test]
    fn simulate_small_campaign_runs() {
        let opts = SimOptions {
            app: "VULCAN".into(),
            runs: 2,
            ..Default::default()
        };
        simulate(&[ModelKind::B], &opts).unwrap();
        simulate(&ModelKind::ALL, &opts).unwrap();
    }
}

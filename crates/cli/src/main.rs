//! `pckpt` — command-line driver for the C/R simulation suite.
//!
//! ```text
//! pckpt simulate --app XGC --model P2 [--runs 400] [--seed 42]
//!                [--dist titan|lanl8|lanl18] [--lead-scale 1.0]
//!                [--fn-rate 0.15] [--alpha 3.0]
//! pckpt compare  --app XGC [options as above]     # all five models
//! pckpt leads                                     # lead-time model
//! pckpt io --app CHIMERA                          # derived latencies
//! pckpt apps                                      # Table I
//! ```

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}

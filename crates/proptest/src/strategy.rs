//! Strategies: composable value generators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of test-case values.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the runner's RNG.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; cases failing the predicate are
    /// re-drawn (up to a retry cap, then the whole case is rejected via
    /// panic to surface overly strict filters).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 consecutive draws", self.whence)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies (built by [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Integer range strategies. Sampling goes through i128 so full-width and
// negative ranges are handled uniformly.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width inclusive range
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.uniform01() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.uniform01() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::new(42);
        let s = (0u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
        let t = (1u32..=3, -5i64..5, 0.5f64..1.5);
        for _ in 0..100 {
            let (a, b, c) = t.generate(&mut rng);
            assert!((1..=3).contains(&a));
            assert!((-5..5).contains(&b));
            assert!((0.5..1.5).contains(&c));
        }
    }

    #[test]
    fn union_draws_every_option() {
        let mut rng = TestRng::new(7);
        let u = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}

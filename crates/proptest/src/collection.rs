//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specifications accepted by [`vec`].
pub trait SizeRange {
    /// Lower and upper (inclusive) length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec length range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec length range");
        (*self.start(), *self.end())
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and
/// whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max_len - self.min_len) as u64 + 1;
        let len = self.min_len + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::new(1);
        let s = vec(0u64..100, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
        let fixed = vec(crate::strategy::any::<bool>(), 3usize);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
        let incl = vec(0u8..=1, 0..=2usize);
        for _ in 0..50 {
            assert!(incl.generate(&mut rng).len() <= 2);
        }
    }
}

//! Offline compatibility shim for the subset of the `proptest` API used
//! by this workspace.
//!
//! The build environment cannot reach crates.io, so the real `proptest`
//! is unavailable. This path crate implements the pieces the test suites
//! actually use — the `proptest!` macro, range/tuple/`vec`/`Just`
//! strategies, `prop_map`, `prop_oneof!`, `any::<T>()`, and the
//! `prop_assert*` family — over a deterministic splittable generator.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message's seed/case number) but is not minimized.
//! * **Deterministic seeds.** Cases are driven by a fixed master seed
//!   (overridable with `PROPTEST_SEED`), so CI runs are reproducible;
//!   `.proptest-regressions` files are ignored.
//! * **Case count** defaults to 64 (`PROPTEST_CASES` overrides;
//!   `ProptestConfig::with_cases` still takes precedence).

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// `proptest::prelude` parity: everything the test files import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares property tests.
///
/// Supports the same surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Doc comment.
///     #[test]
///     fn my_prop(x in 0u64..100, v in proptest::collection::vec(any::<bool>(), 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_item! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_item! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands one test function at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_item {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_property(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    };
                    __case()
                },
            );
        }
        $crate::__proptest_item! { ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Rejects the current case (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniformly picks one of several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

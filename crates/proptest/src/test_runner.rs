//! The property-test runner: configuration, RNG, and the case loop.

/// Runner configuration (`ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!`) tolerated before the
    /// property errors out as too restrictive.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self {
            cases,
            max_global_rejects: 4096,
        }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic RNG driving value generation (SplitMix64 core).
///
/// Deliberately small and self-contained: the shim must not depend on
/// workspace crates (they dev-depend on it).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; unbiased via rejection.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53-bit precision.
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the test name: stable per-test seed diversification.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `case` until `config.cases` successes, panicking on the first
/// failure. Each case draws from an independent, deterministic stream,
/// so a reported `case` number always reproduces.
pub fn run_property<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let master = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5052_4F50_5445_5354u64); // "PROPTEST"
    let base = master ^ name_hash(name);
    let mut successes = 0u32;
    let mut rejects = 0u32;
    let mut case_idx = 0u64;
    while successes < config.cases {
        let mut rng = TestRng::new(base.wrapping_add(case_idx.wrapping_mul(0x9E37_79B9)));
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "property {name}: too many prop_assume! rejections \
                         ({rejects}) — strategy too restrictive"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property {name} failed at case {case_idx} \
                     (seed 0x{master:016x}): {msg}"
                );
            }
        }
        case_idx += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_counts_successes() {
        let mut calls = 0;
        run_property(&ProptestConfig::with_cases(10), "t", |_| {
            calls += 1;
            Ok(())
        });
        assert_eq!(calls, 10);
    }

    #[test]
    fn rejects_are_redrawn() {
        let mut n = 0u32;
        run_property(&ProptestConfig::with_cases(5), "t2", |rng| {
            n += 1;
            if rng.next_u64() % 2 == 0 {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(n >= 5);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        run_property(&ProptestConfig::with_cases(5), "t3", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::new(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}

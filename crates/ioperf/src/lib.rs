//! `pckpt-ioperf` — the multi-level I/O performance model.
//!
//! Section IV of the paper characterizes the *actual* I/O performance an
//! application sees on Summit's GPFS parallel file system with two
//! experiments: (1) aggregate single-node write bandwidth as a function of
//! MPI task count and transfer size (Fig. 2b; 8 tasks is optimal, peaking
//! at ≈13–13.5 GB/s), and (2) a weak-scaling matrix of aggregate bandwidth
//! over (node count × per-node transfer size) (Fig. 2c; the fabric-wide
//! ceiling is ≈2.5 TB/s). The simulation looks up checkpoint-commit times
//! in that matrix.
//!
//! The authors' raw measurements are not published, so this crate provides
//! a **parametric model fitted to every number the paper states** (see
//! DESIGN.md §3) and exposes it two ways:
//!
//! * [`node::NodeIoModel`] — the analytic single-node curve (regenerates
//!   Fig. 2b),
//! * [`pfs::PerfMatrix`] — a sampled (nodes × size) grid with bilinear
//!   log-log interpolation, built from the analytic model exactly like the
//!   paper builds its matrix from measurements (regenerates Fig. 2c and is
//!   what the C/R models query at simulation time).
//!
//! The other storage levels are modeled in [`bb`] (node-local burst
//! buffers: 1.6 TB, 2.1 GB/s write / 5.5 GB/s read) and [`net`] (NIC
//! injection bandwidth 12.5 GB/s, log-depth barrier latency — 8 µs at
//! 2048 nodes).

#![warn(missing_docs)]

pub mod bb;
pub mod net;
pub mod node;
pub mod pfs;

pub use bb::BurstBuffer;
pub use net::Network;
pub use node::NodeIoModel;
pub use pfs::{CapacityTable, PerfMatrix, PfsModel};

/// One gigabyte in bytes (decimal, as used throughout the paper).
pub const GB: f64 = 1e9;
/// One terabyte in bytes.
pub const TB: f64 = 1e12;
/// One megabyte in bytes.
pub const MB: f64 = 1e6;

/// The full Summit-like I/O hierarchy bundled together.
///
/// This is the object the C/R models take: burst buffer, PFS matrix and
/// network for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct IoHierarchy {
    /// Node-local burst buffer.
    pub bb: BurstBuffer,
    /// Parallel file system performance matrix.
    pub pfs: PfsModel,
    /// Interconnect.
    pub net: Network,
}

impl IoHierarchy {
    /// The Summit configuration used throughout the paper's evaluation.
    pub fn summit() -> Self {
        Self {
            bb: BurstBuffer::summit(),
            pfs: PfsModel::summit(),
            net: Network::summit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_hierarchy_is_consistent() {
        let io = IoHierarchy::summit();
        // BB write is slower than read (paper: 2.1 vs 5.5 GB/s).
        assert!(io.bb.write_bw() < io.bb.read_bw());
        // Single-node PFS write beats the BB write bandwidth on Summit
        // (13+ GB/s vs 2.1 GB/s) — this asymmetry is why proactive
        // checkpoints can bypass the BB entirely.
        assert!(io.pfs.single_node_write_bw(64.0 * GB) > io.bb.write_bw());
        // NIC: 12.5 GB/s.
        assert!((io.net.injection_bw() - 12.5 * GB).abs() < 1e-3);
    }
}

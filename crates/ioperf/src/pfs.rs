//! Parallel-file-system weak-scaling model (Fig. 2c).
//!
//! The paper's second I/O experiment builds a performance *matrix*:
//! aggregate GPFS bandwidth measured over a grid of (node count ×
//! per-node transfer size), with 8 writer tasks per node. The simulator
//! then computes every PFS checkpoint-commit time by looking up this
//! matrix. We reproduce the pipeline:
//!
//! 1. an analytic weak-scaling law combines the single-node curve
//!    ([`crate::node::NodeIoModel`]) with the fabric-wide ceiling of
//!    ≈2.5 TB/s reported for Summit — aggregate bandwidth follows a
//!    contention power law `min(C, b₁(s)·n^{1−β})` with β ≈ 0.4: one node
//!    gets the full client bandwidth, but per-node share decays as clients
//!    contend for the I/O servers long before the fabric ceiling is hit.
//!    The exponent is calibrated against the paper's observable
//!    consequences — e.g. XGC's 1515-node safeguard commit must take
//!    ≈2 minutes for M1's FT ratio of 0.04 (Table II) to emerge, and
//!    S3D's ≈35 s commit reproduces its 77 %→50 % recomputation-reduction
//!    slide (Sec. V);
//! 2. [`PerfMatrix`] samples that law on a log₂ grid exactly as the paper
//!    samples its measurements, and answers queries by bilinear
//!    interpolation in (log₂ nodes, log₂ size) space;
//! 3. [`PfsModel`] wraps the matrix with time/bandwidth convenience
//!    queries used by the C/R models. Reads use the same matrix as writes
//!    (the paper's stated simplification, justified because recovery reads
//!    are single-node and nowhere near aggregate limits).

use crate::node::NodeIoModel;
use crate::TB;

/// A sampled (nodes × per-node-size) aggregate-bandwidth grid with
/// bilinear log-log interpolation.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfMatrix {
    /// log2 of node counts, ascending.
    log_nodes: Vec<f64>,
    /// log2 of per-node transfer sizes (bytes), ascending.
    log_sizes: Vec<f64>,
    /// Aggregate bandwidth (bytes/sec), row-major `[node][size]`.
    bw: Vec<f64>,
}

impl PerfMatrix {
    /// Builds a matrix by sampling `f(nodes, per_node_bytes) → bytes/sec`
    /// on the given grid axes. Panics on empty or non-ascending axes.
    pub fn from_fn(
        node_counts: &[u64],
        per_node_sizes: &[f64],
        f: impl Fn(u64, f64) -> f64,
    ) -> Self {
        assert!(
            !node_counts.is_empty() && !per_node_sizes.is_empty(),
            "matrix axes must be non-empty"
        );
        assert!(
            node_counts.windows(2).all(|w| w[0] < w[1]),
            "node axis must be strictly ascending"
        );
        assert!(
            per_node_sizes.windows(2).all(|w| w[0] < w[1]),
            "size axis must be strictly ascending"
        );
        assert!(node_counts[0] >= 1 && per_node_sizes[0] > 0.0);
        let mut bw = Vec::with_capacity(node_counts.len() * per_node_sizes.len());
        for &n in node_counts {
            for &s in per_node_sizes {
                let v = f(n, s);
                assert!(v > 0.0 && v.is_finite(), "bandwidth sample must be positive");
                bw.push(v);
            }
        }
        Self {
            log_nodes: node_counts.iter().map(|&n| (n as f64).log2()).collect(),
            log_sizes: per_node_sizes.iter().map(|&s| s.log2()).collect(),
            bw,
        }
    }

    fn cols(&self) -> usize {
        self.log_sizes.len()
    }

    /// Locates `x` on `axis`, returning (lower index, interpolation
    /// fraction). Queries outside the grid clamp to the border.
    fn locate(axis: &[f64], x: f64) -> (usize, f64) {
        if x <= axis[0] {
            return (0, 0.0);
        }
        let last = axis.len() - 1;
        if x >= axis[last] {
            return (last.saturating_sub(1), if last == 0 { 0.0 } else { 1.0 });
        }
        let hi = axis.partition_point(|&a| a <= x);
        let lo = hi - 1;
        let frac = (x - axis[lo]) / (axis[hi] - axis[lo]);
        (lo, frac)
    }

    /// Aggregate bandwidth (bytes/sec) for `nodes` nodes each moving
    /// `per_node_bytes`, by bilinear interpolation in log₂ space.
    pub fn aggregate_bw(&self, nodes: u64, per_node_bytes: f64) -> f64 {
        assert!(nodes >= 1, "at least one node required");
        assert!(
            per_node_bytes > 0.0 && per_node_bytes.is_finite(),
            "per-node size must be positive"
        );
        let (i, fi) = Self::locate(&self.log_nodes, (nodes as f64).log2());
        let (j, fj) = Self::locate(&self.log_sizes, per_node_bytes.log2());
        let c = self.cols();
        let rows = self.log_nodes.len();
        let i1 = (i + 1).min(rows - 1);
        let j1 = (j + 1).min(c - 1);
        let v00 = self.bw[i * c + j];
        let v01 = self.bw[i * c + j1];
        let v10 = self.bw[i1 * c + j];
        let v11 = self.bw[i1 * c + j1];
        let v0 = v00 * (1.0 - fj) + v01 * fj;
        let v1 = v10 * (1.0 - fj) + v11 * fj;
        v0 * (1.0 - fi) + v1 * fi
    }

    /// The sampled node-count axis (denormalized).
    pub fn node_axis(&self) -> Vec<u64> {
        self.log_nodes.iter().map(|&l| 2f64.powf(l).round() as u64).collect()
    }

    /// The sampled per-node-size axis in bytes.
    pub fn size_axis(&self) -> Vec<f64> {
        self.log_sizes.iter().map(|&l| 2f64.powf(l)).collect()
    }

    /// Raw sample at grid position `(node_idx, size_idx)`.
    pub fn sample(&self, node_idx: usize, size_idx: usize) -> f64 {
        self.bw[node_idx * self.cols() + size_idx]
    }
}

/// The PFS model the C/R simulations query.
#[derive(Debug, Clone, PartialEq)]
pub struct PfsModel {
    matrix: PerfMatrix,
    node_model: NodeIoModel,
    ceiling: f64,
    contention_exponent: f64,
}

/// Default weak-scaling contention exponent β: aggregate bandwidth grows
/// as `n^{1−β}`. See the module docs for the calibration anchors.
pub const DEFAULT_CONTENTION_EXPONENT: f64 = 0.4;

impl PfsModel {
    /// Builds the Summit model: single-node curve from
    /// [`NodeIoModel::summit`], 2.5 TB/s aggregate ceiling, β = 0.4,
    /// sampled on a 1–8192-node × 16 MB–1 TB grid.
    pub fn summit() -> Self {
        Self::from_parts(NodeIoModel::summit(), 2.5 * TB, DEFAULT_CONTENTION_EXPONENT)
    }

    /// Builds a model from a single-node curve, an aggregate ceiling and a
    /// contention exponent β ∈ [0, 1).
    pub fn from_parts(node_model: NodeIoModel, ceiling: f64, contention_exponent: f64) -> Self {
        assert!(ceiling > 0.0, "aggregate ceiling must be positive");
        assert!(
            (0.0..1.0).contains(&contention_exponent),
            "contention exponent must be in [0, 1)"
        );
        let node_counts: Vec<u64> = (0..=13).map(|e| 1u64 << e).collect(); // 1..8192
        let per_node_sizes: Vec<f64> = (24..=40).map(|e| (1u64 << e) as f64).collect(); // 16 MB..1 TB
        let matrix = PerfMatrix::from_fn(&node_counts, &per_node_sizes, |n, s| {
            Self::weak_scaling_law(&node_model, ceiling, contention_exponent, n, s)
        });
        Self {
            matrix,
            node_model,
            ceiling,
            contention_exponent,
        }
    }

    /// The analytic weak-scaling law: `min(C, b₁(s)·n^{1−β})`.
    fn weak_scaling_law(
        node_model: &NodeIoModel,
        ceiling: f64,
        beta: f64,
        nodes: u64,
        per_node: f64,
    ) -> f64 {
        let b1 = node_model.optimal_bandwidth(per_node);
        (b1 * (nodes as f64).powf(1.0 - beta)).min(ceiling)
    }

    /// Aggregate write bandwidth (bytes/sec) seen by a job of `nodes`
    /// nodes each committing `per_node_bytes` — the Fig. 2c lookup.
    pub fn aggregate_write_bw(&self, nodes: u64, per_node_bytes: f64) -> f64 {
        self.matrix.aggregate_bw(nodes, per_node_bytes)
    }

    /// Aggregate read bandwidth. The paper assumes the same matrix as for
    /// writes.
    pub fn aggregate_read_bw(&self, nodes: u64, per_node_bytes: f64) -> f64 {
        self.matrix.aggregate_bw(nodes, per_node_bytes)
    }

    /// Bandwidth available to a *single* node writing `bytes` (the p-ckpt
    /// phase-1 path: one vulnerable node with contention-free PFS access).
    pub fn single_node_write_bw(&self, bytes: f64) -> f64 {
        self.matrix.aggregate_bw(1, bytes)
    }

    /// Seconds for `nodes` nodes to each commit `per_node_bytes` to the
    /// PFS (synchronous, collective).
    pub fn write_secs(&self, nodes: u64, per_node_bytes: f64) -> f64 {
        if per_node_bytes == 0.0 {
            return 0.0;
        }
        nodes as f64 * per_node_bytes / self.aggregate_write_bw(nodes, per_node_bytes)
    }

    /// Seconds for one node to commit `bytes` alone.
    pub fn single_node_write_secs(&self, bytes: f64) -> f64 {
        if bytes == 0.0 {
            return 0.0;
        }
        bytes / self.single_node_write_bw(bytes)
    }

    /// Seconds for one node to read `bytes` alone (replacement-node
    /// recovery path).
    pub fn single_node_read_secs(&self, bytes: f64) -> f64 {
        self.single_node_write_secs(bytes)
    }

    /// Seconds for `nodes` nodes to each read `per_node_bytes`
    /// (post-proactive-checkpoint recovery, all nodes restore from PFS).
    pub fn read_secs(&self, nodes: u64, per_node_bytes: f64) -> f64 {
        if per_node_bytes == 0.0 {
            return 0.0;
        }
        nodes as f64 * per_node_bytes / self.aggregate_read_bw(nodes, per_node_bytes)
    }

    /// The fabric-wide bandwidth ceiling (bytes/sec).
    pub fn ceiling(&self) -> f64 {
        self.ceiling
    }

    /// The weak-scaling contention exponent β.
    pub fn contention_exponent(&self) -> f64 {
        self.contention_exponent
    }

    /// The sampled matrix (for rendering Fig. 2c).
    pub fn matrix(&self) -> &PerfMatrix {
        &self.matrix
    }

    /// The underlying single-node model (for rendering Fig. 2b).
    pub fn node_model(&self) -> &NodeIoModel {
        &self.node_model
    }

    /// Precomputes the writer-count → aggregate-bandwidth curve at a
    /// fixed per-node size. See [`CapacityTable`].
    pub fn capacity_table(&self, per_node_bytes: f64, max_writers: usize) -> CapacityTable {
        CapacityTable::new(self, per_node_bytes, max_writers)
    }
}

/// A memoized `writers → aggregate bandwidth` lookup at a fixed per-node
/// transfer size.
///
/// The fluid-flow link consults its capacity function on *every* advance
/// and completion query — the hottest call site in a campaign. The full
/// [`PfsModel::aggregate_write_bw`] path does two binary searches plus a
/// bilinear interpolation per call; for a fixed job the per-node size
/// never changes and the writer count is a small integer, so the curve is
/// precomputed once here and the hot path is a bounds-checked array index.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityTable {
    /// `bw[w-1]` = aggregate bandwidth for `w` writers; queries above the
    /// table clamp to the last entry (the curve is ceiling-saturated
    /// there anyway).
    bw: Vec<f64>,
}

impl CapacityTable {
    /// Samples `pfs.aggregate_write_bw(w, per_node_bytes)` for
    /// `w = 1..=max_writers`.
    pub fn new(pfs: &PfsModel, per_node_bytes: f64, max_writers: usize) -> Self {
        assert!(max_writers >= 1, "table needs at least one writer count");
        assert!(
            per_node_bytes > 0.0 && per_node_bytes.is_finite(),
            "per-node size must be positive"
        );
        let bw = (1..=max_writers as u64)
            .map(|w| pfs.aggregate_write_bw(w, per_node_bytes))
            .collect();
        Self { bw }
    }

    /// Aggregate bandwidth (bytes/sec) for `writers` concurrent writers.
    /// `writers = 0` is answered as 1 (the link never queries capacity
    /// with no active weight, but callers clamp defensively).
    #[inline]
    pub fn capacity(&self, writers: usize) -> f64 {
        let idx = writers.clamp(1, self.bw.len()) - 1;
        self.bw[idx]
    }

    /// Number of precomputed writer counts.
    pub fn len(&self) -> usize {
        self.bw.len()
    }

    /// Always false: the constructor rejects empty tables.
    pub fn is_empty(&self) -> bool {
        self.bw.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GB;

    #[test]
    fn single_node_matches_node_model_closely() {
        let pfs = PfsModel::summit();
        let bytes = 64.0 * GB;
        let direct = NodeIoModel::summit().optimal_bandwidth(bytes);
        let via_matrix = pfs.single_node_write_bw(bytes);
        // The saturating-exponential law deviates from linear by b1/2C ≈
        // 0.3 % at one node; interpolation adds a little more.
        assert!(
            (via_matrix - direct).abs() / direct < 0.02,
            "matrix {via_matrix} vs direct {direct}"
        );
    }

    #[test]
    fn aggregate_bandwidth_saturates_at_ceiling() {
        let pfs = PfsModel::summit();
        let big = pfs.aggregate_write_bw(8192, 256.0 * GB);
        assert!(big <= 2.5 * TB * 1.001);
        assert!(big > 2.4 * TB, "8192 nodes must near the ceiling, got {big}");
    }

    #[test]
    fn aggregate_bandwidth_monotone_in_nodes() {
        let pfs = PfsModel::summit();
        let mut prev = 0.0;
        for e in 0..13 {
            let bw = pfs.aggregate_write_bw(1 << e, 32.0 * GB);
            assert!(bw > prev, "aggregate bw must grow with node count");
            prev = bw;
        }
    }

    #[test]
    fn per_node_share_shrinks_with_scale() {
        let pfs = PfsModel::summit();
        let s = 32.0 * GB;
        let share_small = pfs.aggregate_write_bw(4, s) / 4.0;
        let share_large = pfs.aggregate_write_bw(2048, s) / 2048.0;
        assert!(
            share_large < share_small,
            "weak scaling must dilute per-node bandwidth"
        );
    }

    #[test]
    fn write_secs_examples_match_paper_scale() {
        let pfs = PfsModel::summit();
        // CHIMERA safeguard commit: 2272 nodes × ~284 GB ≈ 646 TB at
        // ~1.4 TB/s → several hundred seconds. This is why safeguard
        // checkpointing (M1) cannot beat second-scale lead times for large
        // apps (Table II: FT ratio ≈ 0.006).
        let t = pfs.write_secs(2272, 284.5 * GB);
        assert!(t > 350.0 && t < 600.0, "CHIMERA full commit = {t}s");
        // XGC: ~150 TB over 1515 nodes ≈ 2 minutes → Table II's M1 FT
        // ratio of 0.04.
        let tx = pfs.write_secs(1515, 98.8 * GB);
        assert!(tx > 110.0 && tx < 170.0, "XGC full commit = {tx}s");
        // S3D: ≈35 s, the anchor behind its 77 %→50 % recomputation slide.
        let ts = pfs.write_secs(505, 40.0 * GB);
        assert!(ts > 28.0 && ts < 48.0, "S3D full commit = {ts}s");
        // p-ckpt phase 1: the vulnerable node alone ≈ 21-22 s.
        let t1 = pfs.single_node_write_secs(284.5 * GB);
        assert!(t1 > 19.0 && t1 < 24.0, "CHIMERA phase-1 = {t1}s");
        // POP: 126 nodes × ~0.81 GB commits in around a second.
        let tp = pfs.write_secs(126, 0.81 * GB);
        assert!(tp < 2.0, "POP full commit = {tp}s");
    }

    #[test]
    fn interpolation_clamps_outside_grid() {
        let pfs = PfsModel::summit();
        // Below the smallest sampled size and node count: finite, positive.
        let bw = pfs.aggregate_write_bw(1, 1.0 * crate::MB);
        assert!(bw > 0.0 && bw.is_finite());
        // Above the largest node count: clamped to the top row.
        let top = pfs.aggregate_write_bw(8192, 256.0 * GB);
        let beyond = pfs.aggregate_write_bw(20_000, 256.0 * GB);
        assert!((top - beyond).abs() / top < 1e-9);
    }

    #[test]
    fn matrix_interpolates_between_samples() {
        let m = PerfMatrix::from_fn(&[1, 4], &[8.0, 32.0], |n, s| n as f64 * s);
        // Query at n=2 (midpoint in log2 between 1 and 4), s=16 (midpoint
        // in log2 between 8 and 32): bilinear in log space averages the
        // four corners: (8+32+32+128)/4 = 50.
        let v = m.aggregate_bw(2, 16.0);
        assert!((v - 50.0).abs() < 1e-9, "v = {v}");
    }

    #[test]
    fn matrix_axes_roundtrip() {
        let pfs = PfsModel::summit();
        let nodes = pfs.matrix().node_axis();
        assert_eq!(nodes.first(), Some(&1));
        assert_eq!(nodes.last(), Some(&8192));
        let sizes = pfs.matrix().size_axis();
        assert!((sizes[0] - (1u64 << 24) as f64).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn matrix_rejects_unsorted_axes() {
        let _ = PerfMatrix::from_fn(&[4, 1], &[8.0], |_, _| 1.0);
    }

    #[test]
    fn capacity_table_matches_direct_lookup() {
        let pfs = PfsModel::summit();
        let per_node = 32.0 * GB;
        let table = pfs.capacity_table(per_node, 4096);
        for w in [1usize, 2, 7, 64, 513, 4096] {
            assert_eq!(
                table.capacity(w),
                pfs.aggregate_write_bw(w as u64, per_node),
                "writer count {w}"
            );
        }
        // Above the table: clamped to the last sampled count.
        assert_eq!(table.capacity(10_000), table.capacity(4096));
        // Zero writers: defensively answered as one.
        assert_eq!(table.capacity(0), table.capacity(1));
        assert_eq!(table.len(), 4096);
        assert!(!table.is_empty());
    }

    #[test]
    fn read_equals_write_by_assumption() {
        let pfs = PfsModel::summit();
        assert_eq!(
            pfs.aggregate_read_bw(64, 8.0 * GB),
            pfs.aggregate_write_bw(64, 8.0 * GB)
        );
        assert_eq!(pfs.read_secs(64, 0.0), 0.0);
    }
}

//! Single-compute-node I/O performance (Fig. 2b).
//!
//! The paper's first I/O experiment measures aggregate POSIX-write +
//! `fsync` bandwidth from one Summit node into GPFS, varying the number of
//! MPI tasks (1–42, spread over both sockets) and the aggregate transfer
//! size. Two findings drive the model here:
//!
//! * bandwidth peaks at **8 tasks** (fewer tasks cannot fill the node's
//!   I/O path; more add contention), which is why the C/R model performs
//!   checkpoint I/O with 8 writer tasks per node;
//! * bandwidth **saturates with transfer size** — small fsync'd transfers
//!   are dominated by per-operation overhead.
//!
//! The parametric form below reproduces the stated peak (≈13–13.5 GB/s for
//! large transfers at 8 tasks) and the qualitative shape of the published
//! curves.

use crate::GB;

/// Parametric single-node I/O bandwidth model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeIoModel {
    /// Peak bandwidth at the optimal task count and asymptotic transfer
    /// size (bytes/sec).
    peak_bw: f64,
    /// Task count at which bandwidth peaks.
    optimal_tasks: u32,
    /// Transfer size at which half the peak is reached (bytes) — the
    /// knee of the saturation curve.
    half_saturation: f64,
    /// Fractional bandwidth lost per task beyond the optimum.
    oversubscription_penalty: f64,
}

impl NodeIoModel {
    /// Summit's GPFS client path: 13.5 GB/s peak at 8 tasks; transfers
    /// below ~½ GB lose significant efficiency to per-op overhead.
    pub fn summit() -> Self {
        Self {
            peak_bw: 13.5 * GB,
            optimal_tasks: 8,
            half_saturation: 0.5 * GB,
            oversubscription_penalty: 0.006,
        }
    }

    /// Creates a custom model.
    pub fn new(
        peak_bw: f64,
        optimal_tasks: u32,
        half_saturation: f64,
        oversubscription_penalty: f64,
    ) -> Self {
        assert!(peak_bw > 0.0 && optimal_tasks > 0 && half_saturation > 0.0);
        assert!((0.0..1.0).contains(&oversubscription_penalty));
        Self {
            peak_bw,
            optimal_tasks,
            half_saturation,
            oversubscription_penalty,
        }
    }

    /// The task count that maximizes bandwidth (8 on Summit).
    pub fn optimal_tasks(&self) -> u32 {
        self.optimal_tasks
    }

    /// Peak asymptotic bandwidth (bytes/sec).
    pub fn peak_bw(&self) -> f64 {
        self.peak_bw
    }

    /// Efficiency factor in `(0, 1]` for running `tasks` writer processes.
    ///
    /// Sub-linear ramp below the optimum (parallel streams overlap
    /// latencies but not perfectly), mild decline beyond it (lock and
    /// device contention), floored at 0.5 — even 42 oversubscribed tasks
    /// still move data.
    pub fn task_efficiency(&self, tasks: u32) -> f64 {
        assert!(tasks > 0, "at least one writer task required");
        let opt = self.optimal_tasks as f64;
        let t = tasks as f64;
        if t <= opt {
            (t / opt).powf(0.85)
        } else {
            (1.0 - self.oversubscription_penalty * (t - opt)).max(0.5)
        }
    }

    /// Efficiency factor in `(0, 1)` for an aggregate transfer of `bytes`.
    ///
    /// Michaelis–Menten saturation: `s / (s + s_half)`.
    pub fn size_efficiency(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0, "negative transfer size");
        bytes / (bytes + self.half_saturation)
    }

    /// Aggregate bandwidth (bytes/sec) for `tasks` writers moving an
    /// aggregate of `bytes` from this node.
    pub fn bandwidth(&self, tasks: u32, bytes: f64) -> f64 {
        self.peak_bw * self.task_efficiency(tasks) * self.size_efficiency(bytes)
    }

    /// Bandwidth at the optimal task count — what the C/R models use, per
    /// the paper: "8 MPI tasks are used to store checkpoints".
    pub fn optimal_bandwidth(&self, bytes: f64) -> f64 {
        self.bandwidth(self.optimal_tasks, bytes)
    }

    /// Seconds to write `bytes` from this node at the optimal task count.
    pub fn write_secs(&self, bytes: f64) -> f64 {
        if bytes == 0.0 {
            return 0.0;
        }
        bytes / self.optimal_bandwidth(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_at_eight_tasks() {
        let m = NodeIoModel::summit();
        let size = 64.0 * GB;
        let at8 = m.bandwidth(8, size);
        for t in [1u32, 2, 4, 6, 7, 9, 12, 16, 24, 42] {
            assert!(
                m.bandwidth(t, size) < at8,
                "bandwidth at {t} tasks must be below the 8-task peak"
            );
        }
    }

    #[test]
    fn large_transfers_approach_stated_peak() {
        let m = NodeIoModel::summit();
        let bw = m.optimal_bandwidth(512.0 * GB);
        // Paper: 13–13.5 GB/s for single-node PFS writes.
        assert!(
            bw > 13.0 * GB && bw <= 13.5 * GB,
            "asymptotic bw {} GB/s out of the paper's range",
            bw / GB
        );
    }

    #[test]
    fn small_transfers_are_penalized() {
        let m = NodeIoModel::summit();
        assert!(m.optimal_bandwidth(1.0 * crate::MB) < 0.05 * m.peak_bw());
        assert!(m.size_efficiency(0.0) == 0.0);
    }

    #[test]
    fn bandwidth_monotone_in_size() {
        let m = NodeIoModel::summit();
        let mut prev = 0.0;
        for exp in 20..40 {
            let s = (1u64 << exp) as f64;
            let bw = m.optimal_bandwidth(s);
            assert!(bw > prev, "bandwidth must increase with transfer size");
            prev = bw;
        }
    }

    #[test]
    fn oversubscription_floors_at_half() {
        let m = NodeIoModel::new(10.0 * GB, 8, GB, 0.1);
        // 8 + 50 tasks → raw penalty would be 5.0; floor at 0.5 applies.
        assert_eq!(m.task_efficiency(58), 0.5);
    }

    #[test]
    fn write_secs_consistent_with_bandwidth() {
        let m = NodeIoModel::summit();
        let bytes = 284.0 * GB; // CHIMERA per-node checkpoint
        let t = m.write_secs(bytes);
        assert!((t - bytes / m.optimal_bandwidth(bytes)).abs() < 1e-9);
        // ~21.5 s: the p-ckpt phase-1 latency scale for CHIMERA.
        assert!(t > 20.0 && t < 23.0, "t = {t}");
        assert_eq!(m.write_secs(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one writer")]
    fn zero_tasks_rejected() {
        NodeIoModel::summit().task_efficiency(0);
    }
}

//! Interconnect model.
//!
//! Live migration moves a process image between two nodes over the fat-tree
//! fabric; the paper sizes this with Summit's per-node injection bandwidth
//! of 12.5 GB/s (Sec. VII, Observation 8, where it is compared against the
//! 13–13.5 GB/s single-node PFS write path). Collective coordination costs
//! (the p-ckpt notification broadcast and commit barrier) are log-depth and
//! tiny — "a global barrier with 2048 nodes takes only ≈8 µs" — but we
//! model them anyway so the protocol's synchronization cost is explicit
//! rather than assumed away.

use crate::GB;

/// Interconnect performance model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Network {
    injection_bw: f64,
    /// Per-hop latency of a software tree collective (seconds per log2
    /// level). Calibrated so barrier(2048) ≈ 8 µs.
    collective_hop_latency: f64,
}

impl Network {
    /// Creates a network model with an injection bandwidth (bytes/sec) and
    /// per-tree-level collective latency (seconds).
    pub fn new(injection_bw: f64, collective_hop_latency: f64) -> Self {
        assert!(
            injection_bw > 0.0 && collective_hop_latency >= 0.0,
            "invalid network parameters"
        );
        Self {
            injection_bw,
            collective_hop_latency,
        }
    }

    /// Summit: 12.5 GB/s injection; barrier(2048 nodes) ≈ 8 µs
    /// ⇒ ≈0.727 µs per tree level (log2(2048) = 11 levels).
    pub fn summit() -> Self {
        Self::new(12.5 * GB, 8.0e-6 / 11.0)
    }

    /// Per-node injection bandwidth, bytes/sec.
    pub fn injection_bw(&self) -> f64 {
        self.injection_bw
    }

    /// Seconds to stream `bytes` point-to-point (live-migration transfer).
    pub fn transfer_secs(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0, "negative transfer size");
        bytes / self.injection_bw
    }

    /// Seconds for a barrier/broadcast across `nodes` participants
    /// (log-depth tree).
    pub fn collective_secs(&self, nodes: usize) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let levels = (nodes as f64).log2().ceil();
        levels * self.collective_hop_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_barrier_matches_paper() {
        let net = Network::summit();
        let t = net.collective_secs(2048);
        assert!((t - 8.0e-6).abs() < 1e-9, "barrier(2048) = {t}");
    }

    #[test]
    fn collective_degenerate_cases() {
        let net = Network::summit();
        assert_eq!(net.collective_secs(1), 0.0);
        assert_eq!(net.collective_secs(0), 0.0);
        assert!(net.collective_secs(4096) > net.collective_secs(2048));
    }

    #[test]
    fn transfer_time_is_linear() {
        let net = Network::summit();
        // An 852 GB live-migration image (3× CHIMERA's per-node ckpt)
        // takes ≈68 s at 12.5 GB/s.
        let t = net.transfer_secs(852.0 * GB);
        assert!((t - 68.16).abs() < 0.01, "t = {t}");
        assert_eq!(net.transfer_secs(0.0), 0.0);
    }
}

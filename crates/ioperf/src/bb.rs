//! Node-local burst buffer model.
//!
//! On Summit every compute node carries a 1.6 TB NVMe device with ≈2.1 GB/s
//! write and ≈5.5 GB/s read bandwidth (Sec. II of the paper). Periodic
//! checkpoints are staged here synchronously and drained to the PFS
//! asynchronously; recovery from an unmitigated failure reads from here on
//! every surviving node.

use crate::{GB, TB};

/// A node-local burst buffer device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstBuffer {
    capacity: f64,
    write_bw: f64,
    read_bw: f64,
}

impl BurstBuffer {
    /// Creates a burst buffer with explicit capacity (bytes) and
    /// bandwidths (bytes/sec).
    pub fn new(capacity: f64, write_bw: f64, read_bw: f64) -> Self {
        assert!(
            capacity > 0.0 && write_bw > 0.0 && read_bw > 0.0,
            "burst buffer parameters must be positive"
        );
        Self {
            capacity,
            write_bw,
            read_bw,
        }
    }

    /// Summit's per-node NVMe: 1.6 TB, 2.1 GB/s write, 5.5 GB/s read.
    pub fn summit() -> Self {
        Self::new(1.6 * TB, 2.1 * GB, 5.5 * GB)
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Sequential write bandwidth in bytes/sec.
    pub fn write_bw(&self) -> f64 {
        self.write_bw
    }

    /// Sequential read bandwidth in bytes/sec.
    pub fn read_bw(&self) -> f64 {
        self.read_bw
    }

    /// True if a checkpoint of `bytes` fits on the device.
    ///
    /// The paper assumes "the checkpoint size per node never exceeds the
    /// DRAM or BB size"; the workload layer validates this via `fits`.
    pub fn fits(&self, bytes: f64) -> bool {
        bytes <= self.capacity
    }

    /// Seconds to write `bytes` to the device.
    pub fn write_secs(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0, "negative write size");
        bytes / self.write_bw
    }

    /// Seconds to read `bytes` back from the device.
    pub fn read_secs(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0, "negative read size");
        bytes / self.read_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_parameters() {
        let bb = BurstBuffer::summit();
        assert_eq!(bb.capacity(), 1.6e12);
        assert_eq!(bb.write_bw(), 2.1e9);
        assert_eq!(bb.read_bw(), 5.5e9);
    }

    #[test]
    fn write_and_read_times() {
        let bb = BurstBuffer::summit();
        // CHIMERA stores ~284 GB/node: write ≈ 135 s, read ≈ 51.7 s.
        let bytes = 284.0 * GB;
        assert!((bb.write_secs(bytes) - 135.238).abs() < 0.01);
        assert!((bb.read_secs(bytes) - 51.636).abs() < 0.01);
        assert_eq!(bb.write_secs(0.0), 0.0);
    }

    #[test]
    fn capacity_check() {
        let bb = BurstBuffer::summit();
        assert!(bb.fits(512.0 * GB)); // DRAM-sized checkpoint fits
        assert!(!bb.fits(2.0 * TB));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_bandwidth() {
        let _ = BurstBuffer::new(1.0, 0.0, 1.0);
    }
}

//! Property-based tests of the I/O performance model: physical sanity
//! (monotonicity, bounds) must hold at every point of the parameter
//! space, not just the sampled grid.

use proptest::prelude::*;

use pckpt_ioperf::{BurstBuffer, Network, NodeIoModel, PfsModel, GB};

proptest! {
    /// Aggregate bandwidth is monotone in node count, bounded by the
    /// ceiling, and at least the single-node value.
    #[test]
    fn pfs_monotone_in_nodes(
        nodes_a in 1u64..8192,
        nodes_b in 1u64..8192,
        size_gb in 0.05f64..900.0,
    ) {
        let pfs = PfsModel::summit();
        let (lo, hi) = (nodes_a.min(nodes_b), nodes_a.max(nodes_b));
        let size = size_gb * GB;
        let bw_lo = pfs.aggregate_write_bw(lo, size);
        let bw_hi = pfs.aggregate_write_bw(hi, size);
        prop_assert!(bw_hi >= bw_lo * (1.0 - 1e-9), "bw must not shrink with nodes");
        prop_assert!(bw_hi <= pfs.ceiling() * 1.001);
        prop_assert!(bw_lo > 0.0);
    }

    /// Aggregate bandwidth is monotone in transfer size.
    #[test]
    fn pfs_monotone_in_size(
        nodes in 1u64..8192,
        size_a in 0.05f64..900.0,
        size_b in 0.05f64..900.0,
    ) {
        let pfs = PfsModel::summit();
        let (lo, hi) = (size_a.min(size_b) * GB, size_a.max(size_b) * GB);
        prop_assert!(
            pfs.aggregate_write_bw(nodes, hi) >= pfs.aggregate_write_bw(nodes, lo) * (1.0 - 1e-9)
        );
    }

    /// Per-node share never exceeds the single-node bandwidth (adding
    /// writers cannot make any one writer faster).
    #[test]
    fn pfs_share_bounded_by_single_node(nodes in 2u64..8192, size_gb in 0.05f64..900.0) {
        let pfs = PfsModel::summit();
        let size = size_gb * GB;
        let share = pfs.aggregate_write_bw(nodes, size) / nodes as f64;
        let single = pfs.single_node_write_bw(size);
        prop_assert!(share <= single * 1.01, "share {share} vs single {single}");
    }

    /// Write time scales: more data from the same nodes never takes less
    /// time; collective commits always dominate a single node's.
    #[test]
    fn pfs_write_time_sanity(nodes in 2u64..4608, size_gb in 0.05f64..500.0) {
        let pfs = PfsModel::summit();
        let size = size_gb * GB;
        let t_all = pfs.write_secs(nodes, size);
        let t_single = pfs.single_node_write_secs(size);
        prop_assert!(t_all > t_single * (1.0 - 1e-9),
            "all-nodes commit ({t_all}s) must not beat one node alone ({t_single}s)");
        let t_double = pfs.write_secs(nodes, size * 2.0);
        prop_assert!(t_double >= t_all * (1.0 - 1e-9));
    }

    /// Node curve: efficiency factors stay in (0, 1]; bandwidth respects
    /// the composition.
    #[test]
    fn node_model_factors_bounded(tasks in 1u32..64, size_gb in 0.001f64..900.0) {
        let m = NodeIoModel::summit();
        let te = m.task_efficiency(tasks);
        let se = m.size_efficiency(size_gb * GB);
        prop_assert!(te > 0.0 && te <= 1.0);
        prop_assert!(se > 0.0 && se < 1.0);
        let bw = m.bandwidth(tasks, size_gb * GB);
        prop_assert!((bw - m.peak_bw() * te * se).abs() < 1e-6 * bw.max(1.0));
    }

    /// Burst-buffer round trip: write slower than read; times linear.
    #[test]
    fn bb_times_linear(size_gb in 0.001f64..1500.0) {
        let bb = BurstBuffer::summit();
        let bytes = size_gb * GB;
        prop_assert!(bb.write_secs(bytes) > bb.read_secs(bytes));
        prop_assert!((bb.write_secs(2.0 * bytes) - 2.0 * bb.write_secs(bytes)).abs() < 1e-6);
        prop_assert_eq!(bb.fits(bytes), bytes <= bb.capacity());
    }

    /// Collectives: log-depth growth, monotone in participants.
    #[test]
    fn network_collectives_monotone(a in 1usize..100_000, b in 1usize..100_000) {
        let net = Network::summit();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(net.collective_secs(hi) >= net.collective_secs(lo));
        // Log-depth: doubling participants adds exactly one level.
        if lo > 1 {
            let one_level = net.collective_secs(2) - net.collective_secs(1);
            let step = net.collective_secs(lo * 2) - net.collective_secs(lo);
            prop_assert!(step <= one_level + 1e-12);
        }
    }
}

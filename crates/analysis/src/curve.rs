//! Composable crossover curves: σ ↦ α-threshold and α ↦ break-even-σ
//! surfaces as first-class objects.
//!
//! The experiment binaries used to walk the threshold formulas with
//! ad-hoc `for` loops, one table at a time. This module represents each
//! surface as a typed [`Curve`] value — evaluation plus an explicit
//! half-open domain `[lo, hi)` — and builds everything else from
//! combinators:
//!
//! * [`CurveExt::sample`] / [`CurveExt::refined`] — uniform and
//!   error-adaptive tabulation into a [`SampledCurve`];
//! * [`CurveExt::inverted`] — monotone inversion by bisection (the
//!   α ↦ break-even-σ surface is [`AlphaThresholdExactCurve`] inverted);
//! * [`CurveExt::minus`] / [`CurveExt::intersect`] — curve arithmetic and
//!   bracketed root-finding on the difference.
//!
//! Each combinator returns a concrete wrapper type ([`Inverted`],
//! [`Difference`], [`SampledCurve`]) that itself implements [`Curve`], so
//! compositions type-check at compile time instead of being rebuilt as
//! per-table index loops. All root-finding runs a fixed iteration count
//! of plain bisection — deterministic, no wall-clock, no tolerance knobs
//! that could differ between hosts.
//!
//! [`crossover_verdict`] sits on top: the margin-aware P1-vs-M2 decision
//! the analytic pre-filter (`pckpt_core::prefilter`) uses to answer
//! simulation grid cells without simulating them.

use crate::analytic::{
    alpha_threshold_checked, alpha_threshold_exact_checked, alpha_threshold_exact_kernel,
    alpha_threshold_kernel, SIGMA_MAX,
};

/// Bisection iterations for inversion and intersection. 80 halvings of
/// any domain in this module reach f64 resolution with margin; a fixed
/// count keeps results bit-stable across hosts.
const BISECT_ITERS: usize = 80;

/// A scalar curve over a half-open domain `[lo, hi)`.
pub trait Curve {
    /// The half-open domain `[lo, hi)` on which the curve is defined.
    fn domain(&self) -> (f64, f64);

    /// Evaluates the curve at `x`, assuming `x` is inside the domain.
    fn eval_unchecked(&self, x: f64) -> f64;

    /// Evaluates the curve at `x`, `None` outside the domain.
    fn eval(&self, x: f64) -> Option<f64> {
        let (lo, hi) = self.domain();
        (lo..hi).contains(&x).then(|| self.eval_unchecked(x))
    }
}

/// Combinators available on every [`Curve`].
pub trait CurveExt: Curve + Sized {
    /// Tabulates `n` uniform samples over `[lo, hi)` (endpoint exclusive,
    /// matching the half-open domain).
    fn sample(&self, n: usize) -> SampledCurve {
        assert!(n >= 2, "need at least two samples");
        let (lo, hi) = self.domain();
        let step = (hi - lo) / n as f64;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let x = lo + i as f64 * step;
            xs.push(x);
            ys.push(self.eval_unchecked(x));
        }
        SampledCurve { xs, ys }
    }

    /// Error-adaptive tabulation: starts from `n0` uniform samples and
    /// bisects every interval whose midpoint deviates from the secant by
    /// more than `tol`, up to `max_depth` rounds. Captures curvature
    /// (e.g. the exact threshold's blow-up toward σ → 0.618) with far
    /// fewer points than uniform oversampling.
    fn refined(&self, n0: usize, tol: f64, max_depth: usize) -> SampledCurve {
        assert!(tol > 0.0);
        let mut cur = self.sample(n0);
        for _ in 0..max_depth {
            let mut xs = Vec::with_capacity(cur.xs.len() * 2);
            let mut ys = Vec::with_capacity(cur.ys.len() * 2);
            let mut split_any = false;
            for i in 0..cur.xs.len() {
                xs.push(cur.xs[i]);
                ys.push(cur.ys[i]);
                if i + 1 == cur.xs.len() {
                    break;
                }
                let mid = 0.5 * (cur.xs[i] + cur.xs[i + 1]);
                let y_mid = self.eval_unchecked(mid);
                let secant = 0.5 * (cur.ys[i] + cur.ys[i + 1]);
                if (y_mid - secant).abs() > tol {
                    xs.push(mid);
                    ys.push(y_mid);
                    split_any = true;
                }
            }
            cur = SampledCurve { xs, ys };
            if !split_any {
                break;
            }
        }
        cur
    }

    /// Inverts a strictly monotone increasing curve: the result maps
    /// `y ↦ x` with `self(x) = y`, over `[self(lo), self(hi⁻))`.
    fn inverted(self) -> Inverted<Self> {
        Inverted::new(self)
    }

    /// The pointwise difference `self − other` over the domain overlap.
    fn minus<B: Curve>(self, other: B) -> Difference<Self, B> {
        let (a_lo, a_hi) = self.domain();
        let (b_lo, b_hi) = other.domain();
        let lo = a_lo.max(b_lo);
        let hi = a_hi.min(b_hi);
        assert!(lo < hi, "curve domains do not overlap");
        Difference { a: self, b: other, lo, hi }
    }

    /// The abscissa where `self` and `other` cross, found by bracketed
    /// bisection on their difference over the domain overlap: the overlap
    /// is scanned in 64 panels for a sign change, then the bracket is
    /// bisected [`BISECT_ITERS`] times. `None` when no panel brackets a
    /// root (curves do not cross, or cross an even number of times within
    /// every panel).
    fn intersect<B: Curve>(&self, other: &B) -> Option<f64> {
        let (a_lo, a_hi) = self.domain();
        let (b_lo, b_hi) = other.domain();
        let lo = a_lo.max(b_lo);
        let hi = a_hi.min(b_hi);
        if lo >= hi {
            return None;
        }
        let f = |x: f64| self.eval_unchecked(x) - other.eval_unchecked(x);
        // Shrink the scan infinitesimally inside the half-open end.
        let span = hi - lo;
        let inner_hi = hi - span * 1e-12;
        const PANELS: usize = 64;
        let step = (inner_hi - lo) / PANELS as f64;
        let mut x0 = lo;
        let mut f0 = f(x0);
        for i in 1..=PANELS {
            let x1 = lo + i as f64 * step;
            let f1 = f(x1);
            if (f0 > 0.0) != (f1 > 0.0) {
                return Some(bisect(&f, x0, x1, f0));
            }
            x0 = x1;
            f0 = f1;
        }
        None
    }
}

impl<C: Curve> CurveExt for C {}

/// Fixed-count bisection of `f`'s root inside `[x0, x1]`, given
/// `f0 = f(x0)` with a sign change across the bracket.
fn bisect(f: &impl Fn(f64) -> f64, mut x0: f64, mut x1: f64, mut f0: f64) -> f64 {
    for _ in 0..BISECT_ITERS {
        let mid = 0.5 * (x0 + x1);
        let fm = f(mid);
        // Same-side test without float equality: an exact zero lands on
        // whichever half keeps it inside the bracket.
        if (fm > 0.0) == (f0 > 0.0) {
            x0 = mid;
            f0 = fm;
        } else {
            x1 = mid;
        }
    }
    0.5 * (x0 + x1)
}

/// A tabulated curve: piecewise-linear interpolation between samples.
#[derive(Debug, Clone)]
pub struct SampledCurve {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl SampledCurve {
    /// The sample abscissae, ascending.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The sample ordinates, index-aligned with [`xs`](Self::xs).
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Sample points as `(x, y)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.xs.iter().copied().zip(self.ys.iter().copied())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

impl Curve for SampledCurve {
    fn domain(&self) -> (f64, f64) {
        // Half-open like every curve: the last sample is the supremum.
        // Tables are built with n ≥ 2 samples. simlint: allow(no-unwrap-in-lib)
        (*self.xs.first().expect("non-empty table"), *self.xs.last().expect("non-empty table"))
    }

    fn eval_unchecked(&self, x: f64) -> f64 {
        // Interval lookup by total order; xs is ascending by construction.
        let idx = self.xs.partition_point(|&p| p <= x);
        if idx == 0 {
            return self.ys[0];
        }
        if idx >= self.xs.len() {
            return self.ys[self.xs.len() - 1];
        }
        let (x0, x1) = (self.xs[idx - 1], self.xs[idx]);
        let (y0, y1) = (self.ys[idx - 1], self.ys[idx]);
        let t = (x - x0) / (x1 - x0);
        y0 + t * (y1 - y0)
    }
}

/// σ ↦ α* under the **printed** Eq. (8), over `σ ∈ [0, SIGMA_MAX)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlphaThresholdCurve;

impl Curve for AlphaThresholdCurve {
    fn domain(&self) -> (f64, f64) {
        (0.0, SIGMA_MAX)
    }

    fn eval_unchecked(&self, sigma: f64) -> f64 {
        alpha_threshold_checked(sigma).unwrap_or(f64::NAN)
    }
}

/// σ ↦ α* under the **exact** Eqs. (4)–(6) algebra, over the paper's
/// `σ ∈ [0, SIGMA_MAX)` band (the algebraic bound is σ < 0.618…; we stop
/// at the paper's stated constraint so both threshold curves share a
/// domain and every sampled point is meaningful for the printed form
/// too).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlphaThresholdExactCurve;

impl Curve for AlphaThresholdExactCurve {
    fn domain(&self) -> (f64, f64) {
        (0.0, SIGMA_MAX)
    }

    fn eval_unchecked(&self, sigma: f64) -> f64 {
        alpha_threshold_exact_checked(sigma).unwrap_or(f64::NAN)
    }
}

/// A constant curve over `(-∞-ish, +∞-ish)` — the "given α" horizontal
/// line to intersect threshold curves with.
#[derive(Debug, Clone, Copy)]
pub struct ConstCurve(pub f64);

impl Curve for ConstCurve {
    fn domain(&self) -> (f64, f64) {
        (f64::MIN, f64::MAX)
    }

    fn eval_unchecked(&self, _x: f64) -> f64 {
        self.0
    }
}

/// A strictly monotone increasing curve, inverted: maps `y ↦ x` with
/// `inner(x) = y`, by fixed-count bisection over the inner domain.
#[derive(Debug, Clone, Copy)]
pub struct Inverted<C: Curve> {
    inner: C,
    /// Inner domain `[x_lo, x_hi)`.
    x_lo: f64,
    x_hi: f64,
    /// Output domain `[inner(x_lo), inner(x_hi⁻))`.
    y_lo: f64,
    y_hi: f64,
}

impl<C: Curve> Inverted<C> {
    fn new(inner: C) -> Self {
        let (x_lo, x_hi) = inner.domain();
        let span = x_hi - x_lo;
        let y_lo = inner.eval_unchecked(x_lo);
        let y_hi = inner.eval_unchecked(x_hi - span * 1e-12);
        assert!(
            y_lo < y_hi,
            "inversion requires a strictly increasing curve"
        );
        Self { inner, x_lo, x_hi, y_lo, y_hi }
    }
}

impl<C: Curve> Curve for Inverted<C> {
    fn domain(&self) -> (f64, f64) {
        (self.y_lo, self.y_hi)
    }

    fn eval_unchecked(&self, y: f64) -> f64 {
        let f = |x: f64| self.inner.eval_unchecked(x) - y;
        bisect(&f, self.x_lo, self.x_hi, self.y_lo - y)
    }
}

/// The pointwise difference of two curves over their domain overlap.
#[derive(Debug, Clone, Copy)]
pub struct Difference<A: Curve, B: Curve> {
    a: A,
    b: B,
    lo: f64,
    hi: f64,
}

impl<A: Curve, B: Curve> Curve for Difference<A, B> {
    fn domain(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    fn eval_unchecked(&self, x: f64) -> f64 {
        self.a.eval_unchecked(x) - self.b.eval_unchecked(x)
    }
}

/// α ↦ break-even σ: the σ at which a workload with LM transfer factor α
/// sits exactly on the exact crossover threshold. Built by inverting
/// [`AlphaThresholdExactCurve`] (strictly increasing over the band).
pub fn break_even_sigma() -> Inverted<AlphaThresholdExactCurve> {
    AlphaThresholdExactCurve.inverted()
}

/// σ-guard around [`SIGMA_MAX`]: no analytic verdict is issued within
/// this distance of the validity boundary, on either side. The guard
/// absorbs both the printed-vs-exact model disagreement near the bound
/// and σ-estimation sensitivity (σ is a survival-function value; near
/// the boundary a small lead-model perturbation flips the comparison).
pub const SIGMA_GUARD: f64 = 0.04;

/// A margin-aware analytic answer to the P1-vs-M2 crossover question.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Crossing {
    /// p-ckpt (P1) beats LM (M2) with the stated relative clearance from
    /// **every** crossover surface (printed and exact threshold).
    Pckpt {
        /// Relative distance of α above the farther threshold.
        clearance: f64,
    },
    /// LM (M2) beats p-ckpt (P1) with the stated clearance — either α
    /// clears both thresholds from below, or σ exceeds the validity
    /// bound by more than [`SIGMA_GUARD`] (beyond it LM's checkpoint
    /// savings exceed anything p-ckpt can recoup; the convention
    /// `exp_analytical` has always printed).
    Lm {
        /// Relative α clearance below the nearer threshold, or the σ
        /// excess beyond `SIGMA_MAX` for out-of-band cells.
        clearance: f64,
    },
    /// Inside the margin of some surface — the analytic model abstains;
    /// simulate this cell.
    Uncertain,
}

/// Answers "does p-ckpt (P1) beat LM (M2)?" analytically, with a safety
/// margin, under the Eq. (8) 50/50 overhead split.
///
/// The verdict is only `Pckpt`/`Lm` when α clears **both** threshold
/// surfaces — the printed Eq. (8) and the exact algebra — by the given
/// relative `margin` on the same side, and σ stays [`SIGMA_GUARD`] away
/// from the `SIGMA_MAX` validity boundary. Anything closer returns
/// [`Crossing::Uncertain`]: the caller must fall back to simulation.
pub fn crossover_verdict(alpha: f64, sigma: f64, margin: f64) -> Crossing {
    assert!(alpha >= 1.0, "alpha below 1 means LM moves less than a checkpoint");
    assert!(sigma >= 0.0, "sigma is a probability");
    assert!(margin >= 0.0);
    if sigma >= SIGMA_MAX {
        let excess = sigma - SIGMA_MAX;
        return if excess >= SIGMA_GUARD {
            Crossing::Lm { clearance: excess }
        } else {
            Crossing::Uncertain
        };
    }
    if sigma > SIGMA_MAX - SIGMA_GUARD {
        return Crossing::Uncertain;
    }
    // Both thresholds exist on this side of the guard band; use the
    // shared kernels so the verdict sees exactly the scalar/batch values.
    let root = (1.0 - sigma).sqrt();
    let printed = alpha_threshold_kernel(sigma, root);
    let exact = alpha_threshold_exact_kernel(sigma, root);
    let lo = printed.min(exact);
    let hi = printed.max(exact);
    if alpha >= hi * (1.0 + margin) {
        Crossing::Pckpt { clearance: alpha / hi - 1.0 }
    } else if alpha <= lo * (1.0 - margin) {
        Crossing::Lm { clearance: 1.0 - alpha / lo }
    } else {
        Crossing::Uncertain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{alpha_threshold, alpha_threshold_exact};

    #[test]
    fn sampled_threshold_curve_matches_direct_evaluation() {
        let table = AlphaThresholdCurve.sample(61);
        assert_eq!(table.len(), 61);
        for (s, a) in table.points() {
            assert_eq!(a.to_bits(), alpha_threshold(s).to_bits());
        }
        // Interpolation between samples stays between neighbors
        // (threshold is monotone increasing).
        let mid = table.eval(0.305).unwrap();
        assert!(alpha_threshold(0.30) <= mid && mid <= alpha_threshold(0.31));
    }

    #[test]
    fn refined_sampling_concentrates_points_where_curvature_lives() {
        let uniform = AlphaThresholdExactCurve.sample(8);
        let refined = AlphaThresholdExactCurve.refined(8, 0.01, 12);
        assert!(refined.len() > uniform.len());
        // The blow-up toward σ → SIGMA_MAX attracts the extra points:
        // sample spacing shrinks where the secant error is largest.
        let gap_at = |x_lo: f64, x_hi: f64| {
            refined
                .xs()
                .windows(2)
                .filter(|w| w[0] >= x_lo && w[1] <= x_hi)
                .map(|w| w[1] - w[0])
                .fold(f64::INFINITY, f64::min)
        };
        assert!(
            gap_at(0.45, 0.61) < gap_at(0.0, 0.15),
            "steep end must be sampled more densely"
        );
        // Refinement preserves exactness at its own sample points.
        for (s, a) in refined.points() {
            assert_eq!(a.to_bits(), alpha_threshold_exact(s).to_bits());
        }
    }

    #[test]
    fn inversion_round_trips_the_exact_threshold() {
        let inv = break_even_sigma();
        for &sigma in &[0.05, 0.2, 0.4, 0.55] {
            let alpha = alpha_threshold_exact(sigma);
            let back = inv.eval(alpha).unwrap();
            assert!(
                (back - sigma).abs() < 1e-12,
                "σ={sigma} → α={alpha} → σ={back}"
            );
        }
        // Domain: starts at α* (0) = 1.
        assert_eq!(inv.domain().0, 1.0);
        assert!(inv.eval(0.5).is_none(), "below every threshold");
    }

    #[test]
    fn intersection_finds_the_break_even_sigma_for_a_given_alpha() {
        // Where the exact threshold curve crosses the horizontal α = 2.5
        // line is exactly the break-even σ for α = 2.5.
        let sigma = AlphaThresholdExactCurve
            .intersect(&ConstCurve(2.5))
            .expect("α = 2.5 crosses inside the band");
        assert!((alpha_threshold_exact(sigma) - 2.5).abs() < 1e-9);
        let inv = break_even_sigma().eval(2.5).unwrap();
        assert!((sigma - inv).abs() < 1e-9);
        // The printed Eq. (8) tops out below 1.30, so α = 2.5 never
        // crosses it.
        assert_eq!(AlphaThresholdCurve.intersect(&ConstCurve(2.5)), None);
    }

    #[test]
    fn difference_of_the_two_threshold_forms_is_zero_only_at_origin() {
        let diff = AlphaThresholdExactCurve.minus(AlphaThresholdCurve);
        assert_eq!(diff.eval(0.0).unwrap(), 0.0, "both forms give α* = 1 at σ = 0");
        for &s in &[0.1, 0.3, 0.5, 0.6] {
            assert!(diff.eval(s).unwrap() > 0.0, "exact > printed for σ > 0");
        }
    }

    #[test]
    fn verdict_decides_clear_cells_and_abstains_near_boundaries() {
        // CHIMERA-shaped: σ ≈ 0.5, α = 3 → thresholds 1.243 / 2.414; α
        // clears the exact one by 24% > 15% margin.
        assert!(matches!(
            crossover_verdict(3.0, 0.5, 0.15),
            Crossing::Pckpt { clearance } if clearance > 0.2
        ));
        // Same point, margin 0.30: inside the band → abstain.
        assert_eq!(crossover_verdict(3.0, 0.5, 0.30), Crossing::Uncertain);
        // α barely above 1 is far below both thresholds → LM.
        assert!(matches!(
            crossover_verdict(1.0, 0.5, 0.15),
            Crossing::Lm { .. }
        ));
        // σ capped at 0.85 (small apps): far beyond SIGMA_MAX → LM.
        assert!(matches!(
            crossover_verdict(3.0, 0.85, 0.15),
            Crossing::Lm { clearance } if (clearance - 0.24).abs() < 1e-12
        ));
        // Just beyond the validity bound: inside the σ guard → abstain.
        assert_eq!(crossover_verdict(3.0, 0.62, 0.15), Crossing::Uncertain);
        // Just below the bound: also inside the guard → abstain.
        assert_eq!(crossover_verdict(3.0, 0.60, 0.15), Crossing::Uncertain);
        // Between the thresholds (α = 1.8 at σ = 0.5 sits between 1.243
        // and 2.414): no verdict at any margin.
        assert_eq!(crossover_verdict(1.8, 0.5, 0.0), Crossing::Uncertain);
    }
}

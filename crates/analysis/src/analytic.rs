//! The analytical LM-vs-p-ckpt model (Observation 8, Eqs. 4–8).
//!
//! Definitions, following the paper:
//!
//! * σ — fraction of failures LM can avoid (predicted, lead > θ);
//! * β — fraction of failures p-ckpt can mitigate;
//! * α — ratio of LM's transfer volume to the checkpoint size.
//!
//! LM reduces *checkpoint* overhead (Eq. 2 stretches the interval by
//! `1/√(1−σ)`, so the overhead falls by `1 − √(1−σ)`, Eq. 5); p-ckpt
//! reduces *recomputation* overhead more (it handles shorter leads, so
//! β > σ). p-ckpt wins overall when its extra recomputation savings exceed
//! LM's checkpoint savings (Eq. 4):
//!
//! ```text
//! ckpt_B · (1 − √(1−σ))  <  recomp_B · (β − σ)          (4)+(5)
//! β = (α − 1 + σ) / α                                    (6)
//! ```
//!
//! *Transcription note:* the paper prints Eq. (6) with denominator 2; we
//! implement the `/α` form. The derivation and justification live in
//! DESIGN.md §14.1 (the single canonical reference for this discrepancy).
//!
//! Assuming the base overhead splits half/half between recomputation and
//! checkpointing, Eq. (4) simplifies to the threshold of Eq. (8):
//!
//! ```text
//! α > (σ + 1) / (σ + √(1−σ))                             (8)
//! ```

/// Upper bound on σ for the analytical model's validity: the combined LM
/// reduction cannot exceed the base recomputation overhead (Sec. VII).
pub const SIGMA_MAX: f64 = 0.61;

// --- shared kernels ---------------------------------------------------
//
// Every public entry point below — panicking, checked, and the SoA batch
// evaluator in `crate::batch` — funnels through these `#[inline(always)]`
// kernels. One float-operation sequence per equation means the batch
// columns are bit-identical (`to_bits`) to the scalar functions; the
// equivalence proptest in `tests/batch_equivalence.rs` pins it.

/// Eq. (6) kernel: `β = clamp((α − 1 + σ) / α, 0, 1)`.
#[inline(always)]
pub(crate) fn beta_kernel(alpha: f64, sigma: f64) -> f64 {
    ((alpha - 1.0 + sigma) / alpha).clamp(0.0, 1.0)
}

/// Eq. (5) kernel: `1 − √(1−σ)`, with the shared `√(1−σ)` passed in so
/// fused batch loops compute the root once per cell.
#[inline(always)]
pub(crate) fn lm_reduction_kernel(root: f64) -> f64 {
    1.0 - root
}

/// Eq. (8) kernel as printed: `(σ + 1) / (σ + √(1−σ))`.
#[inline(always)]
pub(crate) fn alpha_threshold_kernel(sigma: f64, root: f64) -> f64 {
    (sigma + 1.0) / (sigma + root)
}

/// Exact-threshold kernel: `(1 − σ) / (√(1−σ) − σ)`.
#[inline(always)]
pub(crate) fn alpha_threshold_exact_kernel(sigma: f64, root: f64) -> f64 {
    (1.0 - sigma) / (root - sigma)
}

/// Eq. (4)/(7) kernel: LM's checkpoint savings vs p-ckpt's extra
/// recomputation savings.
#[inline(always)]
pub(crate) fn pckpt_wins_kernel(alpha: f64, sigma: f64, root: f64, ratio: f64) -> bool {
    lm_reduction_kernel(root) < ratio * (beta_kernel(alpha, sigma) - sigma)
}

// Validity predicates — the exact complements of the panicking asserts
// below, shared by the checked scalar variants and the batch mask.

/// Is `(α, σ)` inside Eq. (6)'s domain?
#[inline(always)]
pub(crate) fn beta_valid(alpha: f64, sigma: f64) -> bool {
    alpha >= 1.0 && (0.0..1.0).contains(&sigma)
}

/// Is `σ` inside Eq. (5)'s domain?
#[inline(always)]
pub(crate) fn lm_reduction_valid(sigma: f64) -> bool {
    (0.0..1.0).contains(&sigma)
}

/// Is `σ` inside the printed Eq. (8)'s stated validity band?
#[inline(always)]
pub(crate) fn alpha_threshold_valid(sigma: f64) -> bool {
    (0.0..SIGMA_MAX).contains(&sigma)
}

/// Is `σ` inside the exact threshold's algebraic domain (`√(1−σ) > σ`)?
#[inline(always)]
pub(crate) fn alpha_threshold_exact_valid(sigma: f64, root: f64) -> bool {
    root > sigma
}

// --- scalar API -------------------------------------------------------

/// Eq. (6): the failure fraction p-ckpt can mitigate, given α and σ.
pub fn beta_pckpt(alpha: f64, sigma: f64) -> f64 {
    assert!(alpha >= 1.0, "alpha below 1 means LM moves less than a checkpoint");
    assert!((0.0..1.0).contains(&sigma));
    beta_kernel(alpha, sigma)
}

/// Non-panicking [`beta_pckpt`]: `None` outside Eq. (6)'s domain.
pub fn beta_pckpt_checked(alpha: f64, sigma: f64) -> Option<f64> {
    beta_valid(alpha, sigma).then(|| beta_kernel(alpha, sigma))
}

/// Eq. (5): LM's fractional reduction of checkpoint overhead,
/// `1 − √(1−σ)`.
pub fn lm_ckpt_reduction(sigma: f64) -> f64 {
    assert!((0.0..1.0).contains(&sigma));
    lm_reduction_kernel((1.0 - sigma).sqrt())
}

/// Non-panicking [`lm_ckpt_reduction`]: `None` for σ outside `[0, 1)`.
pub fn lm_ckpt_reduction_checked(sigma: f64) -> Option<f64> {
    lm_reduction_valid(sigma).then(|| lm_reduction_kernel((1.0 - sigma).sqrt()))
}

/// Eq. (4)/(7): does p-ckpt beat LM overall?
///
/// `recomp_to_ckpt_ratio` is `recomp_B / ckpt_B` of the base model
/// (Eq. 8 assumes 1).
pub fn pckpt_beats_lm(alpha: f64, sigma: f64, recomp_to_ckpt_ratio: f64) -> bool {
    assert!(recomp_to_ckpt_ratio > 0.0);
    assert!(alpha >= 1.0, "alpha below 1 means LM moves less than a checkpoint");
    assert!((0.0..1.0).contains(&sigma));
    pckpt_wins_kernel(alpha, sigma, (1.0 - sigma).sqrt(), recomp_to_ckpt_ratio)
}

/// Non-panicking [`pckpt_beats_lm`]: `None` when `(α, σ)` falls outside
/// the domain of Eq. (5) or (6) (the ratio stays a hard precondition —
/// it is a property of the workload, not of the grid point).
pub fn pckpt_beats_lm_checked(
    alpha: f64,
    sigma: f64,
    recomp_to_ckpt_ratio: f64,
) -> Option<bool> {
    assert!(recomp_to_ckpt_ratio > 0.0);
    (beta_valid(alpha, sigma) && lm_reduction_valid(sigma))
        .then(|| pckpt_wins_kernel(alpha, sigma, (1.0 - sigma).sqrt(), recomp_to_ckpt_ratio))
}

/// Eq. (8) **as printed in the paper**: `α > (σ+1)/(σ+√(1−σ))`, yielding
/// the stated band α ∈ \[1.04, 1.30) over 0 ≤ σ < 0.61. Only meaningful
/// for `sigma < SIGMA_MAX`.
///
/// ```
/// use pckpt_analysis::alpha_threshold;
/// // At the validity boundary the paper's band tops out near 1.30.
/// assert!((alpha_threshold(0.60) - 1.298).abs() < 0.01);
/// assert!((alpha_threshold(0.0) - 1.0).abs() < 1e-12);
/// ```
///
/// Note: this printed formula is *not* the exact solution of Eqs. (4)–(6)
/// under the 50/50 overhead split — see [`alpha_threshold_exact`] for the
/// derivable threshold. We reproduce both: the paper's closed form (its
/// reported 1.04–1.30 band follows from it) and the exact algebra (whose
/// validity bound `√(1−σ) > σ ⇔ σ < 0.618` is evidently where the paper's
/// σ < 0.61 constraint comes from). EXPERIMENTS.md records the
/// discrepancy.
pub fn alpha_threshold(sigma: f64) -> f64 {
    assert!(
        (0.0..SIGMA_MAX).contains(&sigma),
        "Eq. 8 is valid for 0 <= sigma < {SIGMA_MAX}"
    );
    alpha_threshold_kernel(sigma, (1.0 - sigma).sqrt())
}

/// Non-panicking [`alpha_threshold`]: `None` for σ outside
/// `[0, SIGMA_MAX)`.
pub fn alpha_threshold_checked(sigma: f64) -> Option<f64> {
    alpha_threshold_valid(sigma)
        .then(|| alpha_threshold_kernel(sigma, (1.0 - sigma).sqrt()))
}

/// The exact α threshold solving Eq. (4) with Eqs. (5)–(6) and a 50/50
/// overhead split:
///
/// ```text
/// 1 − √(1−σ) < (α−1+σ)/α − σ   ⇔   α > (1−σ) / (√(1−σ) − σ)
/// ```
///
/// Valid while `√(1−σ) > σ`, i.e. `σ < (√5−1)/2 ≈ 0.618`.
pub fn alpha_threshold_exact(sigma: f64) -> f64 {
    let root = (1.0 - sigma).sqrt();
    assert!(
        root > sigma,
        "exact threshold requires sigma < 0.618, got {sigma}"
    );
    alpha_threshold_exact_kernel(sigma, root)
}

/// Non-panicking [`alpha_threshold_exact`]: `None` when `√(1−σ) ≤ σ`
/// (i.e. σ ≥ (√5−1)/2 ≈ 0.618, or σ > 1 where the root is NaN).
pub fn alpha_threshold_exact_checked(sigma: f64) -> Option<f64> {
    let root = (1.0 - sigma).sqrt();
    alpha_threshold_exact_valid(sigma, root)
        .then(|| alpha_threshold_exact_kernel(sigma, root))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_limits() {
        // α = 1: LM moves exactly one checkpoint's worth → β = σ (no
        // p-ckpt advantage in coverage).
        assert!((beta_pckpt(1.0, 0.3) - 0.3).abs() < 1e-12);
        // α → ∞: p-ckpt covers everything.
        assert!(beta_pckpt(1e9, 0.3) > 0.999_999);
        // β grows with α.
        assert!(beta_pckpt(3.0, 0.3) > beta_pckpt(1.5, 0.3));
    }

    #[test]
    fn lm_ckpt_reduction_examples() {
        assert_eq!(lm_ckpt_reduction(0.0), 0.0);
        // σ = 0.44 (CHIMERA) → ≈25 %.
        assert!((lm_ckpt_reduction(0.44) - 0.2517).abs() < 1e-3);
        // σ = 0.75 → 50 %.
        assert!((lm_ckpt_reduction(0.75) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eq8_bounds_match_paper() {
        // "Under the constraints of 0 <= σ < 0.61, the LM transfer size to
        // checkpoint size ratio implies 1.04 <= α < 1.30 for p-ckpt to
        // perform better than LM."
        let at_low = alpha_threshold(0.05);
        let at_mid = alpha_threshold(0.3);
        let at_high = alpha_threshold(0.60);
        assert!(
            (1.0..=1.06).contains(&at_low),
            "α threshold near σ→0 ≈ 1.0–1.05, got {at_low}"
        );
        assert!((1.0..1.30).contains(&at_mid));
        assert!(
            (1.28..1.31).contains(&at_high),
            "α threshold near σ→0.61 ≈ 1.30, got {at_high}"
        );
        // Monotone increasing in σ.
        let mut prev = 0.0;
        for i in 0..60 {
            let s = i as f64 * 0.01;
            let a = alpha_threshold(s);
            assert!(a >= prev);
            prev = a;
        }
    }

    #[test]
    fn exact_threshold_is_consistent_with_inequality() {
        for &sigma in &[0.05, 0.2, 0.4, 0.55] {
            let a_star = alpha_threshold_exact(sigma);
            assert!(
                pckpt_beats_lm(a_star * 1.01, sigma, 1.0),
                "just above the exact threshold p-ckpt must win (σ={sigma})"
            );
            assert!(
                !pckpt_beats_lm(a_star * 0.99, sigma, 1.0),
                "just below the exact threshold LM must win (σ={sigma})"
            );
        }
    }

    #[test]
    fn exact_threshold_diverges_near_golden_ratio_bound() {
        // The exact algebra blows up as σ → (√5−1)/2 ≈ 0.618 — the origin
        // of the paper's σ < 0.61 validity constraint.
        assert!(alpha_threshold_exact(0.6) > 8.0);
        assert!(alpha_threshold_exact(0.0) == 1.0);
        // The printed Eq. 8 stays bounded (its 1.30 ceiling), i.e. the two
        // forms genuinely differ for large σ.
        assert!(alpha_threshold(0.6) < 1.31);
    }

    #[test]
    #[should_panic(expected = "0.618")]
    fn exact_threshold_rejects_sigma_beyond_validity() {
        let _ = alpha_threshold_exact(0.63);
    }

    #[test]
    fn recomp_heavy_workloads_favour_pckpt() {
        // With recomputation dominating (ratio ≫ 1), p-ckpt wins even at
        // modest α; with checkpointing dominating, LM wins.
        assert!(pckpt_beats_lm(1.2, 0.3, 10.0));
        assert!(!pckpt_beats_lm(1.2, 0.3, 0.1));
    }

    #[test]
    #[should_panic(expected = "valid for")]
    fn eq8_rejects_sigma_beyond_validity() {
        let _ = alpha_threshold(0.7);
    }

    #[test]
    fn checked_variants_mirror_panicking_ones_bit_for_bit() {
        for &(alpha, sigma) in &[(1.0, 0.0), (3.0, 0.3), (1.5, 0.6), (8.0, 0.05)] {
            assert_eq!(
                beta_pckpt_checked(alpha, sigma).unwrap().to_bits(),
                beta_pckpt(alpha, sigma).to_bits()
            );
            assert_eq!(
                lm_ckpt_reduction_checked(sigma).unwrap().to_bits(),
                lm_ckpt_reduction(sigma).to_bits()
            );
            assert_eq!(
                pckpt_beats_lm_checked(alpha, sigma, 1.0).unwrap(),
                pckpt_beats_lm(alpha, sigma, 1.0)
            );
            assert_eq!(
                alpha_threshold_exact_checked(sigma).unwrap().to_bits(),
                alpha_threshold_exact(sigma).to_bits()
            );
            if sigma < SIGMA_MAX {
                assert_eq!(
                    alpha_threshold_checked(sigma).unwrap().to_bits(),
                    alpha_threshold(sigma).to_bits()
                );
            }
        }
    }

    #[test]
    fn checked_variants_flag_invalid_inputs_instead_of_panicking() {
        // Eq. (6): α < 1 or σ outside [0, 1).
        assert!(beta_pckpt_checked(0.5, 0.3).is_none());
        assert!(beta_pckpt_checked(3.0, 1.0).is_none());
        assert!(beta_pckpt_checked(3.0, -0.1).is_none());
        // Eq. (5): σ outside [0, 1).
        assert!(lm_ckpt_reduction_checked(1.0).is_none());
        // Eq. (8) as printed: the σ < SIGMA_MAX band, boundary exclusive.
        assert!(alpha_threshold_checked(SIGMA_MAX).is_none());
        assert!(alpha_threshold_checked(0.7).is_none());
        assert!(alpha_threshold_checked(SIGMA_MAX - 1e-9).is_some());
        // Exact threshold: √(1−σ) > σ, so 0.618… is out, SIGMA_MAX is in.
        assert!(alpha_threshold_exact_checked(0.63).is_none());
        assert!(alpha_threshold_exact_checked(SIGMA_MAX).is_some());
        assert!(alpha_threshold_exact_checked(1.5).is_none(), "NaN root");
        // The verdict composes Eqs. (5)+(6).
        assert!(pckpt_beats_lm_checked(0.5, 0.3, 1.0).is_none());
        assert!(pckpt_beats_lm_checked(3.0, 1.0, 1.0).is_none());
    }
}

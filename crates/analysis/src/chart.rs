//! ASCII charts: bar charts (Fig. 6), heat maps (Fig. 2c) and box plots
//! (Fig. 2a) rendered for the terminal.

/// A horizontal bar chart with labeled, optionally stacked bars.
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    width: usize,
    /// (label, segments, annotation); segments stack left to right.
    bars: Vec<(String, Vec<f64>, String)>,
    segment_chars: Vec<char>,
}

impl BarChart {
    /// Creates a chart `width` characters wide for the longest bar.
    pub fn new(title: impl Into<String>, width: usize) -> Self {
        assert!(width >= 10, "chart too narrow to read");
        Self {
            title: title.into(),
            width,
            bars: Vec::new(),
            segment_chars: vec!['#', '=', '.', '+', '~'],
        }
    }

    /// Adds a stacked bar. Segment values must be non-negative and finite.
    pub fn bar(
        &mut self,
        label: impl Into<String>,
        segments: Vec<f64>,
        annotation: impl Into<String>,
    ) -> &mut Self {
        assert!(
            segments.iter().all(|&s| s >= 0.0 && s.is_finite()),
            "segments must be finite and non-negative"
        );
        self.bars.push((label.into(), segments, annotation.into()));
        self
    }

    /// Renders the chart; bars are scaled so the largest total fills the
    /// width.
    pub fn render(&self) -> String {
        let max_total: f64 = self
            .bars
            .iter()
            .map(|(_, segs, _)| segs.iter().sum::<f64>())
            .fold(0.0, f64::max);
        let label_w = self
            .bars
            .iter()
            .map(|(l, _, _)| l.chars().count())
            .max()
            .unwrap_or(0);
        let mut out = format!("{}\n", self.title);
        for (label, segs, ann) in &self.bars {
            let mut bar = String::new();
            if max_total > 0.0 {
                for (i, &s) in segs.iter().enumerate() {
                    let chars = (s / max_total * self.width as f64).round() as usize;
                    let c = self.segment_chars[i % self.segment_chars.len()];
                    bar.push_str(&c.to_string().repeat(chars));
                }
            }
            out.push_str(&format!(
                "{:<label_w$} |{:<width$}| {}\n",
                label,
                bar,
                ann,
                label_w = label_w,
                width = self.width
            ));
        }
        out
    }
}

/// A shaded heat map over a 2-D grid (Fig. 2c).
#[derive(Debug, Clone)]
pub struct HeatMap {
    title: String,
    row_labels: Vec<String>,
    col_labels: Vec<String>,
    /// Row-major values.
    values: Vec<f64>,
}

/// Shade ramp from low to high.
const SHADES: [char; 8] = [' ', '.', ':', '-', '=', '+', '*', '#'];

impl HeatMap {
    /// Creates a heat map; `values` is row-major with
    /// `rows.len() × cols.len()` entries.
    pub fn new(
        title: impl Into<String>,
        row_labels: Vec<String>,
        col_labels: Vec<String>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(
            values.len(),
            row_labels.len() * col_labels.len(),
            "values must fill the grid"
        );
        assert!(values.iter().all(|v| v.is_finite()));
        Self {
            title: title.into(),
            row_labels,
            col_labels,
            values,
        }
    }

    /// Renders with one shaded cell per column.
    pub fn render(&self) -> String {
        let lo = self.values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = self.values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(f64::EPSILON);
        let label_w = self
            .row_labels
            .iter()
            .map(|l| l.chars().count())
            .max()
            .unwrap_or(0);
        let cols = self.col_labels.len();
        let mut out = format!("{}  (min {:.3e}, max {:.3e})\n", self.title, lo, hi);
        for (r, rl) in self.row_labels.iter().enumerate() {
            let mut line = format!("{rl:<label_w$} |");
            for c in 0..cols {
                let v = self.values[r * cols + c];
                let idx = (((v - lo) / span) * (SHADES.len() - 1) as f64).round() as usize;
                let ch = SHADES[idx.min(SHADES.len() - 1)];
                line.push(ch);
                line.push(ch);
            }
            line.push('|');
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(&format!(
            "{:label_w$}  cols: {}\n",
            "",
            self.col_labels.join(", ")
        ));
        out
    }

    /// The value at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.values[row * self.col_labels.len() + col]
    }
}

/// A labeled ASCII box plot series (Fig. 2a).
#[derive(Debug, Clone)]
pub struct BoxPlotChart {
    title: String,
    width: usize,
    /// (label, whisker_lo, q1, median, q3, whisker_hi, annotation)
    entries: Vec<(String, [f64; 5], String)>,
}

impl BoxPlotChart {
    /// Creates a box-plot chart of the given rendering width.
    pub fn new(title: impl Into<String>, width: usize) -> Self {
        assert!(width >= 20);
        Self {
            title: title.into(),
            width,
            entries: Vec::new(),
        }
    }

    /// Adds one box: `[whisker_lo, q1, median, q3, whisker_hi]` must be
    /// non-decreasing.
    pub fn entry(
        &mut self,
        label: impl Into<String>,
        five: [f64; 5],
        annotation: impl Into<String>,
    ) -> &mut Self {
        assert!(
            five.windows(2).all(|w| w[0] <= w[1]),
            "box-plot five-number summary must be sorted"
        );
        self.entries.push((label.into(), five, annotation.into()));
        self
    }

    /// Renders all boxes on a common axis.
    pub fn render(&self) -> String {
        let lo = self
            .entries
            .iter()
            .map(|(_, f, _)| f[0])
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .entries
            .iter()
            .map(|(_, f, _)| f[4])
            .fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(f64::EPSILON);
        let label_w = self
            .entries
            .iter()
            .map(|(l, _, _)| l.chars().count())
            .max()
            .unwrap_or(0);
        let pos = |v: f64| -> usize {
            (((v - lo) / span) * (self.width - 1) as f64).round() as usize
        };
        let mut out = format!("{}  (axis {:.1} .. {:.1})\n", self.title, lo, hi);
        for (label, five, ann) in &self.entries {
            let mut line: Vec<char> = vec![' '; self.width];
            let (wl, q1, med, q3, wh) = (pos(five[0]), pos(five[1]), pos(five[2]), pos(five[3]), pos(five[4]));
            for cell in line.iter_mut().take(q1).skip(wl) {
                *cell = '-';
            }
            for cell in line.iter_mut().take(wh + 1).skip(q3) {
                *cell = '-';
            }
            for cell in line.iter_mut().take(q3 + 1).skip(q1) {
                *cell = '=';
            }
            line[wl] = '|';
            line[wh.min(self.width - 1)] = '|';
            line[med.min(self.width - 1)] = 'M';
            let bar: String = line.into_iter().collect();
            out.push_str(&format!("{label:<label_w$} {bar} {ann}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barchart_scales_to_longest_bar() {
        let mut c = BarChart::new("overheads", 20);
        c.bar("B", vec![10.0], "10h");
        c.bar("P2", vec![5.0], "5h");
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains(&"#".repeat(20)));
        assert!(lines[2].contains(&"#".repeat(10)));
        assert!(!lines[2].contains(&"#".repeat(11)));
    }

    #[test]
    fn barchart_stacks_segments() {
        let mut c = BarChart::new("stacked", 10);
        c.bar("x", vec![5.0, 5.0], "");
        let s = c.render();
        assert!(s.contains("#####====="));
    }

    #[test]
    fn barchart_handles_all_zero() {
        let mut c = BarChart::new("zero", 10);
        c.bar("x", vec![0.0], "0");
        let s = c.render();
        assert!(s.contains("|          |"));
    }

    #[test]
    fn heatmap_shades_extremes() {
        let h = HeatMap::new(
            "t",
            vec!["r0".into(), "r1".into()],
            vec!["c0".into(), "c1".into()],
            vec![0.0, 1.0, 2.0, 3.0],
        );
        let s = h.render();
        assert!(s.contains("##"), "max cell must use the darkest shade");
        assert!(s.lines().nth(1).unwrap().contains("  "), "min cell blank");
        assert_eq!(h.value(1, 1), 3.0);
    }

    #[test]
    fn boxplot_orders_glyphs() {
        let mut b = BoxPlotChart::new("leads", 40);
        b.entry("seq1", [0.0, 10.0, 20.0, 30.0, 40.0], "n=10");
        let s = b.render();
        let line = s.lines().nth(1).unwrap();
        let bar: &str = &line[5..45];
        let i_wl = bar.find('|').unwrap();
        let i_med = bar.find('M').unwrap();
        let i_wh = bar.rfind('|').unwrap();
        assert!(i_wl < i_med && i_med < i_wh);
        assert!(line.ends_with("n=10"));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn boxplot_rejects_unsorted_summary() {
        let mut b = BoxPlotChart::new("x", 30);
        b.entry("bad", [5.0, 1.0, 2.0, 3.0, 4.0], "");
    }

    #[test]
    #[should_panic(expected = "fill the grid")]
    fn heatmap_rejects_wrong_size() {
        let _ = HeatMap::new("t", vec!["r".into()], vec!["c".into()], vec![1.0, 2.0]);
    }
}

//! Batched SoA evaluation of Eqs. (4)–(8) over parameter grids.
//!
//! The scalar functions in [`crate::analytic`] answer one `(α, σ)` point
//! per call; grid-shaped workloads (crossover maps, pre-filter sweeps,
//! sensitivity fans) want millions of points. [`BatchEval`] takes the
//! grid as flat column arrays — structure-of-arrays, one `&[f64]` per
//! axis — and fills one output column per equation in a single chunked
//! pass over the columns:
//!
//! * `mitigatable_fraction` — β, Eq. (6);
//! * `lm_ckpt_reduction` — LM's checkpoint savings, Eq. (5);
//! * `pckpt_wins` — the Eq. (4)/(7) verdict at the given overhead ratio;
//! * `alpha_threshold` — the printed Eq. (8) crossover threshold;
//! * `alpha_threshold_exact` — the exact solution of Eqs. (4)–(6).
//!
//! Every column is computed by the same `#[inline(always)]` kernels the
//! scalar functions compile down to, so batch output is **bit-identical**
//! (`to_bits`) to a scalar loop (pinned by the `analytic_batch_equivalence`
//! proptest). Cells outside an equation's domain do not panic mid-batch:
//! they get `NaN` (or `false` for the verdict) in the affected column and
//! a cleared bit in the per-cell [`Validity`] mask — exactly the cells
//! where the corresponding `*_checked` scalar function returns `None`.
//!
//! The evaluator owns its output buffers and only grows them, so repeated
//! `evaluate` calls over same-sized grids allocate nothing; the inner
//! loops are branch-free over `CHUNK`-sized column windows and
//! auto-vectorize (the `≥1M cells/s` budget in `BENCH_pr6.json` is
//! tracked by the `analytic_batch` criterion group).

use crate::analytic::{
    alpha_threshold_exact_kernel, alpha_threshold_exact_valid, alpha_threshold_kernel,
    alpha_threshold_valid, beta_kernel, beta_valid, lm_reduction_kernel, lm_reduction_valid,
    pckpt_wins_kernel,
};

/// Column-window length of the fused inner loops: small enough that one
/// window's five output slices stay L1-resident, large enough to
/// amortize the loop bookkeeping.
pub const CHUNK: usize = 1024;

/// Per-cell validity bit set: which of the five outputs are inside their
/// equation's domain (the cells where the scalar `*_checked` functions
/// return `Some`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Validity(u8);

impl Validity {
    /// Eq. (5) — `lm_ckpt_reduction` is valid (`σ ∈ [0, 1)`).
    pub const LM_CKPT_REDUCTION: Validity = Validity(1);
    /// Eq. (6) — `mitigatable_fraction` is valid (`α ≥ 1`, `σ ∈ [0, 1)`).
    pub const MITIGATABLE: Validity = Validity(1 << 1);
    /// Eq. (4)/(7) — the `pckpt_wins` verdict is valid (Eqs. 5 ∧ 6).
    pub const VERDICT: Validity = Validity(1 << 2);
    /// Printed Eq. (8) — `alpha_threshold` is valid (`σ ∈ [0, SIGMA_MAX)`).
    pub const ALPHA_THRESHOLD: Validity = Validity(1 << 3);
    /// Exact threshold is valid (`√(1−σ) > σ`).
    pub const ALPHA_THRESHOLD_EXACT: Validity = Validity(1 << 4);
    /// Every output valid.
    pub const ALL: Validity = Validity(0b1_1111);

    /// Does this mask contain every bit of `flags`?
    pub fn has(self, flags: Validity) -> bool {
        self.0 & flags.0 == flags.0
    }

    /// The raw bit set (stable layout: the constants above).
    pub fn bits(self) -> u8 {
        self.0
    }
}

/// Reusable SoA evaluator for Eqs. (4)–(8); see the module docs.
#[derive(Debug, Default, Clone)]
pub struct BatchEval {
    mitigatable_fraction: Vec<f64>,
    lm_ckpt_reduction: Vec<f64>,
    pckpt_wins: Vec<bool>,
    alpha_threshold: Vec<f64>,
    alpha_threshold_exact: Vec<f64>,
    validity: Vec<Validity>,
    len: usize,
}

impl BatchEval {
    /// An empty evaluator; buffers grow on first [`evaluate`](Self::evaluate).
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates Eqs. (4)–(8) for every `(alpha[i], sigma[i])` cell.
    ///
    /// `recomp_to_ckpt_ratio` is the grid-wide `recomp_B / ckpt_B` of the
    /// Eq. (4) verdict (Eq. 8's 50/50 split is ratio 1); like the scalar
    /// API it is a hard precondition, not a per-cell axis.
    pub fn evaluate(&mut self, alpha: &[f64], sigma: &[f64], recomp_to_ckpt_ratio: f64) {
        assert_eq!(alpha.len(), sigma.len(), "SoA columns must be equal length");
        assert!(recomp_to_ckpt_ratio > 0.0);
        let n = alpha.len();
        self.len = n;
        // Growth-only resize: steady-state re-evaluation over same-sized
        // (or smaller) grids performs no allocation.
        self.mitigatable_fraction.resize(n.max(self.mitigatable_fraction.len()), 0.0);
        self.lm_ckpt_reduction.resize(n.max(self.lm_ckpt_reduction.len()), 0.0);
        self.pckpt_wins.resize(n.max(self.pckpt_wins.len()), false);
        self.alpha_threshold.resize(n.max(self.alpha_threshold.len()), 0.0);
        self.alpha_threshold_exact.resize(n.max(self.alpha_threshold_exact.len()), 0.0);
        self.validity.resize(n.max(self.validity.len()), Validity::default());

        let mut start = 0;
        while start < n {
            let end = (start + CHUNK).min(n);
            eval_chunk(
                &alpha[start..end],
                &sigma[start..end],
                recomp_to_ckpt_ratio,
                &mut self.mitigatable_fraction[start..end],
                &mut self.lm_ckpt_reduction[start..end],
                &mut self.pckpt_wins[start..end],
                &mut self.alpha_threshold[start..end],
                &mut self.alpha_threshold_exact[start..end],
                &mut self.validity[start..end],
            );
            start = end;
        }
    }

    /// Cells in the most recent evaluation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Has anything been evaluated yet?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// β column (Eq. 6); `NaN` where [`Validity::MITIGATABLE`] is clear.
    pub fn mitigatable_fraction(&self) -> &[f64] {
        &self.mitigatable_fraction[..self.len]
    }

    /// LM checkpoint-savings column (Eq. 5); `NaN` where
    /// [`Validity::LM_CKPT_REDUCTION`] is clear.
    pub fn lm_ckpt_reduction(&self) -> &[f64] {
        &self.lm_ckpt_reduction[..self.len]
    }

    /// Eq. (4)/(7) verdict column; `false` (meaningless) where
    /// [`Validity::VERDICT`] is clear.
    pub fn pckpt_wins(&self) -> &[bool] {
        &self.pckpt_wins[..self.len]
    }

    /// Printed Eq. (8) threshold column; `NaN` where
    /// [`Validity::ALPHA_THRESHOLD`] is clear.
    pub fn alpha_threshold(&self) -> &[f64] {
        &self.alpha_threshold[..self.len]
    }

    /// Exact threshold column; `NaN` where
    /// [`Validity::ALPHA_THRESHOLD_EXACT`] is clear.
    pub fn alpha_threshold_exact(&self) -> &[f64] {
        &self.alpha_threshold_exact[..self.len]
    }

    /// Per-cell validity masks.
    pub fn validity(&self) -> &[Validity] {
        &self.validity[..self.len]
    }
}

/// The fused inner loop over one column window: five outputs, one pass,
/// no branches on cell values (invalid cells are NaN-selected, never
/// skipped, so the loop body is uniform and auto-vectorizable).
// simlint: hot
#[allow(clippy::too_many_arguments)]
#[inline]
fn eval_chunk(
    alpha: &[f64],
    sigma: &[f64],
    ratio: f64,
    out_beta: &mut [f64],
    out_lm: &mut [f64],
    out_wins: &mut [bool],
    out_thr: &mut [f64],
    out_thr_exact: &mut [f64],
    out_validity: &mut [Validity],
) {
    let n = alpha.len();
    let (alpha, sigma) = (&alpha[..n], &sigma[..n]);
    let (out_beta, out_lm) = (&mut out_beta[..n], &mut out_lm[..n]);
    let (out_wins, out_thr) = (&mut out_wins[..n], &mut out_thr[..n]);
    let (out_thr_exact, out_validity) = (&mut out_thr_exact[..n], &mut out_validity[..n]);
    for i in 0..n {
        let (a, s) = (alpha[i], sigma[i]);
        // Shared per-cell subexpression of Eqs. (5), (8) and the exact
        // threshold; NaN outside σ ≤ 1, which the masks absorb.
        let root = (1.0 - s).sqrt();

        let beta_ok = beta_valid(a, s);
        let lm_ok = lm_reduction_valid(s);
        let verdict_ok = beta_ok && lm_ok;
        let thr_ok = alpha_threshold_valid(s);
        let exact_ok = alpha_threshold_exact_valid(s, root);

        // Unconditional kernel evaluation is safe in floats (division by
        // zero and NaN propagate; nothing panics); the select below maps
        // out-of-domain cells to NaN, mirroring the checked scalar API.
        out_beta[i] = if beta_ok { beta_kernel(a, s) } else { f64::NAN };
        out_lm[i] = if lm_ok { lm_reduction_kernel(root) } else { f64::NAN };
        out_wins[i] = verdict_ok && pckpt_wins_kernel(a, s, root, ratio);
        out_thr[i] = if thr_ok { alpha_threshold_kernel(s, root) } else { f64::NAN };
        out_thr_exact[i] = if exact_ok {
            alpha_threshold_exact_kernel(s, root)
        } else {
            f64::NAN
        };
        out_validity[i] = Validity(
            Validity::LM_CKPT_REDUCTION.0 * lm_ok as u8
                | Validity::MITIGATABLE.0 * beta_ok as u8
                | Validity::VERDICT.0 * verdict_ok as u8
                | Validity::ALPHA_THRESHOLD.0 * thr_ok as u8
                | Validity::ALPHA_THRESHOLD_EXACT.0 * exact_ok as u8,
        );
    }
}

/// Flattens an `alphas × sigmas` Cartesian grid into row-major SoA
/// columns (α varies slowest), ready for [`BatchEval::evaluate`].
pub fn cartesian_columns(alphas: &[f64], sigmas: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = alphas.len() * sigmas.len();
    let mut col_a = Vec::with_capacity(n);
    let mut col_s = Vec::with_capacity(n);
    for &a in alphas {
        for &s in sigmas {
            col_a.push(a);
            col_s.push(s);
        }
    }
    (col_a, col_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{
        alpha_threshold_checked, alpha_threshold_exact_checked, beta_pckpt_checked,
        lm_ckpt_reduction_checked, pckpt_beats_lm_checked, SIGMA_MAX,
    };

    #[test]
    fn batch_matches_checked_scalars_on_a_mixed_grid() {
        // Straddles every domain edge: valid interior, α < 1, σ < 0,
        // σ = SIGMA_MAX exactly, σ in the (0.61, 0.618) sliver where only
        // the printed threshold is invalid, σ ≥ 1.
        let (a, s) = cartesian_columns(
            &[0.5, 1.0, 1.2, 3.0, 64.0],
            &[-0.1, 0.0, 0.3, 0.6, SIGMA_MAX, 0.615, 0.62, 0.99, 1.0, 1.7],
        );
        let mut be = BatchEval::new();
        be.evaluate(&a, &s, 1.0);
        assert_eq!(be.len(), a.len());
        for i in 0..be.len() {
            let v = be.validity()[i];
            match beta_pckpt_checked(a[i], s[i]) {
                Some(x) => {
                    assert!(v.has(Validity::MITIGATABLE));
                    assert_eq!(x.to_bits(), be.mitigatable_fraction()[i].to_bits());
                }
                None => {
                    assert!(!v.has(Validity::MITIGATABLE));
                    assert!(be.mitigatable_fraction()[i].is_nan());
                }
            }
            match lm_ckpt_reduction_checked(s[i]) {
                Some(x) => assert_eq!(x.to_bits(), be.lm_ckpt_reduction()[i].to_bits()),
                None => assert!(be.lm_ckpt_reduction()[i].is_nan()),
            }
            match pckpt_beats_lm_checked(a[i], s[i], 1.0) {
                Some(x) => {
                    assert!(v.has(Validity::VERDICT));
                    assert_eq!(x, be.pckpt_wins()[i]);
                }
                None => assert!(!v.has(Validity::VERDICT)),
            }
            match alpha_threshold_checked(s[i]) {
                Some(x) => assert_eq!(x.to_bits(), be.alpha_threshold()[i].to_bits()),
                None => assert!(be.alpha_threshold()[i].is_nan()),
            }
            match alpha_threshold_exact_checked(s[i]) {
                Some(x) => assert_eq!(x.to_bits(), be.alpha_threshold_exact()[i].to_bits()),
                None => assert!(be.alpha_threshold_exact()[i].is_nan()),
            }
        }
    }

    #[test]
    fn fully_valid_cells_carry_the_full_mask() {
        let mut be = BatchEval::new();
        be.evaluate(&[3.0], &[0.3], 1.0);
        assert_eq!(be.validity()[0], Validity::ALL);
        assert!(be.pckpt_wins()[0], "α=3, σ=0.3 is deep in p-ckpt territory");
    }

    #[test]
    fn sigma_max_edge_keeps_exact_but_not_printed_threshold() {
        let mut be = BatchEval::new();
        be.evaluate(&[2.0, 2.0], &[SIGMA_MAX - 1e-12, SIGMA_MAX], 1.0);
        assert!(be.validity()[0].has(Validity::ALPHA_THRESHOLD));
        assert!(!be.validity()[1].has(Validity::ALPHA_THRESHOLD));
        // The exact algebra remains valid at 0.61 (its bound is 0.618…).
        assert!(be.validity()[1].has(Validity::ALPHA_THRESHOLD_EXACT));
    }

    #[test]
    fn reevaluation_reuses_buffers_and_truncates_views() {
        let mut be = BatchEval::new();
        be.evaluate(&[3.0; 100], &[0.2; 100], 1.0);
        assert_eq!(be.len(), 100);
        be.evaluate(&[2.0; 7], &[0.5; 7], 1.0);
        assert_eq!(be.len(), 7);
        assert_eq!(be.mitigatable_fraction().len(), 7);
        assert_eq!(be.validity().len(), 7);
    }

    #[test]
    fn cartesian_columns_are_row_major() {
        let (a, s) = cartesian_columns(&[1.0, 2.0], &[0.1, 0.2, 0.3]);
        assert_eq!(a, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        assert_eq!(s, vec![0.1, 0.2, 0.3, 0.1, 0.2, 0.3]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_columns_are_rejected() {
        BatchEval::new().evaluate(&[1.0], &[0.1, 0.2], 1.0);
    }
}

//! `pckpt-analysis` — the analytical LM-vs-p-ckpt model and report
//! rendering.
//!
//! * [`analytic`] — Observation 8's closed-form comparison of live
//!   migration and p-ckpt (Eqs. 4–8): when does prioritized checkpointing
//!   beat migration as the proactive action, as a function of the LM
//!   transfer ratio α and the LM-avoidable failure fraction σ?
//! * [`report`] — fixed-width table rendering for the experiment
//!   binaries (each prints the rows/series of one paper table or figure).
//! * [`chart`] — ASCII bar charts, heat maps and box plots so the
//!   regenerated figures are readable straight from a terminal.

#![warn(missing_docs)]

pub mod analytic;
pub mod chart;
pub mod report;

pub use analytic::{
    alpha_threshold, alpha_threshold_exact, beta_pckpt, lm_ckpt_reduction, pckpt_beats_lm,
    SIGMA_MAX,
};
pub use chart::{BarChart, BoxPlotChart, HeatMap};
pub use report::Table;

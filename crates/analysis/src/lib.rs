//! `pckpt-analysis` — the analytical LM-vs-p-ckpt model and report
//! rendering.
//!
//! * [`analytic`] — Observation 8's closed-form comparison of live
//!   migration and p-ckpt (Eqs. 4–8): when does prioritized checkpointing
//!   beat migration as the proactive action, as a function of the LM
//!   transfer ratio α and the LM-avoidable failure fraction σ?
//! * [`batch`] — the same equations over whole parameter grids: an
//!   SoA-layout evaluator with per-cell validity masks, bit-identical to
//!   the scalar functions at millions of cells per second.
//! * [`curve`] — σ ↦ α-threshold and α ↦ break-even-σ surfaces as
//!   composable curve objects (sample / refine / invert / intersect),
//!   plus the margin-aware crossover verdict the analytic pre-filter
//!   uses.
//! * [`report`] — fixed-width table rendering for the experiment
//!   binaries (each prints the rows/series of one paper table or figure).
//! * [`chart`] — ASCII bar charts, heat maps and box plots so the
//!   regenerated figures are readable straight from a terminal.

#![warn(missing_docs)]

pub mod analytic;
pub mod batch;
pub mod chart;
pub mod curve;
pub mod report;

pub use analytic::{
    alpha_threshold, alpha_threshold_checked, alpha_threshold_exact,
    alpha_threshold_exact_checked, beta_pckpt, beta_pckpt_checked, lm_ckpt_reduction,
    lm_ckpt_reduction_checked, pckpt_beats_lm, pckpt_beats_lm_checked, SIGMA_MAX,
};
pub use batch::{cartesian_columns, BatchEval, Validity};
pub use chart::{BarChart, BoxPlotChart, HeatMap};
pub use curve::{
    break_even_sigma, crossover_verdict, AlphaThresholdCurve, AlphaThresholdExactCurve,
    ConstCurve, Crossing, Curve, CurveExt, SampledCurve, SIGMA_GUARD,
};
pub use report::Table;

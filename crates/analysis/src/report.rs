//! Fixed-width table rendering for the experiment binaries.
//!
//! Every `exp_*` binary prints the rows of one paper table/figure; this
//! module keeps the formatting consistent and tested.

/// Cell alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with column headers; the first column is
    /// left-aligned, the rest right-aligned (override with
    /// [`Table::with_aligns`]).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        let mut aligns = vec![Align::Right; headers.len()];
        aligns[0] = Align::Left;
        Self {
            headers,
            aligns,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Overrides the per-column alignment.
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns;
        self
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cells[i].chars().count());
                match aligns[i] {
                    Align::Left => {
                        line.push_str(&cells[i]);
                        line.push_str(&" ".repeat(pad));
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(pad));
                        line.push_str(&cells[i]);
                    }
                }
            }
            while line.ends_with(' ') {
                line.pop();
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths, &self.aligns));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths, &self.aligns));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats hours with one decimal.
pub fn hours(h: f64) -> String {
    format!("{h:.1}h")
}

/// Formats a ratio with two decimals (the FT-ratio tables).
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["app", "overhead"]);
        t.row(vec!["CHIMERA", "15.1"]);
        t.row(vec!["POP", "0.2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "app      overhead");
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(lines[2], "CHIMERA      15.1");
        assert_eq!(lines[3], "POP           0.2");
    }

    #[test]
    fn title_precedes_table() {
        let mut t = Table::new(vec!["x"]).with_title("Table II");
        t.row(vec!["1"]);
        assert!(t.render().starts_with("Table II\n"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.423), "42.3%");
        assert_eq!(hours(15.06), "15.1h");
        assert_eq!(ratio(0.846), "0.85");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn custom_alignment() {
        let mut t =
            Table::new(vec!["a", "b"]).with_aligns(vec![Align::Right, Align::Left]);
        t.row(vec!["1", "x"]);
        t.row(vec!["22", "yy"]);
        let s = t.render();
        assert!(s.contains(" 1  x"));
        assert!(s.contains("22  yy"));
    }
}

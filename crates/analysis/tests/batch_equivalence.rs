//! `analytic_batch_equivalence` — the batched SoA evaluator is
//! **bit-identical** (`to_bits`) to the scalar Eq. (4)–(8) functions
//! across arbitrary (α, σ) grids, including out-of-domain cells and the
//! σ → `SIGMA_MAX` validity edge: wherever a `*_checked` scalar returns
//! `Some(v)`, the batch column carries exactly `v`'s bits and the
//! validity bit is set; wherever it returns `None`, the column is NaN
//! (or `false` for the verdict) and the bit is clear — no panic
//! mid-batch, ever.

use proptest::prelude::*;

use pckpt_analysis::analytic::{
    alpha_threshold_checked, alpha_threshold_exact_checked, beta_pckpt_checked,
    lm_ckpt_reduction_checked, pckpt_beats_lm_checked, SIGMA_MAX,
};
use pckpt_analysis::batch::{BatchEval, Validity};

/// One grid cell: mostly valid interior points, with a deliberate share
/// of boundary and out-of-domain values (α < 1, σ < 0, σ at/beyond
/// `SIGMA_MAX`, σ ≥ 1) so every validity bit pattern appears. The
/// interior ranges are listed several times — the shim's `prop_oneof!`
/// picks uniformly, so repetition stands in for weighting.
fn arb_cell() -> impl Strategy<Value = (f64, f64)> {
    let alpha = prop_oneof![
        1.0..16.0f64,
        1.0..16.0f64,
        1.0..16.0f64,
        0.1..1.0f64, // below the Eq. (6) domain
        Just(1.0),
    ];
    let sigma = prop_oneof![
        0.0..0.55f64,
        0.0..0.55f64,
        0.0..0.55f64,
        0.55..0.70f64, // straddles SIGMA_MAX and the 0.618 bound
        Just(SIGMA_MAX),
        Just(SIGMA_MAX - f64::EPSILON),
        0.70..1.05f64,  // beyond every validity bound
        -0.2..-0.0f64,  // negative σ
    ];
    (alpha, sigma)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn analytic_batch_equivalence(
        cells in proptest::collection::vec(arb_cell(), 1..300),
        ratio in prop_oneof![Just(1.0), 0.1..8.0f64],
    ) {
        let alpha: Vec<f64> = cells.iter().map(|c| c.0).collect();
        let sigma: Vec<f64> = cells.iter().map(|c| c.1).collect();
        let mut be = BatchEval::new();
        be.evaluate(&alpha, &sigma, ratio);
        prop_assert_eq!(be.len(), cells.len());

        for i in 0..cells.len() {
            let (a, s) = (alpha[i], sigma[i]);
            let v = be.validity()[i];

            match beta_pckpt_checked(a, s) {
                Some(x) => {
                    prop_assert!(v.has(Validity::MITIGATABLE));
                    prop_assert_eq!(
                        x.to_bits(),
                        be.mitigatable_fraction()[i].to_bits(),
                        "β diverged at cell {} (α={}, σ={})", i, a, s
                    );
                }
                None => {
                    prop_assert!(!v.has(Validity::MITIGATABLE));
                    prop_assert!(be.mitigatable_fraction()[i].is_nan());
                }
            }
            match lm_ckpt_reduction_checked(s) {
                Some(x) => {
                    prop_assert!(v.has(Validity::LM_CKPT_REDUCTION));
                    prop_assert_eq!(x.to_bits(), be.lm_ckpt_reduction()[i].to_bits());
                }
                None => {
                    prop_assert!(!v.has(Validity::LM_CKPT_REDUCTION));
                    prop_assert!(be.lm_ckpt_reduction()[i].is_nan());
                }
            }
            match pckpt_beats_lm_checked(a, s, ratio) {
                Some(x) => {
                    prop_assert!(v.has(Validity::VERDICT));
                    prop_assert_eq!(x, be.pckpt_wins()[i]);
                }
                None => {
                    prop_assert!(!v.has(Validity::VERDICT));
                    prop_assert!(!be.pckpt_wins()[i], "invalid cells never claim a win");
                }
            }
            match alpha_threshold_checked(s) {
                Some(x) => {
                    prop_assert!(v.has(Validity::ALPHA_THRESHOLD));
                    prop_assert_eq!(
                        x.to_bits(),
                        be.alpha_threshold()[i].to_bits(),
                        "printed Eq. 8 diverged at σ={} (the validity edge)", s
                    );
                }
                None => {
                    prop_assert!(!v.has(Validity::ALPHA_THRESHOLD));
                    prop_assert!(be.alpha_threshold()[i].is_nan());
                }
            }
            match alpha_threshold_exact_checked(s) {
                Some(x) => {
                    prop_assert!(v.has(Validity::ALPHA_THRESHOLD_EXACT));
                    prop_assert_eq!(x.to_bits(), be.alpha_threshold_exact()[i].to_bits());
                }
                None => {
                    prop_assert!(!v.has(Validity::ALPHA_THRESHOLD_EXACT));
                    prop_assert!(be.alpha_threshold_exact()[i].is_nan());
                }
            }
        }
    }

    /// Evaluator reuse across differently-shaped grids never leaks stale
    /// state: a second evaluation is indistinguishable from a fresh one.
    #[test]
    fn reused_evaluator_matches_fresh_evaluator(
        first in proptest::collection::vec(arb_cell(), 1..100),
        second in proptest::collection::vec(arb_cell(), 1..100),
    ) {
        let a2: Vec<f64> = second.iter().map(|c| c.0).collect();
        let s2: Vec<f64> = second.iter().map(|c| c.1).collect();

        let mut reused = BatchEval::new();
        let a1: Vec<f64> = first.iter().map(|c| c.0).collect();
        let s1: Vec<f64> = first.iter().map(|c| c.1).collect();
        reused.evaluate(&a1, &s1, 1.0);
        reused.evaluate(&a2, &s2, 1.0);

        let mut fresh = BatchEval::new();
        fresh.evaluate(&a2, &s2, 1.0);

        prop_assert_eq!(reused.len(), fresh.len());
        for i in 0..fresh.len() {
            prop_assert_eq!(
                reused.mitigatable_fraction()[i].to_bits(),
                fresh.mitigatable_fraction()[i].to_bits()
            );
            prop_assert_eq!(
                reused.alpha_threshold_exact()[i].to_bits(),
                fresh.alpha_threshold_exact()[i].to_bits()
            );
            prop_assert_eq!(reused.pckpt_wins()[i], fresh.pckpt_wins()[i]);
            prop_assert_eq!(reused.validity()[i], fresh.validity()[i]);
        }
    }
}

/// Satellite regression: a handcrafted mixed valid/invalid grid with the
/// σ = `SIGMA_MAX` edge in the middle of the batch — the exact shape
/// that would have panicked mid-batch under the scalar assert API.
#[test]
fn mixed_validity_grid_is_flagged_not_panicked() {
    let alpha = [3.0, 0.5, 3.0, 3.0, 3.0, 3.0];
    let sigma = [0.3, 0.3, SIGMA_MAX, 0.615, 0.99, -0.1];
    let mut be = BatchEval::new();
    be.evaluate(&alpha, &sigma, 1.0);

    // Cell 0: fully valid.
    assert_eq!(be.validity()[0], Validity::ALL);
    // Cell 1: α < 1 kills β and the verdict, σ is fine for the rest.
    assert!(!be.validity()[1].has(Validity::MITIGATABLE));
    assert!(!be.validity()[1].has(Validity::VERDICT));
    assert!(be.validity()[1].has(Validity::LM_CKPT_REDUCTION));
    assert!(be.validity()[1].has(Validity::ALPHA_THRESHOLD));
    // Cell 2: σ = SIGMA_MAX — printed Eq. (8) is out (half-open bound),
    // the exact algebra still holds (its bound is 0.618…).
    assert!(!be.validity()[2].has(Validity::ALPHA_THRESHOLD));
    assert!(be.validity()[2].has(Validity::ALPHA_THRESHOLD_EXACT));
    // Cell 3: the (0.61, 0.618) sliver — only the printed form is out.
    assert!(!be.validity()[3].has(Validity::ALPHA_THRESHOLD));
    assert!(be.validity()[3].has(Validity::ALPHA_THRESHOLD_EXACT));
    // Cell 4: σ = 0.99 — both thresholds out, β/LM still defined.
    assert!(!be.validity()[4].has(Validity::ALPHA_THRESHOLD_EXACT));
    assert!(be.validity()[4].has(Validity::MITIGATABLE));
    // Cell 5: negative σ invalidates everything probability-shaped; the
    // exact threshold survives — its algebraic condition √(1−σ) > σ
    // holds trivially for σ < 0 (the scalar checked variant agrees).
    assert_eq!(be.validity()[5], Validity::ALPHA_THRESHOLD_EXACT);
    assert!(be.mitigatable_fraction()[5].is_nan());
    assert!(be.lm_ckpt_reduction()[5].is_nan());
    assert!(be.alpha_threshold()[5].is_nan());
    assert!(!be.pckpt_wins()[5]);
}

//! `pckpt-simobs` — structured observability for the simulation stack.
//!
//! Three layers, each independently usable:
//!
//! 1. **Event recorder** ([`Recorder`]): a fixed-capacity ring that
//!    captures event pops, schedules, cancels, flow-wave completions and
//!    protocol transitions with sim-time and a *causal parent id*. It is
//!    compiled in only under the `trace` cargo feature; without it the
//!    type is a ZST and every hook is an `#[inline(always)]` empty body,
//!    so the default build keeps the allocation-free hot loop intact.
//! 2. **Per-run metrics** ([`RunObs`], [`ObsAggregate`]): always-on,
//!    fixed-size counters and power-of-two-bucket histograms (queue
//!    depth, events per run, checkpoint latency per level,
//!    recomputation). No heap, no branches beyond the bucket index —
//!    cheap enough for the steady-state campaign path.
//! 3. **Exporters**: Chrome-trace/Perfetto JSON for a single recording
//!    ([`Recording::to_chrome_trace`]) and causal diffing of two
//!    recordings ([`diff_report`]) that turns "campaign digest mismatch"
//!    into "these two runs first diverged *here*".
//!
//! The crate deliberately has no dependencies (not even on `desim`):
//! sim-time crosses the boundary as raw nanoseconds, so any layer of the
//! stack can report into it without cycles.

/// Sentinel parent id for records with no causal parent (e.g. the events
/// scheduled before the simulation loop starts).
pub const NO_PARENT: u64 = u64::MAX;

/// Record kind codes. Stable across runs and feature settings — they are
/// folded into trace digests, so renumbering invalidates goldens.
pub mod kind {
    /// An event was popped from the queue and dispatched.
    pub const POP: u16 = 1;
    /// An event was scheduled (`a` = event id).
    pub const SCHED: u16 = 2;
    /// A pending event was cancelled (`a` = event id).
    pub const CANCEL: u16 = 3;
    /// A fluid-flow transfer completed (`a` = transfer id, `b` = bytes
    /// as `f64::to_bits`).
    pub const FLOW_WAVE: u16 = 4;
    /// The C/R state machine moved (`a` = state code).
    pub const STATE: u16 = 5;
    /// A failure prediction was delivered (`a` = node, `b` = lead
    /// seconds as `f64::to_bits`).
    pub const PREDICTION: u16 = 6;
    /// Live migration started (`a` = node).
    pub const LM_START: u16 = 7;
    /// Live migration committed (`a` = node).
    pub const LM_COMMIT: u16 = 8;
    /// Live migration aborted in favour of p-ckpt (`a` = node).
    pub const LM_ABORT: u16 = 9;
    /// A p-ckpt round opened.
    pub const ROUND_START: u16 = 10;
    /// A vulnerable node's phase-1 commit landed (`a` = node).
    pub const PHASE1_COMMIT: u16 = 11;
    /// The round's phase-2 collective commit finished.
    pub const ROUND_COMPLETE: u16 = 12;
    /// A safeguard commit started.
    pub const SAFEGUARD_START: u16 = 13;
    /// The safeguard commit finished.
    pub const SAFEGUARD_DONE: u16 = 14;
    /// A periodic checkpoint reached the burst buffers.
    pub const BB_CKPT: u16 = 15;
    /// An asynchronous drain made a checkpoint PFS-durable.
    pub const DRAIN_DONE: u16 = 16;
    /// A failure arrived (`a` = node, `b` = 1 if mitigated).
    pub const FAILURE: u16 = 17;
    /// Recovery began (`b` = lost work seconds as `f64::to_bits`).
    pub const RECOVERY_START: u16 = 18;
    /// Recovery finished.
    pub const RECOVERY_DONE: u16 = 19;
    /// The application completed.
    pub const COMPLETE: u16 = 20;
    /// A cooperative process was woken (`a` = pid).
    pub const PROC_WAKE: u16 = 21;

    /// Human-readable name for a kind code.
    pub fn name(k: u16) -> &'static str {
        match k {
            POP => "pop",
            SCHED => "sched",
            CANCEL => "cancel",
            FLOW_WAVE => "flow_wave",
            STATE => "state",
            PREDICTION => "prediction",
            LM_START => "lm_start",
            LM_COMMIT => "lm_commit",
            LM_ABORT => "lm_abort",
            ROUND_START => "round_start",
            PHASE1_COMMIT => "phase1_commit",
            ROUND_COMPLETE => "round_complete",
            SAFEGUARD_START => "safeguard_start",
            SAFEGUARD_DONE => "safeguard_done",
            BB_CKPT => "bb_ckpt",
            DRAIN_DONE => "drain_done",
            FAILURE => "failure",
            RECOVERY_START => "recovery_start",
            RECOVERY_DONE => "recovery_done",
            COMPLETE => "complete",
            PROC_WAKE => "proc_wake",
            _ => "unknown",
        }
    }
}

/// One recorded occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Sim-time, nanoseconds.
    pub t: u64,
    /// Monotone sequence number within the recording (0-based). Also the
    /// causal id other records' `parent` fields refer to.
    pub seq: u64,
    /// Causal parent: the `seq` of the record that caused this one
    /// (the pop being handled when it was emitted; for a pop, the sched
    /// that enqueued it). [`NO_PARENT`] at the causal roots.
    pub parent: u64,
    /// What happened — a [`kind`] code.
    pub kind: u16,
    /// Kind-specific payload (event id, node, transfer id, ...).
    pub a: u64,
    /// Kind-specific payload (bytes/seconds as `f64::to_bits`, flags).
    pub b: u64,
}

/// A finished recording: the ring's contents, in emission order.
///
/// Available under every feature setting (always empty when `trace` is
/// off) so downstream code can be written once.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recording {
    /// Records in `seq` order. When the ring overflowed, this is the
    /// *prefix* of the stream (divergence hunting wants the earliest
    /// difference, so the ring keeps first and drops late).
    pub records: Vec<Record>,
    /// Number of records dropped after the ring filled.
    pub dropped: u64,
}

impl Recording {
    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// FNV-1a digest over every retained record and the drop count.
    /// Stable across platforms; used by the trace-determinism goldens.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut fold = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for r in &self.records {
            fold(r.t);
            fold(r.seq);
            fold(r.parent);
            fold(r.kind as u64);
            fold(r.a);
            fold(r.b);
        }
        fold(self.dropped);
        h
    }

    /// [`Recording::digest`] as a 16-hex-digit string.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }

    /// Serializes the recording as Chrome-trace JSON (instant events,
    /// microsecond timestamps). Load in `chrome://tracing` or
    /// [ui.perfetto.dev](https://ui.perfetto.dev).
    pub fn to_chrome_trace(&self, label: &str) -> String {
        let mut s = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        s.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{label}\"}}}}"
        ));
        for r in &self.records {
            let parent = if r.parent == NO_PARENT {
                -1
            } else {
                r.parent as i64
            };
            s.push_str(",\n");
            s.push_str(&format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"s\":\"t\",\"ts\":{:.3},\
                 \"name\":\"{}\",\"args\":{{\"seq\":{},\"parent\":{parent},\
                 \"a\":{},\"b\":{}}}}}",
                r.t as f64 / 1_000.0,
                kind::name(r.kind),
                r.seq,
                r.a,
                r.b,
            ));
        }
        s.push_str("\n]}\n");
        s
    }

    /// First index at which two recordings disagree, with both sides'
    /// records (`None` = that recording ended first). `None` when the
    /// streams are identical.
    pub fn first_divergence(&self, other: &Recording) -> Option<Divergence> {
        let n = self.records.len().min(other.records.len());
        for i in 0..n {
            if self.records[i] != other.records[i] {
                return Some(Divergence {
                    index: i,
                    left: Some(self.records[i]),
                    right: Some(other.records[i]),
                });
            }
        }
        if self.records.len() != other.records.len() {
            return Some(Divergence {
                index: n,
                left: self.records.get(n).copied(),
                right: other.records.get(n).copied(),
            });
        }
        None
    }

    /// The record with causal id `seq`, if retained.
    pub fn by_seq(&self, seq: u64) -> Option<&Record> {
        // seq assignment is dense from 0, so the ring prefix is indexable.
        self.records.get(seq as usize).filter(|r| r.seq == seq)
    }
}

/// Outcome of aligning two recordings: the first position where the
/// streams disagree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Divergence {
    /// Position in the aligned streams (also the causal id, as both
    /// streams agree on everything before it).
    pub index: usize,
    /// The first stream's record at `index` (`None` = stream ended).
    pub left: Option<Record>,
    /// The second stream's record at `index`.
    pub right: Option<Record>,
}

fn render_record(r: &Record, rec: &Recording) -> String {
    let parent = if r.parent == NO_PARENT {
        "  (causal root)".to_string()
    } else {
        match rec.by_seq(r.parent) {
            Some(p) => format!(
                "  caused by #{} {} @ {:.6}s",
                p.seq,
                kind::name(p.kind),
                p.t as f64 / 1e9
            ),
            None => format!("  caused by #{} (dropped from ring)", r.parent),
        }
    };
    format!(
        "#{seq} {name} @ {t:.6}s  a={a} b={b}\n{parent}",
        seq = r.seq,
        name = kind::name(r.kind),
        t = r.t as f64 / 1e9,
        a = r.a,
        b = r.b,
    )
}

/// Renders a human-readable report of the first divergence between two
/// recordings, with sim-times and causal parents on both sides. `None`
/// when the streams are identical.
pub fn diff_report(
    (label_a, a): (&str, &Recording),
    (label_b, b): (&str, &Recording),
) -> Option<String> {
    let d = a.first_divergence(b)?;
    let mut out = format!(
        "streams agree on the first {} event(s), then diverge:\n",
        d.index
    );
    for (label, side, rec) in [(label_a, d.left, a), (label_b, d.right, b)] {
        out.push_str(&format!("--- {label} ---\n"));
        match side {
            Some(r) => out.push_str(&format!("{}\n", render_record(&r, rec))),
            None => out.push_str("(stream ended)\n"),
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Recorder: ring buffer under `trace`, ZST no-op otherwise.
// ---------------------------------------------------------------------------

#[cfg(feature = "trace")]
mod recorder {
    use super::{kind, Record, Recording, NO_PARENT};
    use std::sync::{Arc, Mutex};

    #[derive(Debug)]
    struct Ring {
        rec: Recording,
        capacity: usize,
        seq: u64,
        /// Causal id of the pop currently being dispatched.
        current: u64,
        /// Event id → causal id of the record that scheduled it.
        sched_parent: Vec<u64>,
    }

    impl Ring {
        fn new(capacity: usize) -> Self {
            Self {
                rec: Recording::default(),
                capacity,
                seq: 0,
                current: NO_PARENT,
                sched_parent: Vec::new(),
            }
        }

        fn record(&mut self, t: u64, parent: u64, kind: u16, a: u64, b: u64) -> u64 {
            let seq = self.seq;
            self.seq += 1;
            if self.rec.records.len() < self.capacity {
                self.rec.records.push(Record {
                    t,
                    seq,
                    parent,
                    kind,
                    a,
                    b,
                });
            } else {
                self.rec.dropped += 1;
            }
            seq
        }

        fn reset(&mut self) {
            self.rec = Recording::default();
            self.seq = 0;
            self.current = NO_PARENT;
            self.sched_parent.clear();
        }
    }

    /// Shared handle to one recording ring. Cloning shares the ring, so
    /// the queue, the flow link and the C/R model all feed one causally
    /// ordered stream. `Arc<Mutex<..>>` rather than `Rc<RefCell<..>>`
    /// because it rides inside `Send` closures (the flow link's capacity
    /// function); the lock is uncontended — one sim thread per ring.
    #[derive(Debug, Clone, Default)]
    pub struct Recorder {
        inner: Option<Arc<Mutex<Ring>>>,
    }

    impl Recorder {
        /// A recorder that drops everything (the default).
        pub fn disabled() -> Self {
            Self { inner: None }
        }

        /// A live recorder retaining the first `capacity` records.
        pub fn enabled(capacity: usize) -> Self {
            Self {
                inner: Some(Arc::new(Mutex::new(Ring::new(capacity)))),
            }
        }

        /// True when records are being retained.
        pub fn is_enabled(&self) -> bool {
            self.inner.is_some()
        }

        fn with(&self, f: impl FnOnce(&mut Ring)) {
            if let Some(m) = &self.inner {
                f(&mut m.lock().expect("simobs ring poisoned"));
            }
        }

        /// An event was popped for dispatch. Its causal parent is the
        /// record that scheduled it; subsequent emissions hang off it.
        pub fn on_pop(&self, t: u64, id: u64) {
            self.with(|g| {
                let parent = g
                    .sched_parent
                    .get(id as usize)
                    .copied()
                    .unwrap_or(NO_PARENT);
                let seq = g.record(t, parent, kind::POP, id, 0);
                g.current = seq;
            });
        }

        /// An event was scheduled (during the current pop, if any).
        pub fn on_sched(&self, t: u64, id: u64) {
            self.with(|g| {
                let parent = g.current;
                let seq = g.record(t, parent, kind::SCHED, id, 0);
                let idx = id as usize;
                if g.sched_parent.len() <= idx {
                    g.sched_parent.resize(idx + 1, NO_PARENT);
                }
                g.sched_parent[idx] = seq;
            });
        }

        /// A pending event was cancelled.
        pub fn on_cancel(&self, t: u64, id: u64) {
            self.with(|g| {
                let parent = g.current;
                g.record(t, parent, kind::CANCEL, id, 0);
            });
        }

        /// A domain event (protocol transition, flow wave, failure, ...)
        /// occurred inside the current pop.
        pub fn emit(&self, t: u64, kind: u16, a: u64, b: u64) {
            self.with(|g| {
                let parent = g.current;
                g.record(t, parent, kind, a, b);
            });
        }

        /// Discards everything recorded so far and re-arms the ring.
        pub fn clear(&self) {
            self.with(Ring::reset);
        }

        /// Takes the recording out, leaving an empty re-armed ring.
        pub fn take(&self) -> Recording {
            let mut out = Recording::default();
            self.with(|g| {
                out = std::mem::take(&mut g.rec);
                g.seq = 0;
                g.current = NO_PARENT;
                g.sched_parent.clear();
            });
            out
        }
    }
}

#[cfg(not(feature = "trace"))]
mod recorder {
    use super::Recording;

    /// Zero-sized no-op recorder (the `trace` feature is disabled).
    /// Every method body is empty and `#[inline(always)]`, so hook call
    /// sites compile to nothing — the campaign hot loop stays exactly as
    /// allocation-free and branch-free as before the hooks existed.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Recorder;

    impl Recorder {
        /// A recorder that drops everything (the only kind, here).
        #[inline(always)]
        pub fn disabled() -> Self {
            Recorder
        }

        /// Without the `trace` feature this still returns a no-op
        /// recorder; callers branch on [`Recorder::is_enabled`].
        #[inline(always)]
        pub fn enabled(_capacity: usize) -> Self {
            Recorder
        }

        /// Always false.
        #[inline(always)]
        pub fn is_enabled(&self) -> bool {
            false
        }

        /// No-op.
        #[inline(always)]
        pub fn on_pop(&self, _t: u64, _id: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn on_sched(&self, _t: u64, _id: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn on_cancel(&self, _t: u64, _id: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn emit(&self, _t: u64, _kind: u16, _a: u64, _b: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn clear(&self) {}

        /// Always empty.
        #[inline(always)]
        pub fn take(&self) -> Recording {
            Recording::default()
        }
    }
}

pub use recorder::Recorder;

// ---------------------------------------------------------------------------
// Always-on per-run metrics.
// ---------------------------------------------------------------------------

/// Power-of-two-bucket histogram with a fixed footprint (no heap).
///
/// Bucket 0 counts zero values; bucket `i ≥ 1` counts values in
/// `[2^(i-1), 2^i)`. 64 buckets cover the full `u64` range, so
/// nanosecond latencies from sub-microsecond to centuries all land
/// without saturating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedHist {
    buckets: [u64; 64],
    sum: u128,
}

impl Default for FixedHist {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            sum: 0,
        }
    }
}

impl FixedHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(63)
        };
        self.buckets[idx] += 1;
        self.sum += v as u128;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all observations (u128: 64-bit values over long campaigns
    /// would overflow a u64 sum).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&mut self, other: &FixedHist) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.sum += other.sum;
    }

    /// Appends the histogram's wire encoding to `out`: a one-byte count
    /// of non-empty buckets, then strictly ascending `(index u8,
    /// count u64 LE)` pairs, then the `u128` LE sum. Sparse because the
    /// shard result frames carry four of these per run and most runs
    /// populate a handful of buckets.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let n = self.buckets.iter().filter(|&&b| b != 0).count() as u8;
        out.push(n);
        for (i, &b) in self.buckets.iter().enumerate() {
            if b != 0 {
                out.push(i as u8);
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.sum.to_le_bytes());
    }

    /// Decodes an [`encode_into`](Self::encode_into) encoding starting at
    /// `bytes[*pos]`, advancing `*pos` past it. Rejects truncated input
    /// and non-canonical bucket lists (out-of-range or non-ascending
    /// indices), so a decoded histogram re-encodes to identical bytes.
    pub fn decode_from(bytes: &[u8], pos: &mut usize) -> Result<Self, String> {
        let mut hist = FixedHist::new();
        hist.decode_into(bytes, pos)?;
        Ok(hist)
    }

    /// [`decode_from`](Self::decode_from) into `self`, overwriting its
    /// previous contents — lets a hot decode loop reuse one histogram
    /// instead of moving a fresh one out per call. On error the
    /// contents are unspecified.
    pub fn decode_into(&mut self, bytes: &[u8], pos: &mut usize) -> Result<(), String> {
        let take = |pos: &mut usize, n: usize| -> Result<usize, String> {
            let at = *pos;
            if bytes.len() - at.min(bytes.len()) < n {
                return Err(format!("histogram truncated at byte {at}"));
            }
            *pos = at + n;
            Ok(at)
        };
        self.buckets = [0; 64];
        let at = take(pos, 1)?;
        let n = bytes[at] as usize;
        let mut prev: Option<usize> = None;
        for _ in 0..n {
            let at = take(pos, 1)?;
            let idx = bytes[at] as usize;
            if idx >= 64 || prev.is_some_and(|p| idx <= p) {
                return Err(format!("non-canonical histogram bucket index {idx}"));
            }
            prev = Some(idx);
            let at = take(pos, 8)?;
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&bytes[at..at + 8]);
            let count = u64::from_le_bytes(raw);
            if count == 0 {
                return Err(format!("empty bucket {idx} in sparse histogram"));
            }
            self.buckets[idx] = count;
        }
        let at = take(pos, 16)?;
        let mut raw = [0u8; 16];
        raw.copy_from_slice(&bytes[at..at + 16]);
        self.sum = u128::from_le_bytes(raw);
        Ok(())
    }

    /// Appends `{"count":..,"mean":..,"buckets":[[i,n],..]}` (sparse:
    /// only non-empty buckets) to `out`.
    fn json_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\":{},\"mean\":{:.1},\"buckets\":[",
            self.count(),
            self.mean()
        ));
        let mut first = true;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("[{i},{n}]"));
        }
        out.push_str("]}");
    }
}

/// Fixed-size per-run observability snapshot. Lives inside `RunResult`;
/// contains no heap storage, so producing one in the campaign steady
/// state allocates nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunObs {
    /// Events dispatched by the engine during the run.
    pub events_handled: u64,
    /// Events scheduled during the run (≥ handled: cancels).
    pub events_scheduled: u64,
    /// High-water mark of pending events in the queue.
    pub queue_depth_hwm: u64,
    /// Burst-buffer checkpoint commit latency, nanoseconds.
    pub lat_bb: FixedHist,
    /// p-ckpt phase-1 (single vulnerable node → PFS) latency, ns.
    pub lat_phase1: FixedHist,
    /// Full-PFS commit latency (safeguards and phase-2 rounds), ns.
    pub lat_pfs_full: FixedHist,
    /// Recomputation per recovery, nanoseconds of lost work.
    pub recomp: FixedHist,
}

impl RunObs {
    /// Zeroes every counter and histogram in place (arena reuse).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Appends the snapshot's wire encoding to `out`: the three counters
    /// as `u64` LE, then the four histograms via
    /// [`FixedHist::encode_into`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.events_handled.to_le_bytes());
        out.extend_from_slice(&self.events_scheduled.to_le_bytes());
        out.extend_from_slice(&self.queue_depth_hwm.to_le_bytes());
        self.lat_bb.encode_into(out);
        self.lat_phase1.encode_into(out);
        self.lat_pfs_full.encode_into(out);
        self.recomp.encode_into(out);
    }

    /// Decodes an [`encode_into`](Self::encode_into) encoding starting at
    /// `bytes[*pos]`, advancing `*pos` past it. Errors on truncation.
    pub fn decode_from(bytes: &[u8], pos: &mut usize) -> Result<Self, String> {
        let word = |pos: &mut usize| -> Result<u64, String> {
            let at = *pos;
            if bytes.len() - at.min(bytes.len()) < 8 {
                return Err(format!("run snapshot truncated at byte {at}"));
            }
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&bytes[at..at + 8]);
            *pos = at + 8;
            Ok(u64::from_le_bytes(raw))
        };
        Ok(RunObs {
            events_handled: word(pos)?,
            events_scheduled: word(pos)?,
            queue_depth_hwm: word(pos)?,
            lat_bb: FixedHist::decode_from(bytes, pos)?,
            lat_phase1: FixedHist::decode_from(bytes, pos)?,
            lat_pfs_full: FixedHist::decode_from(bytes, pos)?,
            recomp: FixedHist::decode_from(bytes, pos)?,
        })
    }

    /// [`decode_from`](Self::decode_from) into `self`, overwriting its
    /// previous contents (reusable-buffer form; see
    /// [`FixedHist::decode_into`]). On error the contents are
    /// unspecified.
    pub fn decode_into(&mut self, bytes: &[u8], pos: &mut usize) -> Result<(), String> {
        let word = |pos: &mut usize| -> Result<u64, String> {
            let at = *pos;
            if bytes.len() - at.min(bytes.len()) < 8 {
                return Err(format!("run snapshot truncated at byte {at}"));
            }
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&bytes[at..at + 8]);
            *pos = at + 8;
            Ok(u64::from_le_bytes(raw))
        };
        self.events_handled = word(pos)?;
        self.events_scheduled = word(pos)?;
        self.queue_depth_hwm = word(pos)?;
        self.lat_bb.decode_into(bytes, pos)?;
        self.lat_phase1.decode_into(bytes, pos)?;
        self.lat_pfs_full.decode_into(bytes, pos)?;
        self.recomp.decode_into(bytes, pos)
    }
}

/// Campaign-level reduction of [`RunObs`] values: counters sum,
/// histograms merge, the queue high-water mark takes the max.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsAggregate {
    /// Runs folded in.
    pub runs: u64,
    /// Total events dispatched across runs.
    pub events_handled: u64,
    /// Total events scheduled across runs.
    pub events_scheduled: u64,
    /// Max queue depth observed in any run.
    pub queue_depth_hwm: u64,
    /// Merged burst-buffer commit latencies, ns.
    pub lat_bb: FixedHist,
    /// Merged phase-1 commit latencies, ns.
    pub lat_phase1: FixedHist,
    /// Merged full-PFS commit latencies, ns.
    pub lat_pfs_full: FixedHist,
    /// Merged recomputation amounts, ns.
    pub recomp: FixedHist,
}

impl ObsAggregate {
    /// Folds one run's snapshot in.
    pub fn push(&mut self, o: &RunObs) {
        self.runs += 1;
        self.events_handled += o.events_handled;
        self.events_scheduled += o.events_scheduled;
        self.queue_depth_hwm = self.queue_depth_hwm.max(o.queue_depth_hwm);
        self.lat_bb.merge(&o.lat_bb);
        self.lat_phase1.merge(&o.lat_phase1);
        self.lat_pfs_full.merge(&o.lat_pfs_full);
        self.recomp.merge(&o.recomp);
    }

    /// Merges another aggregate (parallel reduction).
    pub fn merge(&mut self, other: &ObsAggregate) {
        self.runs += other.runs;
        self.events_handled += other.events_handled;
        self.events_scheduled += other.events_scheduled;
        self.queue_depth_hwm = self.queue_depth_hwm.max(other.queue_depth_hwm);
        self.lat_bb.merge(&other.lat_bb);
        self.lat_phase1.merge(&other.lat_phase1);
        self.lat_pfs_full.merge(&other.lat_pfs_full);
        self.recomp.merge(&other.recomp);
    }

    /// Merges any number of aggregates into one (the grid-wide rollup a
    /// campaign sweep reports alongside its per-cell aggregates).
    pub fn merge_all<'a, I>(parts: I) -> ObsAggregate
    where
        I: IntoIterator<Item = &'a ObsAggregate>,
    {
        let mut out = ObsAggregate::default();
        for part in parts {
            out.merge(part);
        }
        out
    }

    /// Mean events dispatched per run.
    pub fn events_per_run(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.events_handled as f64 / self.runs as f64
        }
    }

    /// One-line JSON document (the payload of the `METRICS_JSON` lines
    /// the experiment bins print; `scripts/bench.sh` folds these into
    /// its snapshot). Histogram values are nanoseconds; buckets are
    /// `[log2-index, count]` pairs with bucket `i` covering
    /// `[2^(i-1), 2^i)` ns.
    pub fn to_json(&self, name: &str) -> String {
        let mut s = format!(
            "{{\"name\":\"{name}\",\"runs\":{},\"events_handled\":{},\
             \"events_scheduled\":{},\"events_per_run\":{:.1},\
             \"queue_depth_hwm\":{}",
            self.runs,
            self.events_handled,
            self.events_scheduled,
            self.events_per_run(),
            self.queue_depth_hwm,
        );
        for (key, hist) in [
            ("lat_bb_ns", &self.lat_bb),
            ("lat_phase1_ns", &self.lat_phase1),
            ("lat_pfs_full_ns", &self.lat_pfs_full),
            ("recomp_ns", &self.recomp),
        ] {
            s.push_str(&format!(",\"{key}\":"));
            hist.json_into(&mut s);
        }
        s.push('}');
        s
    }
}

/// One cell's run-allocation observability record: how many Monte-Carlo
/// runs the sweep actually spent on the cell and the relative CI
/// half-width it attained on the primary metric. Fixed-run sweeps report
/// a uniform count; adaptive sweeps (`PCKPT_RUNS=auto`) report the
/// per-cell counts the stopping rule settled on.
#[derive(Debug, Clone, PartialEq)]
pub struct CellAllocation {
    /// Cell display label.
    pub label: String,
    /// Runs executed for this cell (0 when answered analytically).
    pub runs: usize,
    /// Attained relative CI half-width of the cell's primary metric
    /// under the estimator the sweep used (0 when not statable).
    pub ci_rel: f64,
}

/// Renders per-cell run allocations as a one-line `METRICS_JSON`-style
/// document: total/min/max run counts, the worst attained relative CI,
/// and the per-cell `[label, runs, ci_rel]` rows.
pub fn allocation_json(name: &str, cells: &[CellAllocation]) -> String {
    let total: usize = cells.iter().map(|c| c.runs).sum();
    let executed: Vec<&CellAllocation> = cells.iter().filter(|c| c.runs > 0).collect();
    let min = executed.iter().map(|c| c.runs).min().unwrap_or(0);
    let max = executed.iter().map(|c| c.runs).max().unwrap_or(0);
    let worst = cells.iter().map(|c| c.ci_rel).fold(0.0, f64::max);
    let mut s = format!(
        "{{\"name\":\"{name}\",\"total_runs\":{total},\"runs_min\":{min},\
         \"runs_max\":{max},\"worst_ci_rel\":{worst:.6},\"cells\":["
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "[\"{}\",{},{:.6}]",
            c.label, c.runs, c.ci_rel
        ));
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_json_reports_totals_and_rows() {
        let cells = [
            CellAllocation {
                label: "POP@1.5".into(),
                runs: 64,
                ci_rel: 0.008,
            },
            CellAllocation {
                label: "POP@0.5".into(),
                runs: 256,
                ci_rel: 0.010,
            },
            CellAllocation {
                label: "pruned".into(),
                runs: 0,
                ci_rel: 0.0,
            },
        ];
        let j = allocation_json("adaptive_pop", &cells);
        assert!(j.contains("\"total_runs\":320"), "{j}");
        assert!(j.contains("\"runs_min\":64"), "{j}");
        assert!(j.contains("\"runs_max\":256"), "{j}");
        assert!(j.contains("\"worst_ci_rel\":0.010000"), "{j}");
        assert!(j.contains("[\"POP@0.5\",256,0.010000]"), "{j}");
    }

    #[test]
    fn hist_bucket_edges() {
        let mut h = FixedHist::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1: [1, 2)
        h.record(2); // bucket 2: [2, 4)
        h.record(3); // bucket 2
        h.record(4); // bucket 3: [4, 8)
        h.record(u64::MAX); // clamped into bucket 63
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.buckets()[63], 1);
        assert_eq!(h.count(), 6);
        assert_eq!(FixedHist::bucket_lo(0), 0);
        assert_eq!(FixedHist::bucket_lo(1), 1);
        assert_eq!(FixedHist::bucket_lo(3), 4);
    }

    #[test]
    fn hist_mean_and_merge() {
        let mut a = FixedHist::new();
        a.record(10);
        a.record(30);
        assert_eq!(a.mean(), 20.0);
        let mut b = FixedHist::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 140);
        assert_eq!(FixedHist::new().mean(), 0.0);
    }

    #[test]
    fn obs_aggregate_folds_counters_and_hwm() {
        let mut run = RunObs::default();
        run.events_handled = 10;
        run.events_scheduled = 12;
        run.queue_depth_hwm = 4;
        run.lat_bb.record(1_000);
        let mut agg = ObsAggregate::default();
        agg.push(&run);
        run.queue_depth_hwm = 2;
        agg.push(&run);
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.events_handled, 20);
        assert_eq!(agg.queue_depth_hwm, 4);
        assert_eq!(agg.lat_bb.count(), 2);

        let mut other = ObsAggregate::default();
        run.queue_depth_hwm = 9;
        other.push(&run);
        agg.merge(&other);
        assert_eq!(agg.runs, 3);
        assert_eq!(agg.queue_depth_hwm, 9);
    }

    #[test]
    fn obs_reset_zeroes_everything() {
        let mut run = RunObs::default();
        run.events_handled = 7;
        run.recomp.record(55);
        run.reset();
        assert_eq!(run, RunObs::default());
    }

    #[test]
    fn aggregate_json_is_single_line_and_sparse() {
        let mut run = RunObs::default();
        run.events_handled = 3;
        run.lat_phase1.record(1_500);
        let mut agg = ObsAggregate::default();
        agg.push(&run);
        let j = agg.to_json("unit");
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"name\":\"unit\""));
        assert!(j.contains("\"events_handled\":3"));
        // 1500 ns lands in bucket 11 ([1024, 2048)).
        assert!(j.contains("\"lat_phase1_ns\":{\"count\":1,\"mean\":1500.0,\"buckets\":[[11,1]]}"));
        // Empty histograms serialize as empty bucket lists.
        assert!(j.contains("\"recomp_ns\":{\"count\":0,\"mean\":0.0,\"buckets\":[]}"));
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.on_pop(5, 1);
        r.on_sched(5, 2);
        r.emit(6, kind::BB_CKPT, 0, 0);
        assert!(r.take().is_empty());
    }

    #[test]
    fn digest_distinguishes_recordings() {
        let mk = |t: u64| Recording {
            records: vec![Record {
                t,
                seq: 0,
                parent: NO_PARENT,
                kind: kind::POP,
                a: 1,
                b: 0,
            }],
            dropped: 0,
        };
        assert_eq!(mk(5).digest(), mk(5).digest());
        assert_ne!(mk(5).digest(), mk(6).digest());
        assert_ne!(Recording::default().digest(), mk(5).digest());
    }

    #[test]
    fn first_divergence_finds_field_and_length_differences() {
        let base = |kinds: &[u16]| Recording {
            records: kinds
                .iter()
                .enumerate()
                .map(|(i, &k)| Record {
                    t: i as u64 * 10,
                    seq: i as u64,
                    parent: NO_PARENT,
                    kind: k,
                    a: 0,
                    b: 0,
                })
                .collect(),
            dropped: 0,
        };
        let a = base(&[kind::POP, kind::BB_CKPT, kind::COMPLETE]);
        assert!(a.first_divergence(&a.clone()).is_none());

        let b = base(&[kind::POP, kind::FAILURE, kind::COMPLETE]);
        let d = a.first_divergence(&b).expect("differs");
        assert_eq!(d.index, 1);
        assert_eq!(d.left.unwrap().kind, kind::BB_CKPT);
        assert_eq!(d.right.unwrap().kind, kind::FAILURE);

        let short = base(&[kind::POP]);
        let d = a.first_divergence(&short).expect("length differs");
        assert_eq!(d.index, 1);
        assert!(d.right.is_none());

        let report = diff_report(("a", &a), ("b", &b)).expect("report");
        assert!(report.contains("agree on the first 1 event(s)"));
        assert!(report.contains("bb_ckpt"));
        assert!(report.contains("failure"));
    }

    #[test]
    fn chrome_trace_shape() {
        let rec = Recording {
            records: vec![Record {
                t: 1_500,
                seq: 0,
                parent: NO_PARENT,
                kind: kind::ROUND_START,
                a: 0,
                b: 0,
            }],
            dropped: 0,
        };
        let j = rec.to_chrome_trace("demo");
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"name\":\"round_start\""));
        assert!(j.contains("\"ts\":1.500"));
        assert!(j.contains("\"parent\":-1"));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn live_recorder_tracks_causal_parents() {
        let r = Recorder::enabled(1024);
        assert!(r.is_enabled());
        // Pre-loop schedule: causal root.
        r.on_sched(0, 0);
        // Pop it; its parent must be the sched record (seq 0).
        r.on_pop(10, 0);
        // Work inside the pop: a domain event and a new schedule.
        r.emit(10, kind::BB_CKPT, 0, 0);
        r.on_sched(10, 1);
        // Pop the second event: parent = the sched at seq 3.
        r.on_pop(25, 1);
        let rec = r.take();
        assert_eq!(rec.len(), 5);
        let p: Vec<u64> = rec.records.iter().map(|x| x.parent).collect();
        assert_eq!(p, vec![NO_PARENT, 0, 1, 1, 3]);
        assert_eq!(rec.records[4].t, 25);
        // take() re-arms.
        r.on_sched(0, 0);
        assert_eq!(r.take().len(), 1);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn ring_keeps_first_and_counts_drops() {
        let r = Recorder::enabled(2);
        r.on_sched(0, 0);
        r.on_sched(1, 1);
        r.on_sched(2, 2);
        r.on_pop(3, 0);
        let rec = r.take();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped, 2);
        assert_eq!(rec.records[0].t, 0);
        assert_eq!(rec.records[1].t, 1);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn clear_discards_without_disabling() {
        let r = Recorder::enabled(16);
        r.on_sched(0, 0);
        r.clear();
        assert!(r.is_enabled());
        assert!(r.take().is_empty());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(kind::name(kind::POP), "pop");
        assert_eq!(kind::name(kind::PHASE1_COMMIT), "phase1_commit");
        assert_eq!(kind::name(999), "unknown");
    }

    #[test]
    fn hist_wire_roundtrip_is_identity() {
        let mut h = FixedHist::new();
        for v in [0u64, 1, 7, 1 << 20, u64::MAX, 1 << 20] {
            h.record(v);
        }
        let mut bytes = Vec::new();
        h.encode_into(&mut bytes);
        let mut pos = 0;
        let back = FixedHist::decode_from(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        assert_eq!(back, h);
        // Canonical: a decode re-encodes to identical bytes.
        let mut again = Vec::new();
        back.encode_into(&mut again);
        assert_eq!(again, bytes);
    }

    #[test]
    fn hist_wire_rejects_every_truncation() {
        let mut h = FixedHist::new();
        h.record(3);
        h.record(1 << 33);
        let mut bytes = Vec::new();
        h.encode_into(&mut bytes);
        for cut in 0..bytes.len() {
            let mut pos = 0;
            assert!(
                FixedHist::decode_from(&bytes[..cut], &mut pos).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn run_obs_wire_roundtrip_is_identity() {
        let mut o = RunObs {
            events_handled: 12,
            events_scheduled: 15,
            queue_depth_hwm: 4,
            ..RunObs::default()
        };
        o.lat_bb.record(9_000_000);
        o.recomp.record(123);
        o.recomp.record(1 << 40);
        let mut bytes = Vec::new();
        o.encode_into(&mut bytes);
        let mut pos = 0;
        let back = RunObs::decode_from(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        assert_eq!(back, o);
        for cut in 0..bytes.len() {
            let mut pos = 0;
            assert!(RunObs::decode_from(&bytes[..cut], &mut pos).is_err());
        }
    }
}

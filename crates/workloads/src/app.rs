//! The Table-I application catalog.

use crate::GB;

/// One application's simulation-relevant characteristics (a row of
/// Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Application {
    /// Application name.
    pub name: &'static str,
    /// Nodes the job runs on (`c`).
    pub nodes: u64,
    /// Total checkpoint size across the job on Summit, bytes.
    pub checkpoint_total: f64,
    /// Failure-free computation time, hours.
    pub compute_hours: f64,
}

impl Application {
    /// Creates an application description.
    pub fn new(
        name: &'static str,
        nodes: u64,
        checkpoint_total_gb: f64,
        compute_hours: f64,
    ) -> Self {
        assert!(nodes > 0 && checkpoint_total_gb >= 0.0 && compute_hours > 0.0);
        Self {
            name,
            nodes,
            checkpoint_total: checkpoint_total_gb * GB,
            compute_hours,
        }
    }

    /// Checkpoint bytes each node writes.
    pub fn checkpoint_per_node(&self) -> f64 {
        self.checkpoint_total / self.nodes as f64
    }

    /// Checkpoint per node in gigabytes.
    pub fn checkpoint_per_node_gb(&self) -> f64 {
        self.checkpoint_per_node() / GB
    }

    /// Looks an application up in [`TABLE_I`] by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<Application> {
        TABLE_I
            .iter()
            .find(|a| a.name.eq_ignore_ascii_case(name))
            .copied()
    }
}

impl std::str::FromStr for Application {
    type Err = String;

    /// Case-insensitive lookup in [`TABLE_I`], with the known names in
    /// the error so CLI typos are self-explanatory.
    fn from_str(name: &str) -> Result<Self, Self::Err> {
        Application::by_name(name).ok_or_else(|| {
            format!(
                "unknown application {name:?}; known: {}",
                TABLE_I.map(|a| a.name).join(", ")
            )
        })
    }
}

/// Table I of the paper: the six evaluated applications, checkpoint sizes
/// already Summit-scaled per Eq. (3).
pub const TABLE_I: [Application; 6] = [
    Application {
        name: "CHIMERA",
        nodes: 2272,
        checkpoint_total: 646_382.0 * 1e9,
        compute_hours: 360.0,
    },
    Application {
        name: "XGC",
        nodes: 1515,
        checkpoint_total: 149_625.0 * 1e9,
        compute_hours: 240.0,
    },
    Application {
        name: "S3D",
        nodes: 505,
        checkpoint_total: 20_199.0 * 1e9,
        compute_hours: 240.0,
    },
    Application {
        name: "GYRO",
        nodes: 126,
        checkpoint_total: 197.2 * 1e9,
        compute_hours: 120.0,
    },
    Application {
        name: "POP",
        nodes: 126,
        checkpoint_total: 102.5 * 1e9,
        compute_hours: 480.0,
    },
    Application {
        name: "VULCAN",
        nodes: 64,
        checkpoint_total: 3.27 * 1e9,
        compute_hours: 720.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper() {
        assert_eq!(TABLE_I.len(), 6);
        let chimera = Application::by_name("chimera").unwrap();
        assert_eq!(chimera.nodes, 2272);
        assert_eq!(chimera.compute_hours, 360.0);
        // 646,382 GB over 2272 nodes ≈ 284.5 GB/node.
        assert!((chimera.checkpoint_per_node_gb() - 284.5).abs() < 0.1);
        let vulcan = Application::by_name("VULCAN").unwrap();
        assert_eq!(vulcan.nodes, 64);
        assert!((vulcan.checkpoint_per_node_gb() - 0.0511).abs() < 0.001);
        assert!(Application::by_name("NOPE").is_none());
    }

    #[test]
    fn per_node_checkpoints_fit_summit_dram_and_bb() {
        // Sec. II assumption: "the checkpoint size per node never exceeds
        // the DRAM or BB size".
        for app in &TABLE_I {
            assert!(
                app.checkpoint_per_node() <= 512.0 * GB,
                "{} exceeds DRAM",
                app.name
            );
            assert!(
                app.checkpoint_per_node() <= 1600.0 * GB,
                "{} exceeds the burst buffer",
                app.name
            );
        }
    }

    #[test]
    fn apps_ordered_largest_first() {
        // The paper's figures order by size; the table preserves that.
        for w in TABLE_I.windows(2) {
            assert!(w[0].checkpoint_total >= w[1].checkpoint_total);
        }
    }

    #[test]
    fn sizes_are_consistent_with_eq3_titan_origin() {
        // Sanity: reversing Eq. (3) puts the Titan-era per-node sizes
        // below Titan's 32 GB DRAM.
        for app in &TABLE_I {
            let titan_per_node = app.checkpoint_per_node() / 16.0;
            assert!(
                titan_per_node <= 32.0 * GB,
                "{}: implied Titan per-node size too large",
                app.name
            );
        }
    }
}

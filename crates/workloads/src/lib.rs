//! `pckpt-workloads` — HPC application characteristics and platform models.
//!
//! Table I of the paper lists the six real-world applications the
//! evaluation simulates, with checkpoint sizes already rescaled from their
//! original OLCF-Titan characterization to Summit via Eq. (3)
//! (DRAM-proportional scaling). This crate carries that table, the scaling
//! rule itself, and the platform parameter sets (node counts, DRAM sizes)
//! the rule needs.

#![warn(missing_docs)]

pub mod app;
pub mod platform;

pub use app::{Application, TABLE_I};
pub use platform::Platform;

/// One gigabyte in bytes (decimal, consistently with `pckpt-ioperf`).
pub const GB: f64 = 1e9;

/// Rescales a checkpoint size between platforms (Eq. 3):
/// `new = old · (nodes_new · dram_new) / (nodes_old · dram_old)`.
///
/// The rationale: these applications size their state to the memory
/// available to them, so moving a job to a machine with more DRAM per node
/// (Titan 32 GB → Summit 512 GB) grows its checkpoint proportionally.
pub fn scale_checkpoint_size(
    old_size: f64,
    old_nodes: u64,
    old_dram_per_node: f64,
    new_nodes: u64,
    new_dram_per_node: f64,
) -> f64 {
    assert!(old_size >= 0.0 && old_nodes > 0 && new_nodes > 0);
    assert!(old_dram_per_node > 0.0 && new_dram_per_node > 0.0);
    old_size * (new_nodes as f64 * new_dram_per_node) / (old_nodes as f64 * old_dram_per_node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq3_identity_and_proportionality() {
        // Same platform → unchanged.
        assert_eq!(scale_checkpoint_size(100.0, 10, 32.0, 10, 32.0), 100.0);
        // Doubling DRAM doubles the checkpoint.
        assert_eq!(scale_checkpoint_size(100.0, 10, 32.0, 10, 64.0), 200.0);
        // Titan→Summit at equal node count: ×16 (32 GB → 512 GB).
        assert_eq!(scale_checkpoint_size(1.0, 5, 32.0, 5, 512.0), 16.0);
    }
}

//! Platform parameter sets.

/// A machine the workloads run on (or were characterized on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Platform {
    /// Machine name.
    pub name: &'static str,
    /// Total compute nodes.
    pub nodes: u64,
    /// DRAM per node, bytes.
    pub dram_per_node: f64,
}

impl Platform {
    /// OLCF Summit: 4608 nodes, 512 GB DRAM per node (the paper's
    /// evaluation platform).
    pub const SUMMIT: Self = Self {
        name: "Summit",
        nodes: 4608,
        dram_per_node: 512.0e9,
    };

    /// OLCF Titan: 18688 nodes, 32 GB DRAM per node (where the workload
    /// characterizations in prior work were taken).
    pub const TITAN: Self = Self {
        name: "Titan",
        nodes: 18688,
        dram_per_node: 32.0e9,
    };

    /// DRAM per node in gigabytes.
    pub fn dram_gb(&self) -> f64 {
        self.dram_per_node / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Platform::SUMMIT.nodes, 4608);
        assert_eq!(Platform::SUMMIT.dram_gb(), 512.0);
        assert_eq!(Platform::TITAN.dram_gb(), 32.0);
        // The Eq.-3 DRAM ratio between the two characterization platforms.
        let ratio = Platform::SUMMIT.dram_per_node / Platform::TITAN.dram_per_node;
        assert_eq!(ratio, 16.0);
    }
}

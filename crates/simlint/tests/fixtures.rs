//! Acceptance tests for the simlint binary: each fixture tree under
//! `fixtures/violations/<rule>/` seeds exactly one violation of that
//! rule, and the binary must exit non-zero on it while reporting the
//! right rule name. The real workspace must lint clean.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root(rule: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("violations")
        .join(rule)
}

fn run_on(root: &Path) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--root")
        .arg(root)
        .output()
        .expect("spawn simlint");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.success(), stdout)
}

fn assert_fixture_trips(rule: &str) {
    let (clean, stdout) = run_on(&fixture_root(rule));
    assert!(!clean, "fixture for {rule} should fail the lint; got:\n{stdout}");
    assert!(
        stdout.contains(&format!("[{rule}]")),
        "fixture for {rule} should report that rule; got:\n{stdout}"
    );
    // Exactly the seeded violation, nothing else.
    let findings: Vec<&str> = stdout.lines().filter(|l| l.contains(": [")).collect();
    assert_eq!(
        findings.len(),
        1,
        "fixture for {rule} should produce exactly one finding; got:\n{stdout}"
    );
}

#[test]
fn fixture_no_randomized_maps() {
    assert_fixture_trips("no-randomized-maps");
}

#[test]
fn fixture_no_wall_clock() {
    assert_fixture_trips("no-wall-clock");
}

#[test]
fn fixture_no_float_eq() {
    assert_fixture_trips("no-float-eq");
}

#[test]
fn fixture_no_lossy_time_cast() {
    assert_fixture_trips("no-lossy-time-cast");
}

#[test]
fn fixture_no_unwrap_in_lib() {
    assert_fixture_trips("no-unwrap-in-lib");
}

#[test]
fn fixture_no_alloc_in_hot_loop() {
    assert_fixture_trips("no-alloc-in-hot-loop");
}

#[test]
fn fixture_transitive_hot_alloc() {
    // Two hops deep and across files: the rule is still
    // no-alloc-in-hot-loop, exercised through the call graph.
    let (clean, stdout) = run_on(&fixture_root("transitive-hot-alloc"));
    assert!(!clean, "transitive fixture should fail the lint; got:\n{stdout}");
    let findings: Vec<&str> = stdout.lines().filter(|l| l.contains(": [")).collect();
    assert_eq!(findings.len(), 1, "exactly the seeded violation:\n{stdout}");
    assert!(findings[0].contains("[no-alloc-in-hot-loop]"), "{stdout}");
    assert!(
        findings[0].contains("helpers.rs:7"),
        "finding points at the allocation, not the hot fn:\n{stdout}"
    );
    assert!(
        findings[0].contains("hot_entry -> stage_one -> stage_two"),
        "finding carries the call chain:\n{stdout}"
    );
}

#[test]
fn fixture_determinism_taint() {
    let (clean, stdout) = run_on(&fixture_root("determinism-taint"));
    assert!(!clean, "taint fixture should fail the lint; got:\n{stdout}");
    let findings: Vec<&str> = stdout.lines().filter(|l| l.contains(": [")).collect();
    assert_eq!(findings.len(), 1, "exactly the seeded violation:\n{stdout}");
    assert!(findings[0].contains("[determinism-taint]"), "{stdout}");
    assert!(
        findings[0].contains("campaign_digest -> read_tuning_knob"),
        "finding carries the sink-to-source path:\n{stdout}"
    );
}

#[test]
fn fixture_unsafe_audit() {
    assert_fixture_trips("unsafe-audit");
}

#[test]
fn workspace_is_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = simlint::find_workspace_root(here).expect("workspace root");
    let (clean, stdout) = run_on(&root);
    assert!(clean, "workspace should lint clean; findings:\n{stdout}");
}

#[test]
fn json_report_on_fixture_and_clean_tree() {
    // Findings present: --json still writes the full report to stdout
    // and exits non-zero, so CI can archive the artifact either way.
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--root"])
        .arg(fixture_root("unsafe-audit"))
        .arg("--json")
        .output()
        .expect("spawn simlint --json");
    assert!(!out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.starts_with("{\"files\":"), "json on stdout: {json}");
    assert!(json.contains("\"count\":1"), "{json}");
    assert!(json.contains("\"rule\":\"unsafe-audit\""), "{json}");

    // Clean tree: zero findings, empty array, exit 0.
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = simlint::find_workspace_root(here).expect("workspace root");
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--root"])
        .arg(&root)
        .arg("--json")
        .output()
        .expect("spawn simlint --json");
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"count\":0,\"findings\":[]"), "{json}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--bogus")
        .output()
        .expect("spawn simlint");
    assert_eq!(out.status.code(), Some(2));
}

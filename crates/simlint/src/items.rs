//! A lightweight item parser on top of the lexer.
//!
//! The workspace rule families (`no-alloc-in-hot-loop` transitive mode,
//! `determinism-taint`, `unsafe-audit`) need more structure than a flat
//! token stream: which function a token belongs to, what each function
//! calls, where `unsafe` spans sit. This module extracts exactly that —
//! no AST, no type checking, just brace-matched item spans:
//!
//! * `fn` items with their name, enclosing `impl` type (for
//!   `Type::method` call resolution), body token range, and the
//!   `// simlint: hot` / `// simlint: config` markers attached to them;
//! * call sites inside fn bodies, classified as method calls (`x.f()`),
//!   path calls (`Type::f()` / `module::f()`), or free calls (`f()`);
//! * heap-constructor sites (`Vec::new`, `Box::new`, `::with_capacity`)
//!   and determinism-taint sources (`env::var`, wall-clock types,
//!   randomized maps, thread ids, `{:p}` pointer formatting);
//! * `unsafe` blocks and `unsafe impl`s, and `struct`s holding an
//!   `UnsafeCell` field (which must declare a named invariant);
//! * digest/fold/result-construction *sinks* for the taint pass.
//!
//! Parsing is total and intentionally forgiving: unknown constructs are
//! skipped, never fatal — the right failure mode for a linter running on
//! half-written files.

use crate::lexer::{Lexed, Token, TokenKind};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The enclosing `impl` block's type, if any (`CrSim` for
    /// `impl CrSim { fn result… }` and `impl Model for CrSim { … }`).
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub decl_idx: usize,
    /// Token index range `(open, close)` of the body braces; `None` for
    /// bodyless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// Inside `#[cfg(test)]` / `#[test]`-gated code.
    pub is_test: bool,
    /// Carries a `// simlint: hot` marker.
    pub hot: bool,
    /// Carries a `// simlint: config` marker (sanctioned config-parse
    /// entry point; taint barrier).
    pub config_entry: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `receiver.name(…)`.
    Method,
    /// `Qualifier::name(…)` — the qualifier is the path segment directly
    /// before the final `::` (`Vec` in `std::vec::Vec::new`).
    Path(String),
    /// `name(…)`.
    Free,
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index into [`FileItems::fns`] of the containing function.
    pub caller: usize,
    /// Callee name (final path segment).
    pub name: String,
    /// Call classification.
    pub kind: CallKind,
    /// 1-based line.
    pub line: u32,
}

/// A heap-constructor site (the `no-alloc-in-hot-loop` patterns).
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// Index into [`FileItems::fns`] of the containing function.
    pub caller: usize,
    /// What allocated (`Vec::new`, `Box::new`, `::with_capacity`).
    pub what: &'static str,
    /// 1-based line.
    pub line: u32,
}

/// A determinism-taint source kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintKind {
    /// `std::env::var` / `var_os` — process environment.
    EnvVar,
    /// `Instant` / `SystemTime` — wall clock.
    WallClock,
    /// `HashMap` / `HashSet` — randomized iteration order.
    RandomizedMap,
    /// `ThreadId` / `thread::current` — scheduler-dependent identity.
    ThreadId,
    /// `{:p}` pointer formatting — allocator-dependent addresses.
    PtrFormat,
}

impl TaintKind {
    /// Human name for findings.
    pub fn describe(self) -> &'static str {
        match self {
            TaintKind::EnvVar => "std::env::var (process environment)",
            TaintKind::WallClock => "wall clock (Instant/SystemTime)",
            TaintKind::RandomizedMap => "randomized map iteration (HashMap/HashSet)",
            TaintKind::ThreadId => "thread identity (ThreadId/thread::current)",
            TaintKind::PtrFormat => "pointer formatting ({:p})",
        }
    }
}

/// One taint-source occurrence inside a fn body.
#[derive(Debug, Clone)]
pub struct TaintSource {
    /// Index into [`FileItems::fns`] of the containing function.
    pub caller: usize,
    /// What kind of nondeterminism enters here.
    pub kind: TaintKind,
    /// 1-based line.
    pub line: u32,
}

/// What an `unsafe` keyword introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }` block.
    Block,
    /// `unsafe impl … {}`.
    Impl,
}

impl UnsafeKind {
    /// Human name for findings.
    pub fn describe(self) -> &'static str {
        match self {
            UnsafeKind::Block => "unsafe block",
            UnsafeKind::Impl => "unsafe impl",
        }
    }
}

/// One `unsafe` block or impl.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Block or impl.
    pub kind: UnsafeKind,
}

/// A `struct` holding an `UnsafeCell` field (must declare an invariant
/// via `// simlint: invariant(name)`).
#[derive(Debug, Clone)]
pub struct CellStruct {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace.
    pub end_line: u32,
}

/// Why a fn counts as a determinism sink.
#[derive(Debug, Clone)]
pub struct SinkInfo {
    /// Index into [`FileItems::fns`].
    pub fn_idx: usize,
    /// Short reason ("digest fn", "constructs RunResult", …).
    pub reason: String,
}

/// Everything the workspace passes need from one file, parsed once.
#[derive(Debug, Default)]
pub struct FileItems {
    /// All fn items, in source order.
    pub fns: Vec<FnItem>,
    /// All call sites, grouped implicitly by `caller`.
    pub calls: Vec<CallSite>,
    /// Heap-constructor sites.
    pub allocs: Vec<AllocSite>,
    /// Determinism-taint sources.
    pub taints: Vec<TaintSource>,
    /// Digest/fold/result-construction sinks.
    pub sinks: Vec<SinkInfo>,
    /// `unsafe` blocks and impls.
    pub unsafes: Vec<UnsafeSite>,
    /// Structs with `UnsafeCell` fields.
    pub cell_structs: Vec<CellStruct>,
    /// Per-token `#[cfg(test)]` / `#[test]` mask (shared with the
    /// per-file rules so the tree is only brace-matched once).
    pub test_mask: Vec<bool>,
}

/// Result/aggregate types whose construction marks a fn as a
/// determinism sink: nondeterminism reaching these is nondeterminism in
/// the campaign's reported numbers.
pub const RESULT_TYPES: [&str; 4] = ["RunResult", "Aggregate", "CampaignResult", "GridResult"];

/// Keywords that look like calls when followed by `(`.
const CALLISH_KEYWORDS: [&str; 8] =
    ["fn", "if", "while", "for", "match", "loop", "return", "in"];

/// Parses one lexed file into items. `test_mask` layout matches
/// `lexed.tokens`.
pub fn parse(lexed: &Lexed) -> FileItems {
    let tokens = &lexed.tokens;
    let test_mask = test_code_mask(tokens);
    let mut items = FileItems::default();

    // Pass 1: impl block spans (for method qualification).
    let impl_spans = impl_spans(tokens);

    // Pass 2: fn items.
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Ident && tokens[i].text == "fn" {
            let Some(name_tok) = tokens.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            let body = fn_body_span(tokens, i + 2);
            let impl_type = impl_spans
                .iter()
                .filter(|s| s.open < i && i < s.close)
                .min_by_key(|s| s.close - s.open)
                .map(|s| s.type_name.clone());
            items.fns.push(FnItem {
                name: name_tok.text.clone(),
                impl_type,
                line: tokens[i].line,
                decl_idx: i,
                body,
                is_test: test_mask.get(i).copied().unwrap_or(false),
                hot: false,
                config_entry: false,
            });
            i += 2;
        } else {
            i += 1;
        }
    }

    // Markers attach to the first fn item at or below their line (same
    // semantics the original per-file hot rule used).
    for &hot_line in &lexed.hots {
        if let Some(f) = first_fn_at_or_below(&items.fns, hot_line) {
            items.fns[f].hot = true;
        }
    }
    for &cfg_line in &lexed.configs {
        if let Some(f) = first_fn_at_or_below(&items.fns, cfg_line) {
            items.fns[f].config_entry = true;
        }
    }

    // Pass 3: body-level facts (calls, allocs, taints, unsafe, structs).
    scan_bodies(lexed, &mut items);

    // Pointer-format strings attach to the fn whose body lines span them.
    for &line in &lexed.ptr_fmt_lines {
        if let Some(f) = enclosing_fn_by_line(tokens, &items.fns, line) {
            items.taints.push(TaintSource {
                caller: f,
                kind: TaintKind::PtrFormat,
                line,
            });
        }
    }

    // Sinks: digest/fold names plus result-type construction.
    classify_sinks(tokens, &mut items);

    items.test_mask = test_mask;
    items
}

/// An `impl` block's token span and resolved type name.
struct ImplSpan {
    open: usize,
    close: usize,
    type_name: String,
}

/// Finds every `impl` block: the type is the last path segment after
/// `for` (trait impls) or after the generic parameter list (inherent
/// impls).
fn impl_spans(tokens: &[Token]) -> Vec<ImplSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Ident && tokens[i].text == "impl" {
            // Collect header tokens up to the opening `{`.
            let mut j = i + 1;
            let mut last_ident_after_for: Option<String> = None;
            let mut last_ident: Option<String> = None;
            let mut saw_for = false;
            let mut angle = 0i32;
            while j < tokens.len() && tokens[j].text != "{" && tokens[j].text != ";" {
                match tokens[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "for" if angle == 0 => saw_for = true,
                    _ if tokens[j].kind == TokenKind::Ident && angle == 0 => {
                        if saw_for {
                            last_ident_after_for = Some(tokens[j].text.clone());
                        } else {
                            last_ident = Some(tokens[j].text.clone());
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if j < tokens.len() && tokens[j].text == "{" {
                let close = match_brace(tokens, j);
                if let Some(name) = last_ident_after_for.or(last_ident) {
                    spans.push(ImplSpan {
                        open: j,
                        close,
                        type_name: name,
                    });
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// From the opening `{` at `open`, returns the index of the matching
/// `}` (or the last token on unbalanced input).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Finds a fn's body span starting the scan after its name: the first
/// `{` outside parentheses opens the body; a `;` first means no body.
fn fn_body_span(tokens: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut paren = 0i32;
    let mut j = from;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "{" if paren == 0 => return Some((j, match_brace(tokens, j))),
            ";" if paren == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// The first fn item whose decl line is at or below `line`.
fn first_fn_at_or_below(fns: &[FnItem], line: u32) -> Option<usize> {
    fns.iter()
        .enumerate()
        .filter(|(_, f)| f.line >= line)
        .min_by_key(|(_, f)| f.line)
        .map(|(i, _)| i)
}

/// The innermost fn whose body token range contains `idx`.
fn enclosing_fn(fns: &[FnItem], idx: usize) -> Option<usize> {
    fns.iter()
        .enumerate()
        .filter(|(_, f)| f.body.is_some_and(|(o, c)| o < idx && idx < c))
        .min_by_key(|(_, f)| {
            let (o, c) = f.body.unwrap_or((0, usize::MAX));
            c - o
        })
        .map(|(i, _)| i)
}

/// The innermost fn whose body *line* range contains `line` (used for
/// facts the lexer reports by line, like pointer-format strings).
fn enclosing_fn_by_line(tokens: &[Token], fns: &[FnItem], line: u32) -> Option<usize> {
    fns.iter()
        .enumerate()
        .filter(|(_, f)| {
            f.body.is_some_and(|(o, c)| {
                tokens[o].line <= line && line <= tokens[c.min(tokens.len() - 1)].line
            })
        })
        .min_by_key(|(_, f)| {
            let (o, c) = f.body.unwrap_or((0, usize::MAX));
            c - o
        })
        .map(|(i, _)| i)
}

/// Token-stream scan for calls, allocation sites, taint sources, unsafe
/// spans, and `UnsafeCell` structs.
fn scan_bodies(lexed: &Lexed, items: &mut FileItems) {
    let tokens = &lexed.tokens;
    let mut i = 0;
    while i < tokens.len() {
        let tok = &tokens[i];
        if tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let next = |k: usize| tokens.get(i + k).map(|t| t.text.as_str()).unwrap_or("");

        // unsafe blocks / impls.
        if tok.text == "unsafe" {
            match next(1) {
                "{" => items.unsafes.push(UnsafeSite {
                    line: tok.line,
                    kind: UnsafeKind::Block,
                }),
                "impl" => items.unsafes.push(UnsafeSite {
                    line: tok.line,
                    kind: UnsafeKind::Impl,
                }),
                _ => {} // `unsafe fn` contracts live in `# Safety` docs
            }
            i += 1;
            continue;
        }

        // Structs with UnsafeCell fields.
        if tok.text == "struct" {
            if let Some(name_tok) = tokens.get(i + 1) {
                if name_tok.kind == TokenKind::Ident {
                    if let Some((open, close)) = fn_body_span(tokens, i + 2) {
                        let has_cell = tokens[open..close]
                            .iter()
                            .any(|t| t.kind == TokenKind::Ident && t.text == "UnsafeCell");
                        if has_cell {
                            items.cell_structs.push(CellStruct {
                                name: name_tok.text.clone(),
                                line: tok.line,
                                end_line: tokens[close.min(tokens.len() - 1)].line,
                            });
                        }
                        i = open + 1;
                        continue;
                    }
                }
            }
        }

        // Taint sources that are bare type idents.
        let ident_taint = match tok.text.as_str() {
            "Instant" | "SystemTime" => Some(TaintKind::WallClock),
            "HashMap" | "HashSet" => Some(TaintKind::RandomizedMap),
            "ThreadId" => Some(TaintKind::ThreadId),
            _ => None,
        };
        if let Some(kind) = ident_taint {
            if let Some(f) = enclosing_fn(&items.fns, i) {
                items.taints.push(TaintSource {
                    caller: f,
                    kind,
                    line: tok.line,
                });
            }
            i += 1;
            continue;
        }
        // `env::var` / `env::var_os`, `thread::current`.
        if next(1) == "::" {
            let seq_taint = match (tok.text.as_str(), next(2)) {
                ("env", "var") | ("env", "var_os") => Some(TaintKind::EnvVar),
                ("thread", "current") => Some(TaintKind::ThreadId),
                _ => None,
            };
            if let Some(kind) = seq_taint {
                if let Some(f) = enclosing_fn(&items.fns, i) {
                    items.taints.push(TaintSource {
                        caller: f,
                        kind,
                        line: tok.line,
                    });
                }
            }
        }

        // Call sites: ident followed by `(`, not a declaration/keyword.
        if next(1) == "(" && !CALLISH_KEYWORDS.contains(&tok.text.as_str()) {
            let prev = if i > 0 { tokens[i - 1].text.as_str() } else { "" };
            if prev != "fn" {
                if let Some(caller) = enclosing_fn(&items.fns, i) {
                    let kind = if prev == "." {
                        CallKind::Method
                    } else if prev == "::" && i >= 2 && tokens[i - 2].kind == TokenKind::Ident {
                        CallKind::Path(tokens[i - 2].text.clone())
                    } else {
                        CallKind::Free
                    };
                    // Allocation patterns (subset of calls).
                    let what = match tok.text.as_str() {
                        "with_capacity" if kind != CallKind::Free && prev == "::" => {
                            Some("::with_capacity")
                        }
                        "new" if matches!(&kind, CallKind::Path(q) if q == "Vec") => {
                            Some("Vec::new")
                        }
                        "new" if matches!(&kind, CallKind::Path(q) if q == "Box") => {
                            Some("Box::new")
                        }
                        _ => None,
                    };
                    if let Some(what) = what {
                        items.allocs.push(AllocSite {
                            caller,
                            what,
                            line: tok.line,
                        });
                    }
                    items.calls.push(CallSite {
                        caller,
                        name: tok.text.clone(),
                        kind,
                        line: tok.line,
                    });
                }
            }
        }
        i += 1;
    }
}

/// Marks digest/fold fns and result-type constructors as taint sinks.
fn classify_sinks(tokens: &[Token], items: &mut FileItems) {
    for (f, item) in items.fns.iter().enumerate() {
        let lower = item.name.to_ascii_lowercase();
        if lower.contains("digest") || lower == "fold" {
            items.sinks.push(SinkInfo {
                fn_idx: f,
                reason: format!("digest/fold fn `{}`", item.name),
            });
            continue;
        }
        let Some((open, close)) = item.body else {
            continue;
        };
        // Struct-literal construction of a result type (`RunResult {`),
        // excluding item headers (`impl GridResult {`).
        let mut reason = None;
        for j in open..close {
            let t = &tokens[j];
            if t.kind == TokenKind::Ident
                && RESULT_TYPES.contains(&t.text.as_str())
                && tokens.get(j + 1).is_some_and(|n| n.text == "{")
            {
                let prev = if j > 0 { tokens[j - 1].text.as_str() } else { "" };
                if !matches!(prev, "impl" | "struct" | "enum" | "trait") {
                    reason = Some(format!("constructs {}", t.text));
                    break;
                }
            }
        }
        if reason.is_none() {
            // `Aggregate::new(…)`-style construction by associated fn.
            reason = items
                .calls
                .iter()
                .filter(|c| c.caller == f)
                .find_map(|c| match &c.kind {
                    CallKind::Path(q) if RESULT_TYPES.contains(&q.as_str()) => {
                        Some(format!("constructs {} via {}::{}", q, q, c.name))
                    }
                    _ => None,
                });
        }
        if let Some(reason) = reason {
            items.sinks.push(SinkInfo { fn_idx: f, reason });
        }
    }
}

/// Marks tokens inside `#[cfg(test)]`-gated items or `#[test]` fns.
///
/// Detection is token-level: on `# [ cfg ( test ) ]` or `# [ test ]`,
/// everything through the end of the next brace-balanced block is test
/// code. This covers `mod tests { … }` and standalone test fns; it does
/// not attempt full attribute grammar (e.g. `cfg(all(test, unix))`), so
/// exotic test gating should use an inline allow instead.
pub fn test_code_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(skip_from) = test_attr_end(tokens, i) {
            // Mark from the attribute through the end of the item body.
            let mut j = skip_from;
            let mut depth = 0usize;
            let mut entered = false;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => {
                        depth += 1;
                        entered = true;
                    }
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            break;
                        }
                    }
                    ";" if !entered => break, // item without a body
                    _ => {}
                }
                j += 1;
            }
            let end = (j + 1).min(tokens.len());
            for m in mask.iter_mut().take(end).skip(i) {
                *m = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    mask
}

/// If `tokens[i..]` starts a `#[cfg(test)]` or `#[test]` attribute,
/// returns the index just past its closing `]`.
fn test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    let t = |k: usize| tokens.get(i + k).map(|t| t.text.as_str()).unwrap_or("");
    if t(0) != "#" || t(1) != "[" {
        return None;
    }
    if t(2) == "test" && t(3) == "]" {
        return Some(i + 4);
    }
    if t(2) == "cfg" && t(3) == "(" && t(4) == "test" && t(5) == ")" && t(6) == "]" {
        return Some(i + 7);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> FileItems {
        parse(&lex(src))
    }

    #[test]
    fn fn_items_with_impl_context() {
        let items = parse_src(
            "pub fn free() {}\n\
             impl Foo {\n    pub fn method(&self) -> u32 { 1 }\n}\n\
             impl fmt::Display for Bar {\n    fn fmt(&self) {}\n}\n\
             trait T { fn decl(&self); }",
        );
        let names: Vec<(&str, Option<&str>)> = items
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None),
                ("method", Some("Foo")),
                ("fmt", Some("Bar")),
                ("decl", None),
            ]
        );
        assert!(items.fns[3].body.is_none(), "trait decl has no body");
    }

    #[test]
    fn generic_impl_resolves_inherent_type() {
        let items = parse_src("impl<'a, T: Clone> Planner<'a, T> {\n    fn plan(&self) {}\n}");
        assert_eq!(items.fns[0].impl_type.as_deref(), Some("Planner"));
    }

    #[test]
    fn call_sites_classified() {
        let items = parse_src(
            "fn f() {\n    g();\n    x.h();\n    Foo::make();\n    std::env::args();\n}",
        );
        let calls: Vec<(&str, CallKind)> = items
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.kind.clone()))
            .collect();
        assert_eq!(
            calls,
            vec![
                ("g", CallKind::Free),
                ("h", CallKind::Method),
                ("make", CallKind::Path("Foo".into())),
                ("args", CallKind::Path("env".into())),
            ]
        );
        assert!(items.calls.iter().all(|c| c.caller == 0));
    }

    #[test]
    fn control_flow_keywords_are_not_calls() {
        let items = parse_src("fn f(x: bool) { if (x) { g(); } match (x) { _ => {} } }");
        let names: Vec<&str> = items.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["g"]);
    }

    #[test]
    fn markers_attach_to_next_fn() {
        let items = parse_src(
            "// simlint: hot\nfn hot_fn() {}\nfn plain() {}\n// simlint: config\nfn cfg_fn() {}",
        );
        assert!(items.fns[0].hot);
        assert!(!items.fns[1].hot && !items.fns[1].config_entry);
        assert!(items.fns[2].config_entry);
    }

    #[test]
    fn alloc_sites_detected() {
        let items = parse_src(
            "fn f() { let v = Vec::new(); let b = Box::new(1); let q = Q::with_capacity(4); let s = SmallMap::new(); }",
        );
        let what: Vec<&str> = items.allocs.iter().map(|a| a.what).collect();
        assert_eq!(what, vec!["Vec::new", "Box::new", "::with_capacity"]);
    }

    #[test]
    fn taint_sources_detected() {
        let items = parse_src(
            "fn f() {\n    let a = std::env::var(\"X\");\n    let t = Instant::now();\n    let m: HashMap<u32, u32>;\n    let id = std::thread::current();\n    println!(\"{:p}\", &a);\n}",
        );
        let kinds: Vec<TaintKind> = items.taints.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TaintKind::EnvVar));
        assert!(kinds.contains(&TaintKind::WallClock));
        assert!(kinds.contains(&TaintKind::RandomizedMap));
        assert!(kinds.contains(&TaintKind::ThreadId));
        assert!(kinds.contains(&TaintKind::PtrFormat));
    }

    #[test]
    fn unsafe_sites_detected() {
        let items = parse_src(
            "unsafe impl Sync for S {}\nfn f(p: *const u8) -> u8 { unsafe { *p } }\nunsafe fn g() {}",
        );
        let kinds: Vec<UnsafeKind> = items.unsafes.iter().map(|u| u.kind).collect();
        assert_eq!(kinds, vec![UnsafeKind::Impl, UnsafeKind::Block]);
    }

    #[test]
    fn unsafe_cell_structs_detected() {
        let items = parse_src(
            "struct Plain { x: u32 }\nstruct Slab {\n    slots: Vec<UnsafeCell<Option<u64>>>,\n}",
        );
        assert_eq!(items.cell_structs.len(), 1);
        assert_eq!(items.cell_structs[0].name, "Slab");
    }

    #[test]
    fn sink_classification() {
        let items = parse_src(
            "fn campaign_digest(x: u64) -> u64 { x }\n\
             fn build() -> RunResult { RunResult { v: 1 } }\n\
             fn assemble() { let a = Aggregate::new(); }\n\
             fn plain() {}",
        );
        let sinks: Vec<usize> = items.sinks.iter().map(|s| s.fn_idx).collect();
        assert_eq!(sinks, vec![0, 1, 2]);
    }

    #[test]
    fn nested_fn_calls_attach_to_innermost() {
        let items = parse_src("fn outer() {\n    fn inner() { g(); }\n    h();\n}");
        let by_name: Vec<(&str, &str)> = items
            .calls
            .iter()
            .map(|c| (items.fns[c.caller].name.as_str(), c.name.as_str()))
            .collect();
        assert!(by_name.contains(&("inner", "g")));
        assert!(by_name.contains(&("outer", "h")));
    }
}

//! A small hand-rolled Rust lexer.
//!
//! The lint rules need token-level structure — identifiers, punctuation,
//! numeric literals — with line positions, and they need comments and
//! string/char literals *stripped* so that prose mentioning `HashMap` or
//! `Instant::now` never produces a finding. The registry is unreachable
//! in this build environment, so no `syn`/`proc-macro2`; this lexer
//! implements exactly the subset the rules need:
//!
//! * line (`//`) and nested block (`/* */`) comments, including doc
//!   comments — skipped, but `// simlint: allow(<rule>)` directives are
//!   recorded with their line so rules can be suppressed in place;
//! * string (`"…"`), raw string (`r#"…"#`), byte string, and char
//!   literals — skipped, with the lifetime-vs-char-literal ambiguity
//!   (`'a` vs `'a'`) resolved the same way rustc's lexer does;
//! * identifiers/keywords, numeric literals (with a float-ness flag the
//!   `no-float-eq` rule relies on), and punctuation, with `==`, `!=`,
//!   `::`, `->` and `=>` fused into single tokens.
//!
//! It does not build an AST; rules work on the flat token stream plus a
//! little context (brace matching for `#[cfg(test)]` item skipping, which
//! lives in [`crate::rules`]).

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's text (for punctuation, the fused operator).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// What kind of token this is.
    pub kind: TokenKind,
}

/// Classification of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including `as`, `fn`, `mod`, …).
    Ident,
    /// Numeric literal; `true` iff it is a float literal (`1.0`, `1e9`,
    /// `2.5e-3`, or an explicit `f32`/`f64` suffix).
    Number {
        /// Whether the literal is floating-point.
        float: bool,
    },
    /// Punctuation / operator (possibly fused, e.g. `==`).
    Punct,
    /// A lifetime (`'a`) — kept distinct so rules never confuse it with
    /// an identifier.
    Lifetime,
}

/// An inline `// simlint: allow(rule-a, rule-b)` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The rule names inside `allow(...)`, trimmed.
    pub rules: Vec<String>,
}

/// A `// SAFETY: …` or `// SAFETY(tag-a, tag-b): …` comment justifying
/// an `unsafe` site. Tags name workspace invariants declared with
/// `// simlint: invariant(tag)`; the unsafe-audit rule cross-references
/// every tag against the declarations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyComment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Invariant tags named in `SAFETY(…)`, empty for a plain `SAFETY:`.
    pub tags: Vec<String>,
}

/// A `// simlint: invariant(name): …` declaration — names a safety
/// invariant (typically on the type whose `UnsafeCell` state it guards)
/// that `SAFETY(name):` comments elsewhere may reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantDecl {
    /// 1-based line of the declaration.
    pub line: u32,
    /// The invariant's name.
    pub name: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and literals stripped.
    pub tokens: Vec<Token>,
    /// Every `simlint: allow` directive found in comments.
    pub allows: Vec<AllowDirective>,
    /// Lines carrying a `// simlint: hot` marker — the next function is
    /// treated as allocation-free hot-path code by
    /// `no-alloc-in-hot-loop`.
    pub hots: Vec<u32>,
    /// Lines carrying a `// simlint: config` marker — the next function
    /// is a sanctioned config-parse entry point: a taint *barrier* that
    /// `determinism-taint` never propagates through.
    pub configs: Vec<u32>,
    /// Every `// SAFETY:` / `// SAFETY(tags):` comment.
    pub safeties: Vec<SafetyComment>,
    /// Every `// simlint: invariant(name)` declaration.
    pub invariants: Vec<InvariantDecl>,
    /// Lines whose string literals contain a `{:p}`-style pointer format
    /// (`:p}` / `:#p}`) — address formatting is a per-process random
    /// value, so `determinism-taint` treats these as sources.
    pub ptr_fmt_lines: Vec<u32>,
}

/// Lexes `src`, returning tokens plus allow directives.
///
/// The lexer is total: malformed input (unterminated strings, stray
/// bytes) never panics — it consumes what it can and moves on, which is
/// the right failure mode for a linter that must not crash the build on
/// a half-written file.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

/// Parses the `(a, b)` argument list that may follow a directive
/// keyword, returning the trimmed, non-empty entries (None when no
/// parenthesized list is present).
fn paren_list(args: &str) -> Option<Vec<String>> {
    let args = args.trim_start();
    let open = args.strip_prefix('(')?;
    let close = open.find(')')?;
    let items: Vec<String> = open[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if items.is_empty() {
        None
    } else {
        Some(items)
    }
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' => self.slash(),
                b'"' => self.string_literal(),
                b'\'' => self.quote(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b if b == b'_' || b.is_ascii_alphabetic() => self.ident(),
                b if b.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.bytes.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// `/` starts a comment or is a plain operator.
    fn slash(&mut self) {
        match self.peek(1) {
            b'/' => self.line_comment(),
            b'*' => self.block_comment(),
            _ => self.punct(),
        }
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = &self.bytes[start..self.pos];
        self.record_allow(text, self.line);
    }

    fn block_comment(&mut self) {
        let line0 = self.line;
        let start = self.pos;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let text = &self.bytes[start..self.pos.min(self.bytes.len())];
        self.record_allow(text, line0);
    }

    /// Parses `simlint:` directives (`allow`, `hot`, `config`,
    /// `invariant`) and `SAFETY` justifications out of a comment's bytes.
    fn record_allow(&mut self, comment: &[u8], line: u32) {
        let Ok(text) = std::str::from_utf8(comment) else {
            return;
        };
        if let Some(idx) = text.find("SAFETY") {
            let rest = &text[idx + "SAFETY".len()..];
            if rest.trim_start().starts_with(':') {
                self.out.safeties.push(SafetyComment { line, tags: Vec::new() });
            } else if let Some(tags) = paren_list(rest) {
                self.out.safeties.push(SafetyComment { line, tags });
            }
        }
        let Some(idx) = text.find("simlint:") else {
            return;
        };
        let rest = text[idx + "simlint:".len()..].trim_start();
        if rest == "hot" || rest.starts_with("hot ") || rest.starts_with("hot\n") {
            self.out.hots.push(line);
            return;
        }
        if rest == "config" || rest.starts_with("config ") || rest.starts_with("config\n") {
            self.out.configs.push(line);
            return;
        }
        if let Some(args) = rest.strip_prefix("invariant") {
            if let Some(names) = paren_list(args) {
                for name in names {
                    self.out.invariants.push(InvariantDecl { line, name });
                }
            }
            return;
        }
        let Some(args) = rest.strip_prefix("allow") else {
            return;
        };
        if let Some(rules) = paren_list(args) {
            self.out.allows.push(AllowDirective { line, rules });
        }
    }

    fn string_literal(&mut self) {
        let line0 = self.line;
        let start = self.pos;
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    self.record_ptr_fmt(start, self.pos, line0);
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.record_ptr_fmt(start, self.pos, line0);
    }

    /// Records the line if a consumed string literal contains a pointer
    /// format spec (`{:p}`, `{x:p}`, `{:#p}` — anything ending `:p}` or
    /// `#p}`).
    fn record_ptr_fmt(&mut self, start: usize, end: usize, line: u32) {
        let body = &self.bytes[start..end.min(self.bytes.len())];
        if body.windows(3).any(|w| w == b":p}" || w == b"#p}") {
            self.out.ptr_fmt_lines.push(line);
        }
    }

    /// `'` is a char literal or a lifetime. rustc's rule: `'x` followed
    /// by another `'` is a char literal; `'ident` not followed by `'` is
    /// a lifetime.
    fn quote(&mut self) {
        let c1 = self.peek(1);
        if c1 == b'\\' {
            // Escaped char literal: consume through the closing quote.
            self.pos += 2; // ' and backslash
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.pos += 1;
            }
            self.pos += 1;
            return;
        }
        if (c1 == b'_' || c1.is_ascii_alphanumeric()) && self.peek(2) != b'\'' {
            // Lifetime: consume the identifier part.
            let line = self.line;
            let start = self.pos;
            self.pos += 1;
            while self.pos < self.bytes.len()
                && (self.bytes[self.pos] == b'_' || self.bytes[self.pos].is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            self.push(start, line, TokenKind::Lifetime);
            return;
        }
        // Char literal `'x'` (or a stray quote: consume defensively).
        self.pos += 2;
        if self.pos <= self.bytes.len() && self.peek(0) == b'\'' {
            self.pos += 1;
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`. Returns
    /// `true` if a literal was consumed; `false` means the `r`/`b` starts
    /// a plain identifier.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut i = self.pos;
        if self.bytes[i] == b'b' {
            i += 1;
            if self.peek(i - self.pos) == b'\'' {
                // byte char literal b'x'
                self.pos = i;
                self.quote();
                return true;
            }
        }
        let mut hashes = 0usize;
        if self.bytes.get(i) == Some(&b'r') {
            i += 1;
            while self.bytes.get(i) == Some(&b'#') {
                hashes += 1;
                i += 1;
            }
        }
        if self.bytes.get(i) != Some(&b'"') {
            return false; // plain identifier starting with r/b
        }
        if hashes == 0 && self.bytes[self.pos] == b'b' && self.bytes.get(i) == Some(&b'"') {
            // b"..." — ordinary escape rules.
            self.pos = i;
            self.string_literal();
            return true;
        }
        // Raw string: scan for `"` followed by `hashes` hash marks.
        let (start, line0) = (self.pos, self.line);
        i += 1;
        while i < self.bytes.len() {
            if self.bytes[i] == b'\n' {
                self.line += 1;
                i += 1;
                continue;
            }
            if self.bytes[i] == b'"' {
                let mut j = 0;
                while j < hashes && self.bytes.get(i + 1 + j) == Some(&b'#') {
                    j += 1;
                }
                if j == hashes {
                    self.pos = i + 1 + hashes;
                    self.record_ptr_fmt(start, self.pos, line0);
                    return true;
                }
            }
            i += 1;
        }
        self.pos = self.bytes.len();
        self.record_ptr_fmt(start, self.pos, line0);
        true
    }

    fn ident(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos] == b'_' || self.bytes[self.pos].is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        self.push(start, line, TokenKind::Ident);
    }

    fn number(&mut self) {
        let start = self.pos;
        let line = self.line;
        let mut float = false;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
        {
            // `1e9` / `2.5E-3`: a trailing exponent sign belongs to the
            // literal (and makes it a float) unless this is a hex literal.
            let b = self.bytes[self.pos];
            if (b == b'e' || b == b'E')
                && !self.bytes[start..self.pos].starts_with(b"0x")
                && (self.peek(1).is_ascii_digit() || self.peek(1) == b'-' || self.peek(1) == b'+')
            {
                float = true;
                self.pos += 1; // the e/E
                if self.peek(0) == b'-' || self.peek(0) == b'+' {
                    self.pos += 1;
                }
                continue;
            }
            self.pos += 1;
        }
        // Fractional part: `.` followed by a digit (NOT `..` ranges or
        // `1.method()` calls).
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            float = true;
            self.pos += 1;
            while self.pos < self.bytes.len()
                && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
            {
                let b = self.bytes[self.pos];
                if (b == b'e' || b == b'E')
                    && (self.peek(1).is_ascii_digit()
                        || self.peek(1) == b'-'
                        || self.peek(1) == b'+')
                {
                    self.pos += 1;
                    if self.peek(0) == b'-' || self.peek(0) == b'+' {
                        self.pos += 1;
                    }
                    continue;
                }
                self.pos += 1;
            }
        }
        let text = &self.bytes[start..self.pos];
        if text.ends_with(b"f64") || text.ends_with(b"f32") {
            float = true;
        }
        self.push(start, line, TokenKind::Number { float });
    }

    fn punct(&mut self) {
        let start = self.pos;
        let line = self.line;
        let fused = match (self.peek(0), self.peek(1)) {
            (b'=', b'=') | (b'!', b'=') | (b':', b':') | (b'-', b'>') | (b'=', b'>') => 2,
            _ => 1,
        };
        self.pos += fused;
        self.push(start, line, TokenKind::Punct);
    }

    fn push(&mut self, start: usize, line: u32, kind: TokenKind) {
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.tokens.push(Token { text, line, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let toks = texts(
            "let x = \"HashMap in a string\"; // HashMap in a comment\n/* Instant::now */ y",
        );
        assert_eq!(toks, vec!["let", "x", "=", ";", "y"]);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(texts("a /* x /* y */ z */ b"), vec!["a", "b"]);
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        assert_eq!(texts(r##"a r#"HashMap "quoted" inside"# b"##), vec!["a", "b"]);
        assert_eq!(texts("a b\"bytes\" c"), vec!["a", "c"]);
        assert_eq!(texts("a br#\"raw bytes\"# c"), vec!["a", "c"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        // Char literal contents never surface as tokens.
        assert!(!lexed.tokens.iter().any(|t| t.text == "q" && t.kind == TokenKind::Ident));
    }

    #[test]
    fn float_detection() {
        let lexed = lex("1.0 1e9 2.5e-3 1_000 0x1f 42 3f64 7 1..2");
        let floats: Vec<(String, bool)> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Number { float } => Some((t.text.clone(), float)),
                _ => None,
            })
            .collect();
        assert_eq!(
            floats,
            vec![
                ("1.0".into(), true),
                ("1e9".into(), true),
                ("2.5e-3".into(), true),
                ("1_000".into(), false),
                ("0x1f".into(), false),
                ("42".into(), false),
                ("3f64".into(), true),
                ("7".into(), false),
                ("1".into(), false),
                ("2".into(), false),
            ]
        );
    }

    #[test]
    fn fused_operators() {
        assert_eq!(texts("a == b != c :: d -> e => f <= g"), vec![
            "a", "==", "b", "!=", "c", "::", "d", "->", "e", "=>", "f", "<", "=", "g"
        ]);
    }

    #[test]
    fn allow_directives_are_recorded() {
        let lexed = lex(
            "x; // simlint: allow(no-unwrap-in-lib)\ny; // simlint: allow(no-float-eq, no-wall-clock)\nz; // unrelated",
        );
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.allows[0].rules, vec!["no-unwrap-in-lib"]);
        assert_eq!(lexed.allows[1].line, 2);
        assert_eq!(
            lexed.allows[1].rules,
            vec!["no-float-eq", "no-wall-clock"]
        );
    }

    #[test]
    fn hot_markers_are_recorded() {
        let lexed = lex(
            "// simlint: hot\nfn a() {}\n/* simlint: hot */\nfn b() {}\n// simlint: hotel? no\n// simlint: allow(no-float-eq)\n",
        );
        assert_eq!(lexed.hots, vec![1, 3]);
        assert_eq!(lexed.allows.len(), 1, "hot is not an allow");
    }

    #[test]
    fn safety_config_invariant_directives_are_recorded() {
        let lexed = lex(
            "// SAFETY: idx is in-bounds by the claim-counter partition\n\
             unsafe { }\n\
             // SAFETY(slab-partition, scope-join): cross-referenced tags\n\
             unsafe { }\n\
             // simlint: invariant(slab-partition): each idx claimed once\n\
             // simlint: config\n\
             fn from_env() {}\n",
        );
        assert_eq!(lexed.safeties.len(), 2);
        assert_eq!(lexed.safeties[0].line, 1);
        assert!(lexed.safeties[0].tags.is_empty());
        assert_eq!(lexed.safeties[1].line, 3);
        assert_eq!(
            lexed.safeties[1].tags,
            vec!["slab-partition", "scope-join"]
        );
        assert_eq!(lexed.invariants.len(), 1);
        assert_eq!(lexed.invariants[0].name, "slab-partition");
        assert_eq!(lexed.configs, vec![6]);
    }

    #[test]
    fn ptr_format_strings_are_recorded() {
        let lexed = lex("a \"addr {:p}\" b \"plain {}\" c \"{x:#p} alt\" d r\"raw {:p}\" e");
        assert_eq!(lexed.ptr_fmt_lines, vec![1, 1, 1]);
        assert!(lex("\"{:.3}\"").ptr_fmt_lines.is_empty());
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let lexed = lex("a\n\"two\nlines\"\nb /* c\nd */ e");
        let a = lexed.tokens.iter().find(|t| t.text == "a").unwrap();
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        let e = lexed.tokens.iter().find(|t| t.text == "e").unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 4);
        assert_eq!(e.line, 5);
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        lex("\"unterminated");
        lex("/* unterminated");
        lex("r#\"unterminated");
        lex("'");
    }
}

//! Workspace-level rule families, built on the cross-file call graph.
//!
//! Three families run here (per-file token rules stay in
//! [`crate::rules`]):
//!
//! | rule                   | what it checks                              |
//! |------------------------|---------------------------------------------|
//! | `no-alloc-in-hot-loop` | heap constructors in any fn *reachable* from a `// simlint: hot` fn, not just the marked body |
//! | `determinism-taint`    | nondeterminism sources must not reach digest/fold/result-construction sinks except through `// simlint: config` entry points |
//! | `unsafe-audit`         | every `unsafe` block/impl carries a `// SAFETY:` comment; `SAFETY(tag)` tags resolve to declared invariants; `UnsafeCell` types declare invariants |
//!
//! Scoping: hot-path allocation stays inside the six sim-semantic
//! crates ([`crate::rules::SIM_CRATES`]); taint and unsafe-audit extend
//! to `simobs` and `simrng`, whose output feeds digests and whose state
//! sits on the hot path.
//!
//! Taint direction: a sink is tainted when it *transitively calls* a fn
//! containing a source (`std::env::var`, wall clock, `HashMap`
//! iteration, thread ids, `{:p}` formatting). Propagation runs over the
//! reverse call graph from every source fn; a `// simlint: config` fn
//! is a barrier — it is sanctioned to read config-style nondeterminism,
//! so sources inside it are ignored and taint never flows through it.

use crate::callgraph::{CallGraph, NodeId};
use crate::items::TaintKind;
use crate::rules::{Finding, SIM_CRATES};
use crate::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Crates in scope for `determinism-taint` and `unsafe-audit`: the sim
/// crates plus the observability and RNG layers (their state reaches
/// digests and their cells sit on the hot path).
pub const EXTENDED_SCOPE: [&str; 7] =
    ["desim", "core", "failure", "workloads", "analysis", "simobs", "simrng"];

/// A `SAFETY` comment (or invariant declaration) must sit within this
/// many lines above the site it justifies.
pub const SAFETY_WINDOW: u32 = 8;

/// Runs all three workspace rule families, appending raw (unsuppressed)
/// findings to `out`.
pub fn graph_findings(files: &[SourceFile], graph: &CallGraph, out: &mut Vec<Finding>) {
    transitive_hot_alloc(files, graph, out);
    determinism_taint(files, graph, out);
    unsafe_audit(files, out);
}

fn in_sim(files: &[SourceFile], file: usize) -> bool {
    SIM_CRATES.contains(&files[file].class.crate_name.as_str())
}

fn in_extended(files: &[SourceFile], file: usize) -> bool {
    EXTENDED_SCOPE.contains(&files[file].class.crate_name.as_str())
}

// ----------------------------------------------------------------------
// no-alloc-in-hot-loop (transitive)
// ----------------------------------------------------------------------

/// Forward closure from every `// simlint: hot` fn in a sim crate; any
/// heap-constructor site in a reachable sim-crate fn fires, with the
/// call chain from the hot root in the message.
fn transitive_hot_alloc(files: &[SourceFile], g: &CallGraph, out: &mut Vec<Finding>) {
    let mut roots: Vec<NodeId> = Vec::new();
    for (id, r) in g.nodes.iter().enumerate() {
        let item = &files[r.file].items.fns[r.fn_idx];
        if item.hot && !item.is_test && in_sim(files, r.file) {
            roots.push(id);
        }
    }
    if roots.is_empty() {
        return;
    }
    let parent = g.reach(&g.callees, &roots, |n| !g.item(files, n).is_test);
    for &n in parent.keys() {
        let r = g.nodes[n];
        let sf = &files[r.file];
        if !in_sim(files, r.file) || sf.items.fns[r.fn_idx].is_test {
            continue;
        }
        for alloc in sf.items.allocs.iter().filter(|a| a.caller == r.fn_idx) {
            let chain = g.chain(files, &parent, n);
            let via = if chain.len() > 1 {
                format!(" (reached from `// simlint: hot` via {})", chain.join(" -> "))
            } else {
                String::new()
            };
            out.push(Finding {
                rule: "no-alloc-in-hot-loop",
                path: sf.rel.clone(),
                line: alloc.line,
                message: format!(
                    "`{}` allocates inside hot-path fn `{}`{via}; the campaign steady state \
                     must be allocation-free — reuse an arena buffer (clear() + extend(), \
                     field-wise clone_from) or hoist the allocation to construction time",
                    alloc.what, chain.last().map(String::as_str).unwrap_or(""),
                ),
            });
        }
    }
}

// ----------------------------------------------------------------------
// determinism-taint
// ----------------------------------------------------------------------

fn determinism_taint(files: &[SourceFile], g: &CallGraph, out: &mut Vec<Finding>) {
    // Source fns: any in-scope, non-test fn containing a source token.
    // Config entry points are sanctioned: their sources are ignored.
    let mut sources: BTreeMap<NodeId, (TaintKind, u32)> = BTreeMap::new();
    for (file, sf) in files.iter().enumerate() {
        if !in_extended(files, file) {
            continue;
        }
        for ts in &sf.items.taints {
            let item = &sf.items.fns[ts.caller];
            if item.is_test || item.config_entry {
                continue;
            }
            if let Some(node) = g.node(file, ts.caller) {
                sources.entry(node).or_insert((ts.kind, ts.line));
            }
        }
    }
    if sources.is_empty() {
        return;
    }

    // Taint flows source -> callers; config fns and test fns are
    // barriers (reached, never expanded through).
    let roots: Vec<NodeId> = sources.keys().copied().collect();
    let parent = g.reach(&g.callers, &roots, |n| {
        let item = g.item(files, n);
        !item.config_entry && !item.is_test
    });

    for (file, sf) in files.iter().enumerate() {
        if !in_extended(files, file) || !sf.class.is_lib {
            continue;
        }
        for sink in &sf.items.sinks {
            let item = &sf.items.fns[sink.fn_idx];
            if item.is_test || item.config_entry {
                continue;
            }
            let Some(node) = g.node(file, sink.fn_idx) else {
                continue;
            };
            if !parent.contains_key(&node) {
                continue;
            }
            // Walk back to the source this taint came from.
            let mut root = node;
            while let Some(Some(p)) = parent.get(&root) {
                root = *p;
            }
            let (kind, src_line) = sources[&root];
            let src_file = &files[g.nodes[root].file].rel;
            let mut chain = g.chain(files, &parent, node);
            chain.reverse(); // call direction: sink -> ... -> source
            out.push(Finding {
                rule: "determinism-taint",
                path: sf.rel.clone(),
                line: item.line,
                message: format!(
                    "fn `{}` ({}) transitively reaches {} at {src_file}:{src_line}; \
                     nondeterministic input must enter through a `// simlint: config` entry \
                     point, never a digest/fold/result path — call path: {}",
                    item.name,
                    sink.reason,
                    kind.describe(),
                    chain.join(" -> "),
                ),
            });
        }
    }
}

// ----------------------------------------------------------------------
// unsafe-audit
// ----------------------------------------------------------------------

fn unsafe_audit(files: &[SourceFile], out: &mut Vec<Finding>) {
    // Invariant declarations are workspace-global: a SAFETY(tag) in the
    // grid pool may reference an invariant declared on ResultSlab.
    let declared: BTreeSet<&str> = files
        .iter()
        .flat_map(|sf| sf.lexed.invariants.iter().map(|d| d.name.as_str()))
        .collect();

    for (file, sf) in files.iter().enumerate() {
        if !in_extended(files, file) {
            continue;
        }
        // Every unsafe block/impl needs a SAFETY comment close above.
        for site in &sf.items.unsafes {
            let justified = sf
                .lexed
                .safeties
                .iter()
                .any(|s| s.line <= site.line && site.line - s.line <= SAFETY_WINDOW);
            if !justified {
                out.push(Finding {
                    rule: "unsafe-audit",
                    path: sf.rel.clone(),
                    line: site.line,
                    message: format!(
                        "{} without a `// SAFETY:` comment within {} lines naming the invariant \
                         it relies on; state the invariant (and tag it `SAFETY(tag):` if it is \
                         declared with `// simlint: invariant(tag)`)",
                        site.kind.describe(),
                        SAFETY_WINDOW,
                    ),
                });
            }
        }
        // Every SAFETY(tag) must reference a declared invariant.
        for s in &sf.lexed.safeties {
            for tag in &s.tags {
                if !declared.contains(tag.as_str()) {
                    out.push(Finding {
                        rule: "unsafe-audit",
                        path: sf.rel.clone(),
                        line: s.line,
                        message: format!(
                            "SAFETY references undeclared invariant tag `{tag}`; declare it \
                             with `// simlint: invariant({tag}): …` on the type whose state it \
                             guards"
                        ),
                    });
                }
            }
        }
        // UnsafeCell-holding types must declare a named invariant.
        for cs in &sf.items.cell_structs {
            let declared_here = sf
                .lexed
                .invariants
                .iter()
                .any(|d| d.line + SAFETY_WINDOW >= cs.line && d.line <= cs.end_line);
            if !declared_here {
                out.push(Finding {
                    rule: "unsafe-audit",
                    path: sf.rel.clone(),
                    line: cs.line,
                    message: format!(
                        "struct `{}` holds UnsafeCell state but declares no invariant; add \
                         `// simlint: invariant(<tag>): …` above it so SAFETY comments can \
                         cross-reference the rule that keeps its aliasing sound",
                        cs.name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Workspace;

    fn lint(files: &[(&str, &str)]) -> Vec<crate::Finding> {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        )
        .lint()
    }

    #[test]
    fn transitive_alloc_two_hops_cross_file() {
        let findings = lint(&[
            (
                "crates/core/src/hot.rs",
                "// simlint: hot\npub fn run() { mid(); }",
            ),
            (
                "crates/core/src/mid.rs",
                "pub fn mid() { leaf(); }\npub fn leaf() { let v: Vec<u8> = Vec::new(); }",
            ),
        ]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "no-alloc-in-hot-loop");
        assert_eq!(findings[0].path, "crates/core/src/mid.rs");
        assert_eq!(findings[0].line, 2);
        assert!(
            findings[0].message.contains("run -> mid -> leaf"),
            "chain in message: {}",
            findings[0].message
        );
    }

    #[test]
    fn unreachable_alloc_does_not_fire() {
        let findings = lint(&[
            (
                "crates/core/src/hot.rs",
                "// simlint: hot\npub fn run() { helper(); }\npub fn helper() {}",
            ),
            (
                "crates/core/src/cold.rs",
                "pub fn cold() { let v: Vec<u8> = Vec::new(); }",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn env_taint_reaching_digest_fires_and_config_sanctions_it() {
        let tainted = lint(&[(
            "crates/core/src/digest.rs",
            "pub fn read_knob() -> u64 { std::env::var(\"X\").map(|v| v.len() as u64).unwrap_or(0) }\n\
             pub fn campaign_digest() -> u64 { read_knob() }",
        )]);
        let taint: Vec<_> = tainted.iter().filter(|f| f.rule == "determinism-taint").collect();
        assert_eq!(taint.len(), 1, "{tainted:?}");
        assert_eq!(taint[0].line, 2);
        assert!(taint[0].message.contains("campaign_digest -> read_knob"));

        let sanctioned = lint(&[(
            "crates/core/src/digest.rs",
            "// simlint: config\n\
             pub fn read_knob() -> u64 { std::env::var(\"X\").map(|v| v.len() as u64).unwrap_or(0) }\n\
             pub fn campaign_digest() -> u64 { read_knob() }",
        )]);
        assert!(
            !sanctioned.iter().any(|f| f.rule == "determinism-taint"),
            "{sanctioned:?}"
        );
    }

    #[test]
    fn taint_barrier_cuts_propagation_through_config_fn() {
        // source <- config fn <- sink: the config fn is a barrier, so
        // the sink stays clean even though a raw call path exists.
        let findings = lint(&[(
            "crates/core/src/digest.rs",
            "fn raw_env() -> u64 { std::env::var(\"X\").map(|v| v.len() as u64).unwrap_or(0) }\n\
             // simlint: config\n\
             fn load_config() -> u64 { raw_env() }\n\
             pub fn campaign_digest() -> u64 { load_config() }",
        )]);
        assert!(
            !findings.iter().any(|f| f.rule == "determinism-taint"),
            "{findings:?}"
        );
    }

    #[test]
    fn result_construction_is_a_sink() {
        let findings = lint(&[(
            "crates/analysis/src/assemble.rs",
            "pub struct RunResult { pub v: u64 }\n\
             fn now_ms() -> u64 { let t = std::time::Instant::now(); 0 }\n\
             pub fn build() -> RunResult { RunResult { v: now_ms() } }",
        )]);
        assert!(
            findings.iter().any(|f| f.rule == "determinism-taint" && f.line == 3),
            "{findings:?}"
        );
    }

    #[test]
    fn unsafe_without_safety_fires() {
        let findings = lint(&[(
            "crates/core/src/slab.rs",
            "pub fn read(p: *const u8) -> u8 { unsafe { *p } }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "unsafe-audit");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn safety_comment_within_window_satisfies() {
        let findings = lint(&[(
            "crates/core/src/slab.rs",
            "// SAFETY: p is valid for reads by the caller's contract\n\
             pub fn read(p: *const u8) -> u8 { unsafe { *p } }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn safety_tag_must_be_declared() {
        let undeclared = lint(&[(
            "crates/core/src/slab.rs",
            "// SAFETY(missing-tag): justified elsewhere\n\
             pub fn read(p: *const u8) -> u8 { unsafe { *p } }",
        )]);
        assert_eq!(undeclared.len(), 1, "{undeclared:?}");
        assert!(undeclared[0].message.contains("missing-tag"));

        let declared = lint(&[(
            "crates/core/src/slab.rs",
            "// simlint: invariant(ptr-contract): p valid for reads while the slab lives\n\
             pub struct S { cell: std::cell::UnsafeCell<u8> }\n\
             // SAFETY(ptr-contract): see the declaration on S\n\
             pub fn read(p: *const u8) -> u8 { unsafe { *p } }",
        )]);
        assert!(declared.is_empty(), "{declared:?}");
    }

    #[test]
    fn unsafe_cell_struct_requires_invariant() {
        let findings = lint(&[(
            "crates/core/src/slab.rs",
            "pub struct Slab { slots: Vec<std::cell::UnsafeCell<u64>> }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "unsafe-audit");
        assert!(findings[0].message.contains("Slab"));
    }

    #[test]
    fn out_of_scope_crates_are_untouched() {
        let findings = lint(&[(
            "crates/cli/src/commands.rs",
            "pub fn read(p: *const u8) -> u8 { unsafe { *p } }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_suppresses_graph_findings() {
        let findings = lint(&[(
            "crates/core/src/slab.rs",
            "// one-shot init path, measured cold. simlint: allow(unsafe-audit)\n\
             pub fn read(p: *const u8) -> u8 { unsafe { *p } }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}

//! simlint — in-workspace determinism & invariant static-analysis pass.
//!
//! The p-ckpt evaluation depends on bit-reproducible campaigns: the same
//! seed must produce the same report, byte for byte, on every run and
//! every machine. This crate enforces the source-level discipline behind
//! that property (no randomized containers, no wall-clock reads, no
//! float equality, centralized time casts, no library panics) without
//! any external dependency — the registry is unreachable here, so the
//! lexer in [`lexer`] is hand-rolled.
//!
//! Entry points:
//! - [`lint_tree`] lints every `.rs` file under a root directory.
//! - [`rules::lint_file`] lints one file's source text.
//!
//! The `simlint` binary (see `src/main.rs`) walks the enclosing cargo
//! workspace and exits non-zero on any finding; `scripts/lint.sh` and
//! the root `tests/simlint_clean.rs` wire it into tier-1.

pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::{lint_file, Finding};

/// Directory components that are never linted: build output, VCS
/// metadata, and simlint's own seeded-violation fixtures.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", ".claude"];

/// Lints every `.rs` file under `root`, returning findings sorted by
/// path, line, then rule. Paths in findings are relative to `root` with
/// `/` separators on every platform.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for file in &files {
        let rel = rel_path(root, file);
        let src = std::fs::read_to_string(file)?;
        findings.extend(rules::lint_file(&rel, &src));
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule))
    });
    Ok(findings)
}

fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the enclosing cargo workspace root: the nearest ancestor of
/// `start` whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_found_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn lint_tree_skips_fixture_dirs() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        // Linting simlint's own crate dir must not pick up the seeded
        // violations under fixtures/.
        let findings = lint_tree(here).expect("lint simlint");
        assert!(
            findings.is_empty(),
            "unexpected findings in simlint itself: {findings:?}"
        );
    }
}

//! simlint — in-workspace determinism & invariant static-analysis pass.
//!
//! The p-ckpt evaluation depends on bit-reproducible campaigns: the same
//! seed must produce the same report, byte for byte, on every run and
//! every machine. This crate enforces the source-level discipline behind
//! that property without any external dependency — the registry is
//! unreachable here, so the lexer in [`lexer`] is hand-rolled.
//!
//! Two layers of analysis share one lexed-file cache:
//!
//! * **per-file token rules** ([`rules`]): randomized containers,
//!   wall-clock reads, float equality, lossy time casts, library
//!   panics;
//! * **workspace call-graph rules** ([`wsrules`] over [`callgraph`]):
//!   transitive hot-path allocation, determinism taint from sources to
//!   digest/fold/result sinks, and the unsafe audit
//!   (`// SAFETY:` comments with cross-referenced invariant tags).
//!
//! Every file is read, lexed ([`lexer`]), and item-parsed ([`items`])
//! exactly once into a [`Workspace`]; both rule layers and the call
//! graph consume the same cache, so `cargo test -q` wall time stays
//! flat as rule families grow.
//!
//! Entry points:
//! - [`Workspace::load`] + [`Workspace::lint`] — the full analysis.
//! - [`lint_tree`] — convenience wrapper over the above.
//! - [`rules::lint_file`] — one file's source text (single-file
//!   workspace; per-file rules plus whatever graph rules can see in one
//!   file).
//!
//! The `simlint` binary (see `src/main.rs`) walks the enclosing cargo
//! workspace and exits non-zero on any finding; `--json` emits the
//! machine-readable report `scripts/lint.sh` archives as a CI artifact.

pub mod callgraph;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod wsrules;

use std::path::{Path, PathBuf};

pub use rules::{lint_file, Finding};

/// Directory components that are never linted: build output, VCS
/// metadata, and simlint's own seeded-violation fixtures.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", ".claude"];

/// One source file, read and analyzed exactly once.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Crate / library-code classification derived from the path.
    pub class: rules::FileClass,
    /// The token stream plus directives (allows, SAFETY, invariants…).
    pub lexed: lexer::Lexed,
    /// Parsed items: fns, calls, allocs, taints, unsafe spans, sinks.
    pub items: items::FileItems,
}

/// A fully-loaded analysis workspace: every file lexed and item-parsed
/// once, plus the cross-file call graph built over them.
pub struct Workspace {
    /// All files, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// The call graph over every fn in `files`.
    pub graph: callgraph::CallGraph,
}

impl Workspace {
    /// Builds a workspace from `(relative path, source)` pairs.
    pub fn from_sources(mut sources: Vec<(String, String)>) -> Workspace {
        sources.sort_by(|a, b| a.0.cmp(&b.0));
        let files: Vec<SourceFile> = sources
            .into_iter()
            .map(|(rel, src)| {
                let lexed = lexer::lex(&src);
                let items = items::parse(&lexed);
                SourceFile {
                    class: rules::classify(&rel),
                    rel,
                    lexed,
                    items,
                }
            })
            .collect();
        let graph = callgraph::CallGraph::build(&files);
        Workspace { files, graph }
    }

    /// Reads every `.rs` file under `root` (skipping [`SKIP_DIRS`]) into
    /// a workspace.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        collect_rs_files(root, &mut paths)?;
        let mut sources = Vec::with_capacity(paths.len());
        for path in paths {
            let rel = rel_path(root, &path);
            sources.push((rel, std::fs::read_to_string(&path)?));
        }
        Ok(Workspace::from_sources(sources))
    }

    /// Runs every rule family over the shared cache, applies inline
    /// `simlint: allow` directives and the file-level allowlist, and
    /// returns the surviving findings sorted by path, line, then rule.
    pub fn lint(&self) -> Vec<Finding> {
        let mut findings = Vec::new();
        for sf in &self.files {
            rules::file_findings(sf, &mut findings);
        }
        wsrules::graph_findings(&self.files, &self.graph, &mut findings);
        findings.retain(|f| !self.suppressed(f));
        findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        findings.dedup();
        findings
    }

    /// A finding is suppressed by an inline allow on its line or the
    /// line above, or by the file-level [`rules::allowlist`].
    fn suppressed(&self, f: &Finding) -> bool {
        if rules::allowlist()
            .iter()
            .any(|&(rule, path)| rule == f.rule && f.path.contains(path))
        {
            return true;
        }
        let Ok(idx) = self.files.binary_search_by(|sf| sf.rel.as_str().cmp(&f.path)) else {
            return false;
        };
        self.files[idx].lexed.allows.iter().any(|a| {
            (a.line == f.line || a.line + 1 == f.line) && a.rules.iter().any(|r| r == f.rule)
        })
    }
}

/// Lints every `.rs` file under `root`, returning findings sorted by
/// path, line, then rule. Paths in findings are relative to `root` with
/// `/` separators on every platform.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(Workspace::load(root)?.lint())
}

/// Serializes a lint report as JSON: finding count, file count, and one
/// record per finding (`rule`, `path`, `line`, `message`). Hand-rolled
/// (no serde in this build environment); key order is fixed so the
/// artifact diffs cleanly between CI runs.
pub fn report_json(findings: &[Finding], files: usize) -> String {
    let mut out = String::with_capacity(128 + findings.len() * 128);
    out.push_str(&format!(
        "{{\"files\":{},\"count\":{},\"findings\":[",
        files,
        findings.len()
    ));
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push_str("]}\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the enclosing cargo workspace root: the nearest ancestor of
/// `start` whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_found_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn lint_tree_skips_fixture_dirs() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        // Linting simlint's own crate dir must not pick up the seeded
        // violations under fixtures/.
        let findings = lint_tree(here).expect("lint simlint");
        assert!(
            findings.is_empty(),
            "unexpected findings in simlint itself: {findings:?}"
        );
    }

    #[test]
    fn json_report_shape() {
        let findings = vec![Finding {
            rule: "no-wall-clock",
            path: "crates/core/src/x.rs".into(),
            line: 7,
            message: "a \"quoted\"\nmessage".into(),
        }];
        let json = report_json(&findings, 42);
        assert_eq!(
            json,
            "{\"files\":42,\"count\":1,\"findings\":[{\"rule\":\"no-wall-clock\",\
             \"path\":\"crates/core/src/x.rs\",\"line\":7,\
             \"message\":\"a \\\"quoted\\\"\\nmessage\"}]}\n"
        );
        let empty = report_json(&[], 3);
        assert_eq!(empty, "{\"files\":3,\"count\":0,\"findings\":[]}\n");
    }
}

//! The `simlint` binary: lints the enclosing cargo workspace (or an
//! explicit `--root <dir>`) and exits non-zero on any finding.
//!
//! Usage:
//! ```text
//! cargo run -q -p simlint            # lint the workspace
//! simlint --root path/to/tree        # lint an arbitrary tree
//! simlint --json                     # machine-readable report on stdout
//! simlint --list-rules               # print the rule names
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("simlint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--list-rules" => {
                for rule in simlint::rules::ALL_RULES {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("simlint [--root <dir>] [--json] [--list-rules]");
                println!("Lints the cargo workspace for determinism & invariant violations.");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("simlint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match simlint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "simlint: no [workspace] Cargo.toml above {} (use --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let ws = match simlint::Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("simlint: io error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let findings = ws.lint();
    if json {
        // The report goes to stdout whole — findings or not — so CI can
        // archive it as an artifact; the exit code still gates the run.
        print!("{}", simlint::report_json(&findings, ws.files.len()));
        if findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    } else if findings.is_empty() {
        println!("simlint: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        eprintln!("simlint: {} finding(s) in {}", findings.len(), root.display());
        ExitCode::FAILURE
    }
}

//! The per-file lint rules.
//!
//! Each rule here walks the token stream of one file (see
//! [`crate::lexer`]) and produces [`Finding`]s. The workspace-level
//! rule families (transitive hot-path allocation, determinism taint,
//! unsafe audit) live in [`crate::wsrules`] on top of the call graph;
//! both layers consume the same per-file cache ([`crate::SourceFile`]).
//! Scoping is per rule:
//!
//! | rule                 | scope                                        |
//! |----------------------|----------------------------------------------|
//! | `no-randomized-maps` | all code in the sim-semantic crates          |
//! | `no-wall-clock`      | whole workspace except `criterion` / `bench` |
//! | `no-float-eq`        | library code of the sim-semantic crates      |
//! | `no-lossy-time-cast` | library code of the sim-semantic crates      |
//! | `no-unwrap-in-lib`   | library code of the sim-semantic crates      |
//! | `no-alloc-in-hot-loop` | fns reachable from `// simlint: hot` in sim crates ([`crate::wsrules`]) |
//! | `determinism-taint`  | sim crates + `simobs`/`simrng` ([`crate::wsrules`]) |
//! | `unsafe-audit`       | sim crates + `simobs`/`simrng` ([`crate::wsrules`]) |
//!
//! "Sim-semantic crates" are the six crates whose behaviour defines a
//! simulated campaign: `desim`, `core`, `failure`, `workloads`,
//! `analysis`, and `service` (the campaign service decides which
//! results are reused verbatim, so its admission and recovery logic is
//! as digest-relevant as the simulator itself). "Library code"
//! excludes `tests/`, `benches/`,
//! `examples/`, `src/bin/`, `main.rs`, and `#[cfg(test)]` /
//! `#[test]`-gated items inside a file (brace-matched).
//!
//! Any finding can be suppressed in place with a
//! `// simlint: allow(<rule>)` comment on the same line or on the line
//! directly above, or globally for a file via the built-in
//! [`allowlist`]. An allow should always carry a justification in the
//! surrounding comment.

use crate::lexer::{Token, TokenKind};
use crate::SourceFile;

/// The six crates whose code determines simulated behaviour.
pub const SIM_CRATES: [&str; 6] =
    ["desim", "core", "failure", "workloads", "analysis", "service"];

/// Crates exempt from `no-wall-clock` (benchmarking must read the real
/// clock — that is its job).
pub const WALL_CLOCK_EXEMPT: [&str; 2] = ["criterion", "bench"];

/// All rule names, in reporting order (the last three are the
/// call-graph families in [`crate::wsrules`]).
pub const ALL_RULES: [&str; 8] = [
    "no-randomized-maps",
    "no-wall-clock",
    "no-float-eq",
    "no-lossy-time-cast",
    "no-unwrap-in-lib",
    "no-alloc-in-hot-loop",
    "determinism-taint",
    "unsafe-audit",
];

/// File-level allowlist: `(rule, path substring)`. A file whose
/// workspace-relative path contains the substring is exempt from the
/// rule. Every entry must say why.
pub fn allowlist() -> &'static [(&'static str, &'static str)] {
    &[
        // desim::time IS the blessed conversion module: the raw
        // nanosecond<->seconds casts live here, behind checked helpers,
        // so they cannot appear anywhere else.
        ("no-lossy-time-cast", "crates/desim/src/time.rs"),
    ]
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-oriented explanation with the fix direction.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Where a file sits in the workspace, derived from its relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate name (`""` for the root facade package).
    pub crate_name: String,
    /// True for library code: not under `tests/`, `benches/`,
    /// `examples/`, `src/bin/`, and not a `main.rs` or `build.rs`.
    pub is_lib: bool,
}

/// Classifies a workspace-relative path (`crates/desim/src/flow.rs`).
pub fn classify(rel_path: &str) -> FileClass {
    let components: Vec<&str> = rel_path.split('/').collect();
    let crate_name = match components.first() {
        Some(&"crates") if components.len() > 1 => components[1].to_string(),
        _ => String::new(),
    };
    let file_name = components.last().copied().unwrap_or("");
    let in_non_lib_dir = components
        .iter()
        .any(|c| matches!(*c, "tests" | "benches" | "examples" | "bin" | "fixtures"));
    let is_lib = !in_non_lib_dir && file_name != "main.rs" && file_name != "build.rs";
    FileClass {
        crate_name,
        is_lib,
    }
}

/// Lints one file's source text as a single-file workspace: all
/// per-file rules plus whatever the call-graph families can resolve
/// inside one file. `rel_path` is workspace-relative with `/`
/// separators. For multi-file analysis, build a [`crate::Workspace`]
/// instead — it lexes every file exactly once for all rule families.
pub fn lint_file(rel_path: &str, src: &str) -> Vec<Finding> {
    crate::Workspace::from_sources(vec![(rel_path.to_string(), src.to_string())]).lint()
}

/// Runs the per-file token rules over one cached file, appending raw
/// (unsuppressed) findings to `out`. Suppression — inline allows and
/// the [`allowlist`] — is applied centrally in
/// [`crate::Workspace::lint`].
pub(crate) fn file_findings(sf: &SourceFile, out: &mut Vec<Finding>) {
    let rel_path = sf.rel.as_str();
    let class = &sf.class;
    let tokens = &sf.lexed.tokens;
    let test_mask = &sf.items.test_mask;

    let in_sim_crate = SIM_CRATES.contains(&class.crate_name.as_str());
    let wall_clock_applies = !WALL_CLOCK_EXEMPT.contains(&class.crate_name.as_str());

    for (i, tok) in tokens.iter().enumerate() {
        let in_test_code = test_mask[i];
        let lib_scoped = class.is_lib && !in_test_code;

        if in_sim_crate {
            randomized_maps(rel_path, tok, out);
            if lib_scoped {
                float_eq(rel_path, tokens, i, out);
                lossy_time_cast(rel_path, tokens, i, out);
                unwrap_in_lib(rel_path, tokens, i, out);
            }
        }
        if wall_clock_applies {
            wall_clock(rel_path, tok, out);
        }
    }
}

// ----------------------------------------------------------------------
// Rule 1: no-randomized-maps
// ----------------------------------------------------------------------

fn randomized_maps(path: &str, tok: &Token, out: &mut Vec<Finding>) {
    if tok.kind != TokenKind::Ident {
        return;
    }
    let (bad, fix) = match tok.text.as_str() {
        "HashMap" => ("HashMap", "BTreeMap"),
        "HashSet" => ("HashSet", "BTreeSet"),
        _ => return,
    };
    out.push(Finding {
        rule: "no-randomized-maps",
        path: path.to_string(),
        line: tok.line,
        message: format!(
            "{bad} iterates in a per-process random order, which breaks bit-reproducible \
             campaigns; use {fix} (or a sorted Vec) in sim-semantic crates"
        ),
    });
}

// ----------------------------------------------------------------------
// Rule 2: no-wall-clock
// ----------------------------------------------------------------------

fn wall_clock(path: &str, tok: &Token, out: &mut Vec<Finding>) {
    if tok.kind != TokenKind::Ident {
        return;
    }
    if tok.text == "Instant" || tok.text == "SystemTime" {
        out.push(Finding {
            rule: "no-wall-clock",
            path: path.to_string(),
            line: tok.line,
            message: format!(
                "{} reads the wall clock; simulation code must only observe SimTime \
                 (wall-clock reads are reserved for crates/criterion and crates/bench)",
                tok.text
            ),
        });
    }
}

// ----------------------------------------------------------------------
// Rule 3: no-float-eq
// ----------------------------------------------------------------------

fn is_float_literal(tok: &Token) -> bool {
    matches!(tok.kind, TokenKind::Number { float: true })
}

/// `f64 :: CONST` / `f32 :: CONST` path starting at `i`.
fn is_float_path(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.text == "f64" || t.text == "f32")
        && tokens.get(i + 1).is_some_and(|t| t.text == "::")
}

fn float_eq(path: &str, tokens: &[Token], i: usize, out: &mut Vec<Finding>) {
    let tok = &tokens[i];
    if tok.text != "==" && tok.text != "!=" {
        return;
    }
    // Left operand ends at i-1; right operand starts at i+1, possibly
    // behind a unary minus.
    let left_float = i > 0
        && (is_float_literal(&tokens[i - 1])
            || (i >= 3 && is_float_path(tokens, i - 3) && tokens[i - 2].text == "::"));
    let mut r = i + 1;
    if tokens.get(r).is_some_and(|t| t.text == "-") {
        r += 1;
    }
    let right_float = tokens.get(r).is_some_and(is_float_literal) || is_float_path(tokens, r);
    if left_float || right_float {
        out.push(Finding {
            rule: "no-float-eq",
            path: path.to_string(),
            line: tok.line,
            message: format!(
                "`{}` between float expressions is representation-sensitive; compare with an \
                 epsilon, total_cmp, or to_bits (exact-zero guards may be allowed with \
                 justification)",
                tok.text
            ),
        });
    }
}

// ----------------------------------------------------------------------
// Rule 4: no-lossy-time-cast
// ----------------------------------------------------------------------

/// Identifier fragments that mark a cast's line as time-semantic.
const TIME_MARKERS: [&str; 7] = ["secs", "nanos", "hours", "mins", "simtime", "simduration", "micros"];

fn lossy_time_cast(path: &str, tokens: &[Token], i: usize, out: &mut Vec<Finding>) {
    let tok = &tokens[i];
    if tok.text != "as" || tok.kind != TokenKind::Ident {
        return;
    }
    let Some(target) = tokens.get(i + 1) else {
        return;
    };
    if target.text != "u64" && target.text != "f64" {
        return;
    }
    // Heuristic: the cast is time-adjacent if any identifier on the same
    // source line mentions a time unit or a sim-time type, or the line
    // multiplies by a 1e9-style nanosecond factor.
    let line = tok.line;
    let time_adjacent = tokens
        .iter()
        .filter(|t| t.line == line)
        .any(|t| match t.kind {
            TokenKind::Ident => {
                let lower = t.text.to_ascii_lowercase();
                TIME_MARKERS.iter().any(|m| lower.contains(m))
            }
            TokenKind::Number { float: true } => t.text == "1e9" || t.text == "1e-9",
            _ => false,
        });
    if time_adjacent {
        out.push(Finding {
            rule: "no-lossy-time-cast",
            path: path.to_string(),
            line,
            message: format!(
                "raw `as {}` on a time-like value bypasses the checked conversions; use \
                 SimTime/SimDuration::from_secs_f64 / to_secs_f64 (crates/desim/src/time.rs)",
                target.text
            ),
        });
    }
}

// ----------------------------------------------------------------------
// Rule 5: no-unwrap-in-lib
// ----------------------------------------------------------------------

fn unwrap_in_lib(path: &str, tokens: &[Token], i: usize, out: &mut Vec<Finding>) {
    let tok = &tokens[i];
    if tok.kind != TokenKind::Ident || (tok.text != "unwrap" && tok.text != "expect") {
        return;
    }
    let called = tokens.get(i + 1).is_some_and(|t| t.text == "(");
    let via_method = i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "::");
    if called && via_method {
        out.push(Finding {
            rule: "no-unwrap-in-lib",
            path: path.to_string(),
            line: tok.line,
            message: format!(
                "`{}()` in library code turns bad input into a mid-campaign panic; propagate a \
                 Result (an internal invariant may keep expect() with an allow + justification)",
                tok.text
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/core/src/sim.rs";

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> = lint_file(path, src).into_iter().map(|f| f.rule).collect();
        rules.dedup();
        rules
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/desim/src/flow.rs").crate_name, "desim");
        assert!(classify("crates/desim/src/flow.rs").is_lib);
        assert!(!classify("crates/desim/tests/proptests.rs").is_lib);
        assert!(!classify("crates/cli/src/main.rs").is_lib);
        assert!(!classify("crates/bench/benches/engine.rs").is_lib);
        assert_eq!(classify("src/lib.rs").crate_name, "");
        assert_eq!(classify("tests/determinism.rs").crate_name, "");
    }

    #[test]
    fn hashmap_flagged_in_sim_crates_only() {
        let src = "use std::collections::HashMap;";
        assert_eq!(rules_fired(LIB, src), vec!["no-randomized-maps"]);
        assert!(rules_fired("crates/cli/src/commands.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_flagged_outside_bench_crates() {
        let src = "let t = std::time::Instant::now();";
        assert_eq!(rules_fired(LIB, src), vec!["no-wall-clock"]);
        assert_eq!(rules_fired("crates/cli/src/main.rs", src), vec!["no-wall-clock"]);
        assert!(rules_fired("crates/criterion/src/lib.rs", src).is_empty());
        assert!(rules_fired("crates/bench/benches/engine.rs", src).is_empty());
    }

    #[test]
    fn float_eq_detection() {
        assert_eq!(rules_fired(LIB, "if x == 0.0 {}"), vec!["no-float-eq"]);
        assert_eq!(rules_fired(LIB, "if 1.5 != y {}"), vec!["no-float-eq"]);
        assert_eq!(rules_fired(LIB, "if x == -1.0 {}"), vec!["no-float-eq"]);
        assert_eq!(rules_fired(LIB, "if x == f64::NAN {}"), vec!["no-float-eq"]);
        // Integer comparisons and orderings are fine.
        assert!(rules_fired(LIB, "if x == 0 {}").is_empty());
        assert!(rules_fired(LIB, "if x <= 0.0 {}").is_empty());
    }

    #[test]
    fn time_cast_heuristic() {
        assert_eq!(
            rules_fired(LIB, "let ns = (dt_secs * 1e9) as u64;"),
            vec!["no-lossy-time-cast"]
        );
        assert_eq!(
            rules_fired(LIB, "let s = t.as_nanos() as f64;"),
            vec!["no-lossy-time-cast"]
        );
        // A writer-count cast has no time semantics.
        assert!(rules_fired(LIB, "let w = nodes as f64;").is_empty());
        // The blessed module is allowlisted.
        assert!(rules_fired("crates/desim/src/time.rs", "let s = ns as f64 / 1e9;").is_empty());
    }

    #[test]
    fn unwrap_scoping() {
        let src = "let x = opt.unwrap();";
        assert_eq!(rules_fired(LIB, src), vec!["no-unwrap-in-lib"]);
        assert_eq!(rules_fired(LIB, "let x = res.expect(\"m\");"), vec!["no-unwrap-in-lib"]);
        // Test files, test mods, and non-sim crates are out of scope.
        assert!(rules_fired("crates/core/tests/x.rs", src).is_empty());
        assert!(rules_fired("crates/cli/src/commands.rs", src).is_empty());
        let in_test_mod = "#[cfg(test)]\nmod tests {\n  fn f() { opt.unwrap(); }\n}";
        assert!(rules_fired(LIB, in_test_mod).is_empty());
        let test_fn = "#[test]\nfn f() { opt.unwrap(); }";
        assert!(rules_fired(LIB, test_fn).is_empty());
        // Code after a test item is back in scope.
        let after = "#[test]\nfn f() { opt.unwrap(); }\nfn g() { opt.unwrap(); }";
        let findings = lint_file(LIB, after);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn inline_allow_suppresses_same_and_next_line() {
        let same = "let x = opt.unwrap(); // simlint: allow(no-unwrap-in-lib)";
        assert!(lint_file(LIB, same).is_empty());
        let above = "// invariant: set in init. simlint: allow(no-unwrap-in-lib)\nlet x = opt.unwrap();";
        assert!(lint_file(LIB, above).is_empty());
        // The allow is rule-specific.
        let wrong = "let x = opt.unwrap(); // simlint: allow(no-float-eq)";
        assert_eq!(lint_file(LIB, wrong).len(), 1);
    }

    #[test]
    fn hot_loop_alloc_detection() {
        let vec_new = "// simlint: hot\nfn step(out: &mut Vec<u64>) {\n    let mut s = Vec::new();\n    s.push(1);\n}";
        assert_eq!(rules_fired(LIB, vec_new), vec!["no-alloc-in-hot-loop"]);
        let box_new = "// simlint: hot\nfn step() { let b = Box::new(3_u64); }";
        assert_eq!(rules_fired(LIB, box_new), vec!["no-alloc-in-hot-loop"]);
        let cap = "// simlint: hot\nfn step() { let q = EventQueue::with_capacity(64); }";
        assert_eq!(rules_fired(LIB, cap), vec!["no-alloc-in-hot-loop"]);
        // Line points at the allocation, not the marker.
        let f = lint_file(LIB, vec_new);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn hot_loop_scope_is_the_marked_fn_only() {
        // Unmarked functions may allocate freely.
        assert!(rules_fired(LIB, "fn cold() { let v: Vec<u8> = Vec::new(); }").is_empty());
        // Only the first fn after the marker is in scope.
        let next_fn = "// simlint: hot\nfn a() { step(); }\nfn b() { let v: Vec<u8> = Vec::new(); }";
        assert!(rules_fired(LIB, next_fn).is_empty());
        // Const, storage-free constructors pass.
        let smallmap = "// simlint: hot\nfn a(m: &mut SmallMap<u32, u64>) { let n = SmallMap::new(); }";
        assert!(rules_fired(LIB, smallmap).is_empty());
        // Outside sim-semantic crates the marker is inert.
        assert!(
            rules_fired("crates/cli/src/commands.rs", "// simlint: hot\nfn a() { let v: Vec<u8> = Vec::new(); }")
                .is_empty()
        );
        // Test-gated hot fns are the allocator test's business, not ours.
        let in_tests = "#[cfg(test)]\nmod tests {\n    // simlint: hot\n    fn f() { let v: Vec<u8> = Vec::new(); }\n}";
        assert!(rules_fired(LIB, in_tests).is_empty());
        // An inline allow with justification suppresses as usual.
        let allowed = "// simlint: hot\nfn a() {\n    // one-time lazy init. simlint: allow(no-alloc-in-hot-loop)\n    let v: Vec<u8> = Vec::new();\n}";
        assert!(rules_fired(LIB, allowed).is_empty());
    }

    #[test]
    fn mentions_in_comments_and_strings_do_not_fire() {
        let src = "// HashMap would break determinism\nlet s = \"Instant::now\";";
        assert!(lint_file(LIB, src).is_empty());
    }
}

//! The cross-file call graph.
//!
//! Nodes are fn items across every file in a [`crate::Workspace`];
//! edges are name-resolved call sites. Resolution is deliberately an
//! *over-approximation* — simlint has no type information, so a method
//! call `x.reset()` gets an edge to every workspace method named
//! `reset`. That is the right bias for the rules built on top: the hot
//! closure and the taint pass must never miss a real path, and spurious
//! edges surface as findings a human dismisses with a justified
//! `simlint: allow`, not as silent gaps.
//!
//! Resolution per [`CallKind`]:
//!
//! * `Free` — all free fns with the callee's name;
//! * `Method` — all impl-block methods with the name, any type;
//! * `Path(Q)` — methods of type `Q` with the name (with `Self`
//!   rewritten to the caller's impl type); if `Q` names no workspace
//!   type, it is treated as a module path and falls back to free fns
//!   (`time::to_nanos` → free fn `to_nanos`).
//!
//! Traversals are plain BFS over a visited set, so recursion cycles
//! terminate by construction; each visit records its predecessor so
//! rules can print the full call chain in findings.

use std::collections::BTreeMap;

use crate::items::{CallKind, FnItem};
use crate::SourceFile;

/// A fn node: `(file index, fn index within the file)` flattened.
pub type NodeId = usize;

/// Where a node lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef {
    /// Index into the workspace's file list.
    pub file: usize,
    /// Index into that file's `items.fns`.
    pub fn_idx: usize,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Node id → location.
    pub nodes: Vec<NodeRef>,
    /// Forward edges: node → callees (deduped, sorted).
    pub callees: Vec<Vec<NodeId>>,
    /// Reverse edges: node → callers (deduped, sorted).
    pub callers: Vec<Vec<NodeId>>,
    /// `(file, fn_idx)` → node id.
    index: BTreeMap<(usize, usize), NodeId>,
}

impl CallGraph {
    /// Builds the graph over every fn in `files`.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut g = CallGraph::default();

        // Nodes + name maps.
        let mut free_fns: BTreeMap<&str, Vec<NodeId>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<NodeId>> = BTreeMap::new();
        let mut methods_by_qual: BTreeMap<(&str, &str), Vec<NodeId>> = BTreeMap::new();
        for (file, sf) in files.iter().enumerate() {
            for (fn_idx, f) in sf.items.fns.iter().enumerate() {
                let id = g.nodes.len();
                g.nodes.push(NodeRef { file, fn_idx });
                g.index.insert((file, fn_idx), id);
                match &f.impl_type {
                    Some(ty) => {
                        methods_by_name.entry(&f.name).or_default().push(id);
                        methods_by_qual.entry((ty, &f.name)).or_default().push(id);
                    }
                    None => free_fns.entry(&f.name).or_default().push(id),
                }
            }
        }
        g.callees = vec![Vec::new(); g.nodes.len()];
        g.callers = vec![Vec::new(); g.nodes.len()];

        // Edges.
        for (file, sf) in files.iter().enumerate() {
            for call in &sf.items.calls {
                let Some(&from) = g.index.get(&(file, call.caller)) else {
                    continue;
                };
                let caller_item = &sf.items.fns[call.caller];
                let targets: &[NodeId] = match &call.kind {
                    CallKind::Free => free_fns
                        .get(call.name.as_str())
                        .map(Vec::as_slice)
                        .unwrap_or(&[]),
                    CallKind::Method => methods_by_name
                        .get(call.name.as_str())
                        .map(Vec::as_slice)
                        .unwrap_or(&[]),
                    CallKind::Path(qual) => {
                        let qual: &str = if qual == "Self" {
                            caller_item.impl_type.as_deref().unwrap_or("Self")
                        } else {
                            qual
                        };
                        match methods_by_qual.get(&(qual, call.name.as_str())) {
                            Some(v) => v.as_slice(),
                            // Unknown qualifier: could be a module path
                            // (`time::to_nanos`) — fall back to free fns.
                            None => free_fns
                                .get(call.name.as_str())
                                .map(Vec::as_slice)
                                .unwrap_or(&[]),
                        }
                    }
                };
                for &to in targets {
                    g.callees[from].push(to);
                    g.callers[to].push(from);
                }
            }
        }
        for adj in g.callees.iter_mut().chain(g.callers.iter_mut()) {
            adj.sort_unstable();
            adj.dedup();
        }
        g
    }

    /// Node id for `(file, fn_idx)`.
    pub fn node(&self, file: usize, fn_idx: usize) -> Option<NodeId> {
        self.index.get(&(file, fn_idx)).copied()
    }

    /// The fn item a node refers to.
    pub fn item<'a>(&self, files: &'a [SourceFile], id: NodeId) -> &'a FnItem {
        let r = self.nodes[id];
        &files[r.file].items.fns[r.fn_idx]
    }

    /// BFS over `edges` (callees for forward, callers for reverse) from
    /// `roots`, returning `parent[n] = Some(predecessor)` for every
    /// reached node (roots map to `None`). `expand` gates whether a
    /// reached node's own edges are followed — a node for which it
    /// returns `false` is still *reached* (and appears in the map) but
    /// acts as a barrier.
    pub fn reach(
        &self,
        edges: &[Vec<NodeId>],
        roots: &[NodeId],
        mut expand: impl FnMut(NodeId) -> bool,
    ) -> BTreeMap<NodeId, Option<NodeId>> {
        let mut parent: BTreeMap<NodeId, Option<NodeId>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
        for &r in roots {
            if parent.insert(r, None).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            if !expand(n) {
                continue;
            }
            for &next in &edges[n] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(next) {
                    e.insert(Some(n));
                    queue.push_back(next);
                }
            }
        }
        parent
    }

    /// Reconstructs the chain `root → … → n` as fn names, given a
    /// parent map from [`CallGraph::reach`].
    pub fn chain(
        &self,
        files: &[SourceFile],
        parent: &BTreeMap<NodeId, Option<NodeId>>,
        mut n: NodeId,
    ) -> Vec<String> {
        let mut names = vec![self.qualified_name(files, n)];
        while let Some(Some(p)) = parent.get(&n) {
            names.push(self.qualified_name(files, *p));
            n = *p;
        }
        names.reverse();
        names
    }

    /// `Type::name` for methods, `name` for free fns.
    pub fn qualified_name(&self, files: &[SourceFile], id: NodeId) -> String {
        let item = self.item(files, id);
        match &item.impl_type {
            Some(ty) => format!("{}::{}", ty, item.name),
            None => item.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        )
    }

    fn find(ws: &Workspace, g: &CallGraph, name: &str) -> NodeId {
        for (file, sf) in ws.files.iter().enumerate() {
            for (fn_idx, f) in sf.items.fns.iter().enumerate() {
                if f.name == name {
                    return g.node(file, fn_idx).expect("node");
                }
            }
        }
        panic!("no fn named {name}");
    }

    #[test]
    fn cross_file_free_fn_resolution() {
        let ws = ws(&[
            ("crates/a/src/lib.rs", "pub fn caller() { helper(); }"),
            ("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        let g = CallGraph::build(&ws.files);
        let caller = find(&ws, &g, "caller");
        let helper = find(&ws, &g, "helper");
        assert_eq!(g.callees[caller], vec![helper]);
        assert_eq!(g.callers[helper], vec![caller]);
    }

    #[test]
    fn method_vs_free_fn_resolution() {
        let ws = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn reset() {}\n\
             pub struct A;\n\
             impl A { pub fn reset(&mut self) {} }\n\
             pub struct B;\n\
             impl B { pub fn reset(&mut self) {} }\n\
             fn use_method(a: &mut A) { a.reset(); }\n\
             fn use_free() { reset(); }\n\
             fn use_qual(a: &mut A) { A::reset(a); }",
        )]);
        let g = CallGraph::build(&ws.files);
        let free = find(&ws, &g, "reset"); // first: the free fn
        let use_method = find(&ws, &g, "use_method");
        let use_free = find(&ws, &g, "use_free");
        let use_qual = find(&ws, &g, "use_qual");
        // Method call: both A::reset and B::reset (over-approx), never
        // the free fn.
        assert_eq!(g.callees[use_method].len(), 2);
        assert!(!g.callees[use_method].contains(&free));
        // Free call: only the free fn.
        assert_eq!(g.callees[use_free], vec![free]);
        // Qualified call: exactly A::reset.
        assert_eq!(g.callees[use_qual].len(), 1);
        assert!(!g.callees[use_qual].contains(&free));
    }

    #[test]
    fn self_qualifier_resolves_to_impl_type() {
        let ws = ws(&[(
            "crates/a/src/lib.rs",
            "struct A;\n\
             struct B;\n\
             impl A { fn make() -> A { A } fn build() -> A { Self::make() } }\n\
             impl B { fn make() -> B { B } }",
        )]);
        let g = CallGraph::build(&ws.files);
        let build = find(&ws, &g, "build");
        // Self::make resolves to A::make only, not B::make.
        assert_eq!(g.callees[build].len(), 1);
        let target = g.callees[build][0];
        assert_eq!(g.qualified_name(&ws.files, target), "A::make");
    }

    #[test]
    fn module_path_falls_back_to_free_fns() {
        let ws = ws(&[
            ("crates/a/src/lib.rs", "fn caller() { time::to_nanos(1.0); }"),
            ("crates/b/src/time.rs", "pub fn to_nanos(s: f64) -> u64 { 0 }"),
        ]);
        let g = CallGraph::build(&ws.files);
        let caller = find(&ws, &g, "caller");
        let callee = find(&ws, &g, "to_nanos");
        assert_eq!(g.callees[caller], vec![callee]);
    }

    #[test]
    fn recursion_cycle_terminates() {
        let ws = ws(&[(
            "crates/a/src/lib.rs",
            "fn ping(n: u32) { if n > 0 { pong(n - 1); } }\n\
             fn pong(n: u32) { ping(n); }\n\
             fn rec(n: u32) { rec(n); }",
        )]);
        let g = CallGraph::build(&ws.files);
        let ping = find(&ws, &g, "ping");
        let pong = find(&ws, &g, "pong");
        let rec = find(&ws, &g, "rec");
        let reached = g.reach(&g.callees, &[ping], |_| true);
        assert!(reached.contains_key(&pong));
        assert_eq!(reached[&pong], Some(ping));
        let self_loop = g.reach(&g.callees, &[rec], |_| true);
        assert_eq!(self_loop.len(), 1, "self-recursion reaches only itself");
    }

    #[test]
    fn reach_barrier_stops_expansion() {
        let ws = ws(&[(
            "crates/a/src/lib.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}",
        )]);
        let g = CallGraph::build(&ws.files);
        let (a, b, c) = (find(&ws, &g, "a"), find(&ws, &g, "b"), find(&ws, &g, "c"));
        let reached = g.reach(&g.callees, &[a], |n| n != b);
        assert!(reached.contains_key(&b), "barrier node is still reached");
        assert!(!reached.contains_key(&c), "but not expanded through");
        let _ = (a, c);
    }

    #[test]
    fn chain_reconstruction() {
        let ws = ws(&[(
            "crates/a/src/lib.rs",
            "fn top() { mid(); }\nfn mid() { leaf(); }\nstruct S;\nimpl S {}\nfn leaf() {}",
        )]);
        let g = CallGraph::build(&ws.files);
        let top = find(&ws, &g, "top");
        let leaf = find(&ws, &g, "leaf");
        let parent = g.reach(&g.callees, &[top], |_| true);
        assert_eq!(g.chain(&ws.files, &parent, leaf), vec!["top", "mid", "leaf"]);
    }
}

// Seeded violation for the `no-alloc-in-hot-loop` rule: a fresh Vec
// built inside a function marked as steady-state hot-path code.
// simlint: hot
pub fn hot_loop_step(xs: &[u64]) -> usize {
    let mut scratch = Vec::new();
    scratch.extend(xs.iter().copied());
    scratch.len()
}

// Seeded violation for the transitive mode of `no-alloc-in-hot-loop`:
// the hot fn itself is allocation-free, but a helper two call-graph hops
// away (and in another file) builds a fresh Vec. The per-file scanner of
// v1 could not see this; the call-graph pass must.
mod helpers;

// simlint: hot
pub fn hot_entry(xs: &[u64]) -> usize {
    helpers::stage_one(xs)
}

// Hop one: clean. Hop two: allocates.
pub fn stage_one(xs: &[u64]) -> usize {
    stage_two(xs)
}

fn stage_two(xs: &[u64]) -> usize {
    let mut scratch = Vec::new();
    scratch.extend(xs.iter().copied());
    scratch.len()
}

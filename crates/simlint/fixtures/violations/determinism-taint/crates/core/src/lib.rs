// Seeded violation for `determinism-taint`: an environment variable —
// a per-process nondeterminism source — flows through a helper into a
// digest fn. No `// simlint: config` sanctions the read, so the taint
// pass must flag the sink.
fn read_tuning_knob() -> u64 {
    std::env::var("PCKPT_KNOB")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

pub fn campaign_digest(seed: u64) -> u64 {
    seed.wrapping_mul(0x9e3779b97f4a7c15) ^ read_tuning_knob()
}

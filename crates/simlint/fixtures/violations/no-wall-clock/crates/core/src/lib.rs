// Seeded violation for the `no-wall-clock` rule: an Instant::now()
// read outside the bench crates.
pub fn stamp_micros() -> u128 {
    std::time::Instant::now().elapsed().as_micros()
}

// Seeded violation for the `no-unwrap-in-lib` rule: an unwrap() in a
// sim crate's library code.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

// Seeded violation for the `no-float-eq` rule: exact equality against
// a float literal in library code.
pub fn is_done(progress: f64) -> bool {
    progress == 1.0
}

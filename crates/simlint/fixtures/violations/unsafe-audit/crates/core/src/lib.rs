// Seeded violation for `unsafe-audit`: an unsafe block with no safety
// comment naming the invariant it relies on.
pub fn read_first(xs: &[u64]) -> u64 {
    let p = xs.as_ptr();
    unsafe { *p }
}

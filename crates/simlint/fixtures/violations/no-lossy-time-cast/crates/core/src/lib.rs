// Seeded violation for the `no-lossy-time-cast` rule: a raw `as u64`
// nanosecond conversion outside desim::time's blessed helpers.
pub fn to_nanos(dt_secs: f64) -> u64 {
    (dt_secs * 1e9) as u64
}

// Seeded violation for the `no-randomized-maps` rule: a HashMap in a
// sim-semantic crate's library code.
pub fn build() -> std::collections::HashMap<u32, f64> {
    Default::default()
}

//! Campaign request parsing: config JSON in, a grid sweep out.
//!
//! A request names an experiment sweep the same way the bench harness
//! builds one: applications × lead-time scales, a model list, and the
//! execution knobs (runs, seed, VR mode, prefilter, threads). Example:
//!
//! ```json
//! {
//!   "name": "fig4",
//!   "apps": ["CHIMERA", "XGC", "POP"],
//!   "scales": [1.5, 1.1, 0.9, 0.5],
//!   "models": ["B", "M2"],
//!   "runs": 200,
//!   "seed": 20220530,
//!   "vr": "antithetic",
//!   "prefilter": "analytic:0.15",
//!   "dist": "titan",
//!   "fn_rate": 0.15,
//!   "lm_alpha": 1.0,
//!   "threads": 0
//! }
//! ```
//!
//! Only `apps` (or singular `app`) is required. Cells are labelled
//! `"{app}@{scale}"`, matching the bench harness, and enumerate
//! app-major (every scale of the first app, then the next app) so the
//! request text canonically determines cell order — and with it the
//! campaign fingerprint the sweep journal binds to.

use pckpt_core::{
    parse_vr_spec, GridCell, ModelKind, Prefilter, RunnerConfig, SimParams,
};
use pckpt_failure::FailureDistribution;
use pckpt_workloads::Application;

use crate::json::{parse, Json};

/// A parsed, validated campaign request.
#[derive(Debug, Clone)]
pub struct CampaignRequest {
    /// Display name (also names the journal and response artifacts).
    pub name: String,
    /// The sweep's cells, in canonical request order.
    pub cells: Vec<GridCell>,
    /// Execution configuration (runs, seed, VR, threads).
    pub config: RunnerConfig,
    /// Analytic prefilter, if requested.
    pub prefilter: Option<Prefilter>,
}

fn str_list(doc: &Json, plural: &str, singular: &str) -> Result<Vec<String>, String> {
    if let Some(arr) = doc.get(plural).and_then(Json::as_arr) {
        let mut out = Vec::with_capacity(arr.len());
        for v in arr {
            out.push(
                v.as_str()
                    .ok_or_else(|| format!("'{plural}' entries must be strings"))?
                    .to_string(),
            );
        }
        return Ok(out);
    }
    if let Some(one) = doc.get(singular).and_then(Json::as_str) {
        return Ok(vec![one.to_string()]);
    }
    Ok(Vec::new())
}

/// Parses and validates one request document.
pub fn parse_request(text: &str) -> Result<CampaignRequest, String> {
    let doc = parse(text)?;
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("campaign")
        .to_string();

    let apps = str_list(&doc, "apps", "app")?;
    if apps.is_empty() {
        return Err("request needs 'app' or 'apps'".into());
    }
    let apps: Vec<Application> = apps
        .iter()
        .map(|n| Application::by_name(n).ok_or_else(|| format!("unknown application '{n}'")))
        .collect::<Result<_, _>>()?;

    let scales: Vec<f64> = match doc.get("scales").and_then(Json::as_arr) {
        Some(arr) => arr
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| "'scales' entries must be numbers".to_string()))
            .collect::<Result<_, _>>()?,
        None => vec![doc.get("scale").and_then(Json::as_f64).unwrap_or(1.0)],
    };
    if scales.iter().any(|s| !s.is_finite() || *s <= 0.0) {
        return Err("'scales' must be positive and finite".into());
    }

    let model_names = {
        let list = str_list(&doc, "models", "model")?;
        if list.is_empty() {
            vec!["B".to_string(), "P2".to_string()]
        } else {
            list
        }
    };
    let models: Vec<ModelKind> = model_names
        .iter()
        .map(|n| ModelKind::by_name(n).ok_or_else(|| format!("unknown model '{n}'")))
        .collect::<Result<_, _>>()?;

    let dist = match doc.get("dist").and_then(Json::as_str) {
        Some(key) => Some(
            FailureDistribution::by_name(key)
                .ok_or_else(|| format!("unknown failure distribution '{key}'"))?,
        ),
        None => None,
    };
    let fn_rate = doc.get("fn_rate").and_then(Json::as_f64);
    let lm_alpha = doc.get("lm_alpha").and_then(Json::as_f64);

    let runs = doc.get("runs").and_then(Json::as_u64).unwrap_or(20) as usize;
    if runs == 0 {
        return Err("'runs' must be at least 1".into());
    }
    let seed = doc.get("seed").and_then(Json::as_u64).unwrap_or(20_220_530);
    let mut config = RunnerConfig::new(runs, seed);
    if let Some(threads) = doc.get("threads").and_then(Json::as_u64) {
        config.threads = threads as usize;
    }
    if let Some(spec) = doc.get("vr").and_then(Json::as_str) {
        config.vr =
            parse_vr_spec(spec).ok_or_else(|| format!("unknown VR spec '{spec}'"))?;
    }

    let prefilter = match doc.get("prefilter").and_then(Json::as_str) {
        Some(spec) => Some(
            Prefilter::parse(spec).ok_or_else(|| format!("unknown prefilter spec '{spec}'"))?,
        ),
        None => None,
    };

    let mut cells = Vec::with_capacity(apps.len() * scales.len());
    for app in &apps {
        for &scale in &scales {
            let mut params = match dist {
                Some(d) => SimParams::with_distribution(ModelKind::B, *app, d),
                None => SimParams::paper_defaults(ModelKind::B, *app),
            };
            params.lead_scale = scale;
            if let Some(fnr) = fn_rate {
                params.predictor = params.predictor.with_false_negative_rate(fnr);
            }
            if let Some(alpha) = lm_alpha {
                params.lm_transfer_factor = alpha;
            }
            cells.push(
                GridCell::new(params, &models).with_label(format!("{}@{scale}", app.name)),
            );
        }
    }

    Ok(CampaignRequest {
        name,
        cells,
        config,
        prefilter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let req = parse_request(
            r#"{"name":"fig4","apps":["XGC","POP"],"scales":[1.5,0.5],
                "models":["B","M2"],"runs":6,"seed":61,"vr":"antithetic",
                "prefilter":"analytic:0.2","threads":1}"#,
        )
        .unwrap();
        assert_eq!(req.name, "fig4");
        assert_eq!(req.cells.len(), 4);
        assert_eq!(req.cells[0].label, "XGC@1.5");
        assert_eq!(req.cells[3].label, "POP@0.5");
        assert_eq!(req.config.runs, 6);
        assert_eq!(req.config.base_seed, 61);
        assert!(req.config.vr.antithetic);
        assert_eq!(req.config.threads, 1);
        assert!(req.prefilter.is_some());
    }

    #[test]
    fn defaults_are_sensible() {
        let req = parse_request(r#"{"app":"XGC"}"#).unwrap();
        assert_eq!(req.cells.len(), 1);
        assert_eq!(req.cells[0].models, vec![ModelKind::B, ModelKind::P2]);
        assert_eq!(req.config.runs, 20);
        assert!(!req.config.vr.is_active());
        assert!(req.prefilter.is_none());
    }

    #[test]
    fn rejects_invalid_requests() {
        for bad in [
            r#"{}"#,
            r#"{"app":"NOPE"}"#,
            r#"{"app":"XGC","models":["Q9"]}"#,
            r#"{"app":"XGC","runs":0}"#,
            r#"{"app":"XGC","scales":[-1.0]}"#,
            r#"{"app":"XGC","vr":"bogus"}"#,
            r#"{"app":"XGC","dist":"marsrover"}"#,
            r#"not json"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} accepted");
        }
    }
}

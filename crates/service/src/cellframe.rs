//! Per-cell result frames: the service's unit of persistence.
//!
//! One frame holds every `RunResult` for one grid cell (all model
//! lanes × all runs, lane-major, ascending run — the same push order
//! `fold_cell_results` replays). The byte layout reuses the shard
//! result-frame primitives from `pckpt_core::frames`, including the
//! trailing FNV-1a seal, so a frame read back from disk is either
//! bit-exact or rejected. The same bytes serve as cache entries and as
//! sweep-journal payloads.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! CELL_MAGIC  u32   "PKCL"
//! version     u16   frames::FRAME_VERSION
//! fp.hi       u64   cell fingerprint, high half
//! fp.lo       u64   cell fingerprint, low half
//! lanes       u32   model lanes in the cell
//! runs        u64   runs per lane
//! results     lanes × runs × RunResult   (frames::encode_run_result)
//! digest      u64   FNV-1a over everything above (frames::seal)
//! ```

use pckpt_core::frames::{
    check_seal, decode_run_result_into, encode_run_result, get_u16, get_u32, get_u64, put_u16,
    put_u32, put_u64, seal, FRAME_VERSION,
};
use pckpt_core::{Fingerprint, RunResult};

/// Magic prefix for cell frames ("PKCL" little-endian).
pub const CELL_MAGIC: u32 = 0x4c43_4b50;

/// A decoded cell frame: the full run set for one grid cell.
#[derive(Debug, Clone)]
pub struct CellFrame {
    /// Binding fingerprint of the cell under its execution config.
    pub fp: Fingerprint,
    /// Model lanes in the cell.
    pub lanes: u32,
    /// Runs per lane.
    pub runs: u64,
    /// Lane-major, ascending-run results (`lanes * runs` entries).
    pub results: Vec<RunResult>,
}

impl CellFrame {
    /// Encodes and seals the frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(34 + self.results.len() * 200);
        put_u32(&mut out, CELL_MAGIC);
        put_u16(&mut out, FRAME_VERSION);
        put_u64(&mut out, self.fp.hi);
        put_u64(&mut out, self.fp.lo);
        put_u32(&mut out, self.lanes);
        put_u64(&mut out, self.runs);
        for r in &self.results {
            encode_run_result(&mut out, r);
        }
        seal(out)
    }

    /// Decodes a sealed frame, verifying digest, magic, version, and
    /// structural consistency. `expect_fp` (when given) must match the
    /// embedded fingerprint — a cache file renamed onto the wrong key
    /// is rejected, not trusted.
    pub fn decode(bytes: &[u8], expect_fp: Option<Fingerprint>) -> Result<CellFrame, String> {
        let mut reader = CellFrameReader::open(bytes, expect_fp)?;
        let count = reader.lanes as u64 * reader.runs;
        let mut results = Vec::with_capacity(count as usize);
        for _ in 0..count {
            results.push(reader.next_result()?);
        }
        Ok(CellFrame {
            fp: reader.fp,
            lanes: reader.lanes,
            runs: reader.runs,
            results,
        })
    }
}

/// Incremental reader over a sealed cell frame: seal and header are
/// verified up front by [`open`](CellFrameReader::open), then each
/// [`next_result`](CellFrameReader::next_result) call decodes one
/// `RunResult` in the frame's lane-major order.
///
/// This is the warm-path counterpart to [`CellFrame::decode`]: a fold
/// can consume the frame one result at a time (via
/// `pckpt_core::fold_cell_results_with`) with a single result struct
/// live, instead of materializing `lanes × runs` of them first. The
/// seal already guarantees the bytes are exactly what `encode` wrote,
/// so deferring the per-result structural checks to consumption time
/// rejects the same inputs, just later.
pub struct CellFrameReader<'a> {
    body: &'a [u8],
    pos: usize,
    remaining: u64,
    /// Binding fingerprint embedded in the frame.
    pub fp: Fingerprint,
    /// Model lanes in the cell.
    pub lanes: u32,
    /// Runs per lane.
    pub runs: u64,
}

impl<'a> CellFrameReader<'a> {
    /// Verifies the seal and the frame header, positioning the reader
    /// at the first result. Rejects exactly what [`CellFrame::decode`]
    /// rejects up to that point (digest, magic, version, fingerprint
    /// mismatch, implausible shape).
    pub fn open(bytes: &'a [u8], expect_fp: Option<Fingerprint>) -> Result<Self, String> {
        let body = check_seal(bytes)?;
        let mut pos = 0usize;
        let magic = get_u32(body, &mut pos)?;
        if magic != CELL_MAGIC {
            return Err(format!("bad cell magic {magic:#010x}"));
        }
        let version = get_u16(body, &mut pos)?;
        if version != FRAME_VERSION {
            return Err(format!("cell frame version {version} (want {FRAME_VERSION})"));
        }
        let fp = Fingerprint {
            hi: get_u64(body, &mut pos)?,
            lo: get_u64(body, &mut pos)?,
        };
        if let Some(want) = expect_fp {
            if fp != want {
                return Err(format!(
                    "cell fingerprint mismatch: frame {} vs expected {}",
                    fp.hex(),
                    want.hex()
                ));
            }
        }
        let lanes = get_u32(body, &mut pos)?;
        let runs = get_u64(body, &mut pos)?;
        let count = (lanes as u64)
            .checked_mul(runs)
            .ok_or("cell frame lane/run overflow")?;
        if count == 0 || count > 1 << 32 {
            return Err(format!("implausible cell frame size: {lanes} lanes × {runs} runs"));
        }
        Ok(CellFrameReader {
            body,
            pos,
            remaining: count,
            fp,
            lanes,
            runs,
        })
    }

    /// Decodes the next result. Errs when the frame is exhausted, when
    /// a result is structurally damaged, or — on the final result —
    /// when trailing bytes follow it.
    pub fn next_result(&mut self) -> Result<RunResult, String> {
        let mut r = RunResult::default();
        self.next_result_into(&mut r)?;
        Ok(r)
    }

    /// [`next_result`](Self::next_result) into a caller-owned scratch
    /// value (a `RunResult` is ~2 KiB; reusing one across a frame's
    /// thousands of results keeps the warm fold allocation- and
    /// copy-free). On error the scratch contents are unspecified.
    pub fn next_result_into(&mut self, out: &mut RunResult) -> Result<(), String> {
        if self.remaining == 0 {
            return Err("cell frame exhausted".into());
        }
        decode_run_result_into(self.body, &mut self.pos, out)?;
        self.remaining -= 1;
        if self.remaining == 0 && self.pos != self.body.len() {
            return Err(format!(
                "{} trailing bytes in cell frame",
                self.body.len() - self.pos
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pckpt_core::{run_grid_with_cell_sink, GridCell, ModelKind, RunnerConfig, SimParams};
    use pckpt_workloads::Application;

    fn sample_frame() -> CellFrame {
        let app = Application::by_name("XGC").expect("table app");
        let params = SimParams::paper_defaults(ModelKind::B, app);
        let cells = vec![GridCell::new(params, &[ModelKind::B, ModelKind::P2])];
        let mut config = RunnerConfig::new(3, 7);
        config.threads = 1;
        let leads = pckpt_failure::LeadTimeModel::desh_default();
        let mut captured = None;
        run_grid_with_cell_sink(&cells, &leads, &config, &mut |cr| {
            captured = Some(CellFrame {
                fp: Fingerprint { hi: 0x1122, lo: 0x3344 },
                lanes: cr.lanes as u32,
                runs: cr.runs as u64,
                results: cr.iter().cloned().collect(),
            });
        });
        captured.expect("sink ran")
    }

    #[test]
    fn roundtrips_bit_exactly() {
        let frame = sample_frame();
        let bytes = frame.encode();
        let back = CellFrame::decode(&bytes, Some(frame.fp)).unwrap();
        assert_eq!(back.lanes, frame.lanes);
        assert_eq!(back.runs, frame.runs);
        assert_eq!(back.results.len(), frame.results.len());
        // Re-encoding the decode must reproduce the exact bytes.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn streaming_reader_yields_the_decoded_results_in_order() {
        let frame = sample_frame();
        let bytes = frame.encode();
        let mut reader = CellFrameReader::open(&bytes, Some(frame.fp)).unwrap();
        assert_eq!((reader.lanes, reader.runs), (frame.lanes, frame.runs));
        for want in &frame.results {
            let got = reader.next_result().unwrap();
            let mut a = Vec::new();
            let mut b = Vec::new();
            encode_run_result(&mut a, &got);
            encode_run_result(&mut b, want);
            assert_eq!(a, b);
        }
        assert!(reader.next_result().is_err(), "exhausted");
        let mut bad = bytes.clone();
        bad[20] ^= 1;
        assert!(CellFrameReader::open(&bad, None).is_err(), "seal still gates");
    }

    #[test]
    fn rejects_damage_and_identity_mismatch() {
        let frame = sample_frame();
        let bytes = frame.encode();
        // Truncation at any prefix fails the seal or the structure.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(CellFrame::decode(&bytes[..cut], None).is_err(), "cut {cut}");
        }
        // Single-byte corruption fails the seal.
        let mut bad = bytes.clone();
        bad[10] ^= 0x40;
        assert!(CellFrame::decode(&bad, None).is_err());
        // Wrong expected fingerprint is rejected even with a valid seal.
        let other = Fingerprint { hi: 9, lo: 9 };
        assert!(CellFrame::decode(&bytes, Some(other)).is_err());
    }
}

//! A minimal, dependency-free JSON reader for campaign requests.
//!
//! The build environment has no registry access, so the request format
//! is parsed by a small recursive-descent reader instead of `serde`.
//! It accepts the JSON the service documents (objects, arrays, strings,
//! numbers, booleans, null; `\uXXXX` escapes limited to the BMP) and
//! keeps object members in document order, so parsing is deterministic.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON numbers are doubles here).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // Exact integrality check on a parsed literal, not a
            // computed float. simlint: allow(no-float-eq)
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                    }
                    other => return Err(format!("unknown escape '\\{}'", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (requests are valid UTF-8:
                // they arrive as &str).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                let ch = s.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shaped_documents() {
        let doc = r#"{"name":"fig4","apps":["XGC","POP"],"scales":[1.5,0.5],
                      "runs":6,"seed":61,"vr":"antithetic","deep":{"ok":true},
                      "neg":-1.5e2,"null":null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("fig4"));
        assert_eq!(v.get("runs").and_then(Json::as_u64), Some(6));
        assert_eq!(v.get("neg").and_then(Json::as_f64), Some(-150.0));
        assert_eq!(v.get("deep").and_then(|d| d.get("ok")).and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("null"), Some(&Json::Null));
        let apps = v.get("apps").and_then(Json::as_arr).unwrap();
        assert_eq!(apps.len(), 2);
        assert_eq!(v.get("scales").and_then(Json::as_arr).map(|a| a.len()), Some(2));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "{\"a\":1}x", "\"\\q\"", "1.2.3"] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse("\"a\\n\\t\\u0041\\\\\"").unwrap();
        assert_eq!(v.as_str(), Some("a\n\tA\\"));
        assert_eq!(escape("a\n\"b\\"), "a\\n\\\"b\\\\");
    }
}

//! The wire layer: a line-oriented protocol over a Unix socket, plus
//! the in-process `respond` entry the CLI's `once` mode shares.
//!
//! Request: one JSON document (see [`crate::request`]) terminated by a
//! newline or EOF. Response, line by line:
//!
//! ```text
//! CELL_JSON {...}      one per input cell, input order
//! SERVICE_JSON {...}   grid meta_json + cache/journal accounting
//! DIGEST <hex32>       the campaign digest (see `grid_digest`)
//! OK                   terminator (or: ERR <message> alone)
//! ```
//!
//! `CELL_JSON` carries both human-readable means and `hours_bits`, the
//! exact f64 bit patterns, so clients can verify bit-identical replay
//! without parsing floats.

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::Arc;

use crate::json::escape;
use crate::request::parse_request;
use crate::service::Service;
use crate::grid_digest;

/// Serves one request text, in-process.
pub fn respond(req_text: &str, service: &Service) -> String {
    match respond_inner(req_text, service) {
        Ok(body) => body,
        Err(e) => format!("ERR {}\n", e.replace('\n', " ")),
    }
}

fn respond_inner(req_text: &str, service: &Service) -> Result<String, String> {
    let req = parse_request(req_text)?;
    let outcome = service.execute(&req)?;
    let grid = &outcome.grid;
    let mut out = String::new();
    for (i, campaign) in grid.cells.iter().enumerate() {
        let pruned = grid.analytic_verdicts[i].is_some();
        let models: Vec<String> = campaign
            .models
            .iter()
            .map(|m| format!("\"{}\"", m.name()))
            .collect();
        let mut hours = Vec::new();
        let mut ratios = Vec::new();
        let mut bits = Vec::new();
        for agg in &campaign.aggregates {
            hours.push(format!("{:.6}", agg.total_hours.mean()));
            ratios.push(format!("{:.6}", agg.ft_ratio_pooled()));
            bits.push(format!("\"{:016x}\"", agg.total_hours.mean().to_bits()));
        }
        out.push_str(&format!(
            "CELL_JSON {{\"label\":\"{}\",\"pruned\":{pruned},\"models\":[{}],\
             \"runs\":{},\"ci_rel\":{:.6},\"total_hours\":[{}],\"ft_ratio\":[{}],\
             \"hours_bits\":[{}]}}\n",
            escape(&grid.labels[i]),
            models.join(","),
            grid.cell_runs[i],
            grid.cell_ci_rel[i],
            hours.join(","),
            ratios.join(","),
            bits.join(","),
        ));
    }
    out.push_str(&format!("SERVICE_JSON {}\n", outcome.meta_json(&req.name)));
    out.push_str(&format!("DIGEST {}\n", grid_digest(grid).hex()));
    out.push_str("OK\n");
    Ok(out)
}

/// Accepts connections on `socket_path` until `max_requests` (if any)
/// have been served. Each connection carries one request line; the
/// response is streamed back and the connection closed. Connections
/// are handled on their own threads so identical concurrent requests
/// actually exercise single-flight coalescing.
pub fn serve_unix(
    socket_path: &Path,
    service: Arc<Service>,
    max_requests: Option<usize>,
) -> Result<(), String> {
    let _ = std::fs::remove_file(socket_path);
    let listener = UnixListener::bind(socket_path)
        .map_err(|e| format!("bind {}: {e}", socket_path.display()))?;
    let mut served = 0usize;
    let mut workers = Vec::new();
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => return Err(format!("accept: {e}")),
        };
        let service = Arc::clone(&service);
        workers.push(std::thread::spawn(move || handle(stream, &service)));
        served += 1;
        if let Some(cap) = max_requests {
            if served >= cap {
                break;
            }
        }
    }
    for w in workers {
        let _ = w.join();
    }
    let _ = std::fs::remove_file(socket_path);
    Ok(())
}

fn handle(stream: UnixStream, service: &Service) {
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.trim().is_empty() {
        let _ = (&stream).write_all(b"ERR empty request\n");
        return;
    }
    let body = respond(line.trim(), service);
    let _ = (&stream).write_all(body.as_bytes());
    let _ = (&stream).flush();
}

/// Client side: submits one request line to a daemon and returns the
/// raw response text.
pub fn submit_unix(socket_path: &Path, req_text: &str) -> Result<String, String> {
    let mut stream = UnixStream::connect(socket_path)
        .map_err(|e| format!("connect {}: {e}", socket_path.display()))?;
    let line = req_text.replace('\n', " ");
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("send: {e}"))?;
    stream
        .shutdown(std::net::Shutdown::Write)
        .map_err(|e| format!("shutdown: {e}"))?;
    let mut body = String::new();
    stream
        .read_to_string(&mut body)
        .map_err(|e| format!("recv: {e}"))?;
    Ok(body)
}

//! Content-addressed cell store: sealed cell frames on disk, keyed by
//! fingerprint.
//!
//! Layout under the cache directory (`PCKPT_CACHE_DIR`):
//!
//! ```text
//! <fp-hex32>.cell   sealed CellFrame bytes, named by their fingerprint
//! index.log         one fingerprint hex per line, insertion order
//! ```
//!
//! The store is deliberately dumb: it never interprets frame bytes
//! (callers validate via [`crate::cellframe::CellFrame::decode`], so a
//! corrupt or truncated file degrades to a cache miss, never a wrong
//! answer), and it never fsyncs (durability belongs to the sweep
//! journal; the cache is a performance layer that may lose recent
//! entries on power cut). Writes go through a scratch file plus
//! rename, so concurrent daemons sharing a directory see either the
//! old state or a complete frame. `index.log` only orders eviction:
//! when entries exceed `PCKPT_CACHE_MAX`, the oldest are removed.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use pckpt_core::Fingerprint;

/// Monotonic scratch-name counter (no wall clock in sim crates).
static SCRATCH: AtomicU64 = AtomicU64::new(0);

/// The on-disk cell store. `dir = None` disables persistence (every
/// lookup misses, every put is a no-op) — the service still works via
/// single-flight and the journal.
pub struct CellStore {
    dir: Option<PathBuf>,
    max_entries: usize,
    /// Insertion-ordered fingerprints, mirroring `index.log`.
    index: Mutex<Vec<Fingerprint>>,
}

impl CellStore {
    /// Opens (creating if needed) a store in `dir`, retaining at most
    /// `max_entries` cells.
    pub fn open(dir: Option<&Path>, max_entries: usize) -> Result<CellStore, String> {
        let Some(dir) = dir else {
            return Ok(CellStore {
                dir: None,
                max_entries,
                index: Mutex::new(Vec::new()),
            });
        };
        fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let mut index = Vec::new();
        let log = dir.join("index.log");
        if let Ok(text) = fs::read_to_string(&log) {
            for line in text.lines() {
                if let Some(fp) = Fingerprint::from_hex(line.trim()) {
                    if !index.contains(&fp) {
                        index.push(fp);
                    }
                }
            }
        }
        Ok(CellStore {
            dir: Some(dir.to_path_buf()),
            max_entries,
            index: Mutex::new(index),
        })
    }

    /// The path a fingerprint's frame lives at, if persistence is on.
    pub fn entry_path(&self, fp: Fingerprint) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{}.cell", fp.hex())))
    }

    /// Reads the raw frame bytes for `fp`. Missing file (or disabled
    /// store) is a miss; callers must still validate the bytes.
    pub fn get(&self, fp: Fingerprint) -> Option<Vec<u8>> {
        fs::read(self.entry_path(fp)?).ok()
    }

    /// Persists sealed frame bytes under `fp`, evicting the oldest
    /// entries beyond the cap. Already-present entries are left alone
    /// (content-addressed: same key ⇒ same bytes).
    pub fn put(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), String> {
        let Some(dir) = self.dir.as_ref() else {
            return Ok(());
        };
        let path = dir.join(format!("{}.cell", fp.hex()));
        let mut index = self.index.lock().unwrap_or_else(PoisonError::into_inner);
        if !index.contains(&fp) || !path.exists() {
            let scratch = dir.join(format!(
                ".tmp-{}-{}",
                std::process::id(),
                SCRATCH.fetch_add(1, Ordering::Relaxed)
            ));
            fs::write(&scratch, bytes).map_err(|e| format!("write {}: {e}", scratch.display()))?;
            fs::rename(&scratch, &path)
                .map_err(|e| format!("rename {}: {e}", path.display()))?;
            if !index.contains(&fp) {
                index.push(fp);
            }
        }
        while index.len() > self.max_entries {
            let oldest = index.remove(0);
            let victim = dir.join(format!("{}.cell", oldest.hex()));
            let _ = fs::remove_file(victim);
        }
        self.rewrite_index(dir, &index)
    }

    fn rewrite_index(&self, dir: &Path, index: &[Fingerprint]) -> Result<(), String> {
        let log = dir.join("index.log");
        let scratch = dir.join(format!(
            ".tmp-index-{}-{}",
            std::process::id(),
            SCRATCH.fetch_add(1, Ordering::Relaxed)
        ));
        let mut out = Vec::with_capacity(index.len() * 33);
        for fp in index {
            out.write_all(fp.hex().as_bytes()).map_err(|e| e.to_string())?;
            out.push(b'\n');
        }
        fs::write(&scratch, &out).map_err(|e| format!("write {}: {e}", scratch.display()))?;
        fs::rename(&scratch, &log).map_err(|e| format!("rename {}: {e}", log.display()))?;
        Ok(())
    }

    /// Number of entries currently indexed.
    pub fn len(&self) -> usize {
        self.index.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Whether the store currently indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pckpt-cache-test-{tag}-{}-{}",
            std::process::id(),
            SCRATCH.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fp(n: u64) -> Fingerprint {
        Fingerprint { hi: n, lo: !n }
    }

    #[test]
    fn put_get_roundtrip_and_reopen() {
        let dir = scratch_dir("roundtrip");
        let store = CellStore::open(Some(&dir), 8).unwrap();
        assert!(store.get(fp(1)).is_none());
        store.put(fp(1), b"alpha").unwrap();
        store.put(fp(2), b"beta").unwrap();
        assert_eq!(store.get(fp(1)).as_deref(), Some(&b"alpha"[..]));
        // A fresh handle on the same directory sees both entries.
        let again = CellStore::open(Some(&dir), 8).unwrap();
        assert_eq!(again.len(), 2);
        assert_eq!(again.get(fp(2)).as_deref(), Some(&b"beta"[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn evicts_oldest_beyond_cap() {
        let dir = scratch_dir("evict");
        let store = CellStore::open(Some(&dir), 2).unwrap();
        store.put(fp(1), b"a").unwrap();
        store.put(fp(2), b"b").unwrap();
        store.put(fp(3), b"c").unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.get(fp(1)).is_none(), "oldest entry evicted");
        assert!(store.get(fp(3)).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_store_is_inert() {
        let store = CellStore::open(None, 8).unwrap();
        store.put(fp(1), b"a").unwrap();
        assert!(store.get(fp(1)).is_none());
        assert!(store.is_empty());
    }
}

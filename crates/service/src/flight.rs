//! Single-flight admission: concurrent identical cell requests
//! coalesce onto one computation.
//!
//! The table maps cell fingerprints to flight state. `claim` is
//! deliberately **non-blocking**: a request thread first claims every
//! cell it needs (becoming leader for some, follower for others),
//! computes and publishes all the cells it leads, and only *then*
//! waits on the cells other threads lead. Claiming and waiting never
//! interleave per-cell, so two requests can never hold a cell the
//! other is waiting on — the classic A↔B coalescing deadlock cannot
//! form.
//!
//! A leader that errors out (or is dropped unwinding) abandons its
//! claims; waiters observe [`FlightState::Failed`], re-claim, and one
//! of them becomes the new leader. Published results stay in the table
//! as a bounded most-recent in-memory cache, so repeat requests inside
//! one daemon lifetime skip even the filesystem.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// State of one cell fingerprint in the admission table.
#[derive(Debug, Clone)]
enum FlightState {
    /// A leader thread is computing this cell.
    Running,
    /// The sealed cell-frame bytes are available.
    Done(Arc<Vec<u8>>),
    /// The last leader abandoned the cell; a waiter should re-claim.
    Failed,
}

/// Outcome of a non-blocking [`SingleFlight::claim`].
#[derive(Debug)]
pub enum Claim {
    /// Caller owns the computation for this cell and must
    /// [`SingleFlight::publish`] or [`SingleFlight::abandon`] it.
    Leader,
    /// Another thread is computing; call [`SingleFlight::wait`] after
    /// publishing everything the caller leads.
    Pending,
    /// The cell is already in memory.
    Ready(Arc<Vec<u8>>),
}

/// The admission table. One per service.
pub struct SingleFlight {
    state: Mutex<Table>,
    cv: Condvar,
}

struct Table {
    entries: BTreeMap<u128, FlightState>,
    /// Insertion order of Done entries, oldest first, for eviction.
    done_order: Vec<u128>,
    /// Maximum Done entries retained in memory.
    mem_max: usize,
}

impl SingleFlight {
    /// Creates a table retaining at most `mem_max` completed cells in
    /// memory (0 disables in-memory retention entirely; coalescing
    /// still works because Running entries are exempt from eviction).
    pub fn new(mem_max: usize) -> Self {
        SingleFlight {
            state: Mutex::new(Table {
                entries: BTreeMap::new(),
                done_order: Vec::new(),
                mem_max,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Table> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A non-claiming peek: `Some` only when the cell is already Done
    /// in memory. Never changes table state.
    pub fn peek(&self, fp: u128) -> Option<Arc<Vec<u8>>> {
        match self.lock().entries.get(&fp) {
            Some(FlightState::Done(bytes)) => Some(Arc::clone(bytes)),
            _ => None,
        }
    }

    /// Claims `fp` without blocking. `Failed` entries are taken over:
    /// the caller becomes the new leader.
    pub fn claim(&self, fp: u128) -> Claim {
        let mut table = self.lock();
        match table.entries.get(&fp) {
            Some(FlightState::Done(bytes)) => Claim::Ready(Arc::clone(bytes)),
            Some(FlightState::Running) => Claim::Pending,
            Some(FlightState::Failed) | None => {
                table.entries.insert(fp, FlightState::Running);
                Claim::Leader
            }
        }
    }

    /// Publishes the sealed bytes for a cell the caller leads (or
    /// recovered from cache/journal) and wakes all waiters.
    pub fn publish(&self, fp: u128, bytes: Arc<Vec<u8>>) {
        let mut table = self.lock();
        let was_done = matches!(table.entries.get(&fp), Some(FlightState::Done(_)));
        table.entries.insert(fp, FlightState::Done(bytes));
        if !was_done {
            table.done_order.push(fp);
        }
        table.evict();
        drop(table);
        self.cv.notify_all();
    }

    /// Marks a led cell failed and wakes waiters so one can take over.
    pub fn abandon(&self, fp: u128) {
        let mut table = self.lock();
        if matches!(table.entries.get(&fp), Some(FlightState::Running)) {
            table.entries.insert(fp, FlightState::Failed);
        }
        drop(table);
        self.cv.notify_all();
    }

    /// Blocks until `fp` resolves. Returns the bytes on `Done`, or
    /// `None` on `Failed` / entry-evicted — the caller should re-claim
    /// (possibly becoming the new leader).
    pub fn wait(&self, fp: u128) -> Option<Arc<Vec<u8>>> {
        let mut table = self.lock();
        loop {
            match table.entries.get(&fp) {
                Some(FlightState::Done(bytes)) => return Some(Arc::clone(bytes)),
                Some(FlightState::Failed) | None => return None,
                Some(FlightState::Running) => {
                    table = self
                        .cv
                        .wait(table)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
}

impl Table {
    fn evict(&mut self) {
        while self.done_order.len() > self.mem_max {
            let oldest = self.done_order.remove(0);
            if matches!(self.entries.get(&oldest), Some(FlightState::Done(_))) {
                self.entries.remove(&oldest);
            }
        }
    }
}

/// RAII guard: abandons every claimed-but-unpublished fingerprint if
/// the leader unwinds or errors between claim and publish.
pub struct LeaderGuard<'a> {
    flight: &'a SingleFlight,
    pending: Vec<u128>,
}

impl<'a> LeaderGuard<'a> {
    /// Creates a guard over the fingerprints the caller leads.
    pub fn new(flight: &'a SingleFlight, pending: Vec<u128>) -> Self {
        LeaderGuard { flight, pending }
    }

    /// Records that `fp` was published; it will not be abandoned.
    pub fn published(&mut self, fp: u128) {
        self.pending.retain(|p| *p != fp);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        for fp in self.pending.drain(..) {
            self.flight.abandon(fp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn coalesces_to_one_leader() {
        let flight = Arc::new(SingleFlight::new(16));
        let computations = Arc::new(AtomicUsize::new(0));
        let fp = 42u128;
        let mut handles = Vec::new();
        for _ in 0..8 {
            let flight = Arc::clone(&flight);
            let computations = Arc::clone(&computations);
            handles.push(std::thread::spawn(move || loop {
                match flight.claim(fp) {
                    Claim::Leader => {
                        computations.fetch_add(1, Ordering::SeqCst);
                        flight.publish(fp, Arc::new(vec![7, 7, 7]));
                        return vec![7, 7, 7];
                    }
                    Claim::Ready(bytes) => return bytes.as_ref().clone(),
                    Claim::Pending => {
                        if let Some(bytes) = flight.wait(fp) {
                            return bytes.as_ref().clone();
                        }
                        // Failed: loop and re-claim.
                    }
                }
            }));
        }
        for h in handles {
            assert_eq!(h.join().expect("thread"), vec![7, 7, 7]);
        }
        assert_eq!(computations.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn abandoned_leader_hands_over() {
        let flight = SingleFlight::new(16);
        let fp = 9u128;
        assert!(matches!(flight.claim(fp), Claim::Leader));
        {
            let _guard = LeaderGuard::new(&flight, vec![fp]);
            // Guard dropped without publish → abandon.
        }
        // A new claimant takes over leadership.
        assert!(matches!(flight.claim(fp), Claim::Leader));
        flight.publish(fp, Arc::new(vec![1]));
        assert!(matches!(flight.claim(fp), Claim::Ready(_)));
    }

    #[test]
    fn done_entries_evict_oldest_first() {
        let flight = SingleFlight::new(2);
        for fp in [1u128, 2, 3] {
            assert!(matches!(flight.claim(fp), Claim::Leader));
            flight.publish(fp, Arc::new(vec![fp as u8]));
        }
        // 1 evicted; 2 and 3 retained.
        assert!(matches!(flight.claim(1), Claim::Leader));
        flight.abandon(1);
        assert!(matches!(flight.claim(2), Claim::Ready(_)));
        assert!(matches!(flight.claim(3), Claim::Ready(_)));
    }
}

//! The campaign engine: three layers between a request and the
//! simulation pool.
//!
//! 1. **Content-addressed cache** ([`crate::cache::CellStore`]): a
//!    cell whose fingerprint was computed before — by any request, any
//!    daemon lifetime — is served from its sealed frame. The repo's
//!    determinism contract (per-cell grid aggregates are bit-identical
//!    to standalone runs regardless of pool composition) is what makes
//!    per-cell reuse *sound*: a cached frame folds to the exact bytes
//!    a fresh simulation would produce.
//! 2. **Single-flight admission** ([`crate::flight::SingleFlight`]):
//!    concurrent identical cells coalesce onto one computation.
//! 3. **Sweep journal** ([`crate::journal::Journal`]): every computed
//!    cell is appended (digest-checked) before it is published, so a
//!    killed daemon resumes the campaign re-executing only the cells
//!    that never completed — and the merged digest is bit-identical to
//!    an uninterrupted sweep.
//!
//! Adaptive-allocation campaigns (`config.vr.adaptive`) are the one
//! shape none of this applies to: grid-pooled pilot feedback makes a
//! cell's results depend on which other cells share the pool, so such
//! requests bypass cache and journal entirely (same precedent as the
//! shard coordinator's in-process fallback) and are flagged
//! `"uncached":true` in the meta.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use pckpt_core::{
    campaign_fingerprints, fold_cell_results, run_grid_filtered, run_grid_with_cell_sink,
    splice_pruned, AnalyticVerdict, CellFold, Fingerprint, GridCell, GridResult, RunnerConfig,
};
use pckpt_failure::LeadTimeModel;

use crate::cache::CellStore;
use crate::cellframe::{CellFrame, CellFrameReader};
use crate::flight::{Claim, LeaderGuard, SingleFlight};
use crate::journal::{Journal, SyncPolicy};
use crate::request::CampaignRequest;

/// Journal appends performed by this process, across all campaigns —
/// the `PCKPT_SERVICE_FAIL=crash:<k>` hook counts against this.
static APPENDS: AtomicU64 = AtomicU64::new(0);

/// Service configuration (directories and retention).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Cell-cache directory (`None` disables the persistent cache).
    pub cache_dir: Option<PathBuf>,
    /// Journal directory (`None` disables crash-safe journaling).
    pub state_dir: Option<PathBuf>,
    /// Maximum cells retained on disk.
    pub cache_max: usize,
    /// Maximum completed cells retained in memory.
    pub mem_max: usize,
    /// Journal sync policy.
    pub sync: SyncPolicy,
}

impl ServiceConfig {
    /// Reads `PCKPT_CACHE_DIR`, `PCKPT_CACHE_MAX`, and
    /// `PCKPT_JOURNAL_SYNC`. The journal lives beside the cache
    /// (`<cache>/journal/`) unless the caller overrides `state_dir`.
    // simlint: config — sanctioned execution-config reads; directory
    // placement and retention never reach a result digest.
    pub fn from_env() -> ServiceConfig {
        let cache_dir = std::env::var("PCKPT_CACHE_DIR").ok().map(PathBuf::from);
        let cache_max = std::env::var("PCKPT_CACHE_MAX")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(4096);
        let state_dir = cache_dir.as_ref().map(|d| d.join("journal"));
        ServiceConfig {
            cache_dir,
            state_dir,
            cache_max,
            mem_max: 256,
            sync: SyncPolicy::from_env(),
        }
    }

    /// A config rooted at explicit directories (tests and `pckptd`
    /// flags).
    pub fn in_dirs(cache_dir: Option<PathBuf>, state_dir: Option<PathBuf>) -> ServiceConfig {
        ServiceConfig {
            cache_dir,
            state_dir,
            cache_max: 4096,
            mem_max: 256,
            sync: SyncPolicy::from_env(),
        }
    }
}

/// Per-request accounting, reported in the response meta.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMeta {
    /// Survivor cells served from the persistent cache.
    pub cache_hits: u64,
    /// Survivor cells not found in any reuse layer (computed fresh).
    pub cache_misses: u64,
    /// Survivor cells served by waiting on another request's
    /// computation (single-flight coalescing).
    pub coalesced: u64,
    /// Cells this request actually simulated.
    pub computed_cells: u64,
    /// Cells recovered from a pre-existing journal (crash resume).
    pub journal_recovered: u64,
    /// Cells appended to the journal by this request.
    pub journal_appended: u64,
    /// Cells answered analytically (never simulated, never cached).
    pub pruned: u64,
    /// Whether the request bypassed the reuse layers entirely
    /// (adaptive allocation).
    pub uncached: bool,
}

/// A completed campaign: the spliced grid plus service accounting.
pub struct ServiceOutcome {
    /// The full-input-order grid result (pruned cells spliced in).
    pub grid: GridResult,
    /// Cache/journal/flight accounting for this request.
    pub meta: ServiceMeta,
}

impl ServiceOutcome {
    /// The grid's `meta_json` with the service accounting fields
    /// injected (same object, extra keys), e.g.
    /// `..,"cache_hits":3,"cache_misses":1,..,"uncached":false}`.
    pub fn meta_json(&self, name: &str) -> String {
        let base = self.grid.meta_json(name);
        let open = base.strip_suffix('}').unwrap_or(&base);
        format!(
            "{open},\"cache_hits\":{},\"cache_misses\":{},\"coalesced\":{},\
             \"computed_cells\":{},\"journal_recovered\":{},\"journal_appended\":{},\
             \"service_pruned\":{},\"uncached\":{}}}",
            self.meta.cache_hits,
            self.meta.cache_misses,
            self.meta.coalesced,
            self.meta.computed_cells,
            self.meta.journal_recovered,
            self.meta.journal_appended,
            self.meta.pruned,
            self.meta.uncached,
        )
    }
}

/// Crash-injection hook: `PCKPT_SERVICE_FAIL=crash:<k>` kills the
/// process (exit 13) immediately after the `k`-th journal append it
/// performs. Exercises the resume path exactly like the shard fault
/// harness exercises child failures.
// simlint: config — test-only fault injection, mirrors
// `PCKPT_SHARD_FAIL`; never set in production runs.
fn crash_hook_after_append() {
    let Ok(spec) = std::env::var("PCKPT_SERVICE_FAIL") else {
        return;
    };
    let Some(k) = spec.strip_prefix("crash:").and_then(|s| s.trim().parse::<u64>().ok()) else {
        return;
    };
    if APPENDS.load(Ordering::SeqCst) >= k {
        std::process::exit(13);
    }
}

/// The long-running campaign service. One instance per daemon; shared
/// across connection threads behind an `Arc`.
pub struct Service {
    cfg: ServiceConfig,
    store: CellStore,
    flight: SingleFlight,
    /// Per-campaign journal locks: identical concurrent campaigns
    /// serialize on their shared journal file; distinct campaigns
    /// proceed in parallel.
    journal_locks: Mutex<BTreeMap<u128, Arc<Mutex<()>>>>,
    leads: LeadTimeModel,
}

impl Service {
    /// Opens the service (creating cache directories as needed).
    pub fn open(cfg: ServiceConfig) -> Result<Service, String> {
        let store = CellStore::open(cfg.cache_dir.as_deref(), cfg.cache_max)?;
        let flight = SingleFlight::new(cfg.mem_max);
        Ok(Service {
            store,
            flight,
            journal_locks: Mutex::new(BTreeMap::new()),
            leads: LeadTimeModel::desh_default(),
            cfg,
        })
    }

    /// The shared lead-time model requests run against.
    pub fn leads(&self) -> &LeadTimeModel {
        &self.leads
    }

    fn campaign_lock(&self, fp: Fingerprint) -> Arc<Mutex<()>> {
        let mut locks = self
            .journal_locks
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(locks.entry(fp.as_u128()).or_default())
    }

    /// Validates recovered/cached bytes as the frame for `fp`,
    /// publishing on success. Validation is seal + header (the seal
    /// already proves the bytes are exactly what `encode` wrote); the
    /// fold streams the results out later without a second pass.
    fn adopt(&self, fp: Fingerprint, bytes: Vec<u8>, config: &RunnerConfig) -> Option<Arc<Vec<u8>>> {
        let reader = CellFrameReader::open(&bytes, Some(fp)).ok()?;
        if reader.runs as usize != config.runs {
            return None;
        }
        let bytes = Arc::new(bytes);
        self.flight.publish(fp.as_u128(), Arc::clone(&bytes));
        Some(bytes)
    }

    /// Serves one campaign request through the three reuse layers.
    pub fn execute(&self, req: &CampaignRequest) -> Result<ServiceOutcome, String> {
        if req.config.vr.adaptive.is_some() {
            // Grid-pooled adaptive feedback: cell results depend on
            // pool composition, so frames are not independently
            // addressable. Run uncached (shard.rs precedent).
            let grid = run_grid_filtered(&req.cells, &self.leads, &req.config, req.prefilter.as_ref());
            let meta = ServiceMeta {
                pruned: grid.cells_pruned as u64,
                computed_cells: grid.cells_simulated() as u64,
                uncached: true,
                ..ServiceMeta::default()
            };
            return Ok(ServiceOutcome { grid, meta });
        }

        let config = &req.config;
        let leads_digest = self.leads.digest();
        let verdicts: Vec<Option<AnalyticVerdict>> = match req.prefilter.as_ref() {
            Some(pf) => req.cells.iter().map(|c| pf.cell_verdict(c, &self.leads)).collect(),
            None => vec![None; req.cells.len()],
        };
        let survivors: Vec<GridCell> = req
            .cells
            .iter()
            .zip(&verdicts)
            .filter(|(_, v)| v.is_none())
            .map(|(c, _)| c.clone())
            .collect();
        let mut meta = ServiceMeta {
            pruned: (req.cells.len() - survivors.len()) as u64,
            ..ServiceMeta::default()
        };

        let (fps, campaign_fp) =
            campaign_fingerprints(&survivors, leads_digest, config, req.prefilter.as_ref());

        // Serialize identical concurrent campaigns on their journal.
        let lock = self.campaign_lock(campaign_fp);
        let _campaign = lock.lock().unwrap_or_else(PoisonError::into_inner);

        // Frames decoded (or computed) on the way in, so the fold pass
        // below never re-decodes bytes this request already validated.
        let mut frames: Vec<Option<CellFrame>> = (0..survivors.len()).map(|_| None).collect();
        let mut recovered_bytes: BTreeMap<usize, Arc<Vec<u8>>> = BTreeMap::new();
        let mut journal = match self.cfg.state_dir.as_ref() {
            Some(dir) => {
                let path = dir.join(format!("{}.journal", campaign_fp.hex()));
                let (journal, recovered) =
                    Journal::open(&path, campaign_fp, survivors.len(), self.cfg.sync)?;
                // Recovered cells re-enter every layer: a resumed
                // daemon serves them without re-execution.
                for (idx, bytes) in recovered {
                    if let Some(adopted) = self.adopt(fps[idx], bytes, config) {
                        self.store.put(fps[idx], &adopted)?;
                        meta.journal_recovered += 1;
                        recovered_bytes.insert(idx, adopted);
                    }
                }
                Some(journal)
            }
            None => None,
        };

        // Layer pass: resolve every survivor to Ready / Leader /
        // Pending. All claims happen before any wait (deadlock-free
        // coalescing; see crate::flight).
        let mut resolved: Vec<Option<Arc<Vec<u8>>>> = vec![None; survivors.len()];
        let mut to_compute: Vec<usize> = Vec::new();
        let mut pending: Vec<usize> = Vec::new();
        for i in 0..survivors.len() {
            // Cells this request just pulled out of its own journal are
            // already accounted as journal_recovered, not cache hits.
            if let Some(bytes) = recovered_bytes.remove(&i) {
                resolved[i] = Some(bytes);
                continue;
            }
            if let Some(bytes) = self.flight.peek(fps[i].as_u128()) {
                resolved[i] = Some(bytes);
                meta.cache_hits += 1;
                continue;
            }
            if let Some(bytes) = self.store.get(fps[i]) {
                if let Some(adopted) = self.adopt(fps[i], bytes, config) {
                    resolved[i] = Some(adopted);
                    meta.cache_hits += 1;
                    continue;
                }
            }
            match self.flight.claim(fps[i].as_u128()) {
                Claim::Ready(bytes) => resolved[i] = Some(bytes),
                Claim::Leader => {
                    meta.cache_misses += 1;
                    to_compute.push(i);
                }
                Claim::Pending => {
                    meta.coalesced += 1;
                    pending.push(i);
                }
            }
        }

        // Compute everything this request leads as one pooled grid.
        let mut computed_grid: Option<GridResult> = None;
        if !to_compute.is_empty() {
            computed_grid = Some(self.compute_batch(
                &survivors,
                &fps,
                &to_compute,
                config,
                journal.as_mut(),
                &mut resolved,
                &mut frames,
                &mut meta,
            )?);
        }

        // Only now wait on cells other requests lead.
        for i in pending {
            loop {
                if let Some(bytes) = self.flight.wait(fps[i].as_u128()) {
                    resolved[i] = Some(bytes);
                    break;
                }
                // The leader abandoned this cell; take over.
                match self.flight.claim(fps[i].as_u128()) {
                    Claim::Ready(bytes) => {
                        resolved[i] = Some(bytes);
                        break;
                    }
                    Claim::Pending => continue,
                    Claim::Leader => {
                        let solo = [i];
                        let grid = self.compute_batch(
                            &survivors,
                            &fps,
                            &solo,
                            config,
                            journal.as_mut(),
                            &mut resolved,
                            &mut frames,
                            &mut meta,
                        )?;
                        if computed_grid.is_none() {
                            computed_grid = Some(grid);
                        }
                        break;
                    }
                }
            }
        }

        // Fold every survivor frame in the canonical order and
        // assemble the survivor grid.
        let threads = computed_grid
            .as_ref()
            .map(|g| g.threads)
            .unwrap_or_else(|| config.effective_threads_for(0));
        let mut campaigns = Vec::with_capacity(survivors.len());
        let mut cell_ci_rel = Vec::with_capacity(survivors.len());
        for (i, cell) in survivors.iter().enumerate() {
            let bytes = resolved[i]
                .as_ref()
                .ok_or_else(|| format!("cell {i} unresolved after compute/wait"))?;
            let shape_err = |lanes: u32, runs: u64| {
                format!(
                    "cell {i} frame shape {lanes}×{runs} does not match request {}×{}",
                    cell.models.len(),
                    config.runs
                )
            };
            // Cells this request computed still hold their in-memory
            // frame; everything else folds streaming from the bytes.
            let (campaign, ci) = match frames[i].take() {
                Some(frame) => {
                    if frame.lanes as usize != cell.models.len()
                        || frame.runs as usize != config.runs
                    {
                        return Err(shape_err(frame.lanes, frame.runs));
                    }
                    fold_cell_results(cell, config, &frame.results, threads)
                }
                None => {
                    let mut reader = CellFrameReader::open(bytes, Some(fps[i]))?;
                    if reader.lanes as usize != cell.models.len()
                        || reader.runs as usize != config.runs
                    {
                        return Err(shape_err(reader.lanes, reader.runs));
                    }
                    let mut fold = CellFold::new(cell, config, threads);
                    let mut scratch = pckpt_core::RunResult::default();
                    for _ in 0..cell.models.len() * config.runs {
                        reader.next_result_into(&mut scratch)?;
                        fold.push(&scratch);
                    }
                    fold.finish()
                }
            };
            campaigns.push(campaign);
            cell_ci_rel.push(ci);
        }

        let simulated = if survivors.is_empty() {
            None
        } else {
            let lanes: usize = survivors.iter().map(|c| c.models.len()).sum();
            Some(GridResult {
                cells: campaigns,
                labels: survivors.iter().map(|c| c.label.clone()).collect(),
                runs_per_cell: config.runs,
                cell_runs: vec![config.runs; survivors.len()],
                cell_ci_rel,
                threads,
                trace_groups: computed_grid.as_ref().map_or(0, |g| g.trace_groups),
                lanes,
                units: computed_grid.as_ref().map_or(0, |g| g.units),
                trace_generations: computed_grid.as_ref().map_or(0, |g| g.trace_generations),
                trace_reuses: computed_grid.as_ref().map_or(0, |g| g.trace_reuses),
                leads_digest,
                analytic_verdicts: vec![None; survivors.len()],
                cells_pruned: 0,
                shard_meta: computed_grid.as_ref().and_then(|g| g.shard_meta),
            })
        };

        let grid = splice_pruned(&req.cells, &self.leads, config, verdicts, simulated);
        Ok(ServiceOutcome { grid, meta })
    }

    /// Runs the `indices` subset of `survivors` as one pooled grid,
    /// journaling, caching, and publishing each cell as it completes.
    #[allow(clippy::too_many_arguments)]
    fn compute_batch(
        &self,
        survivors: &[GridCell],
        fps: &[Fingerprint],
        indices: &[usize],
        config: &RunnerConfig,
        mut journal: Option<&mut Journal>,
        resolved: &mut [Option<Arc<Vec<u8>>>],
        frames: &mut [Option<CellFrame>],
        meta: &mut ServiceMeta,
    ) -> Result<GridResult, String> {
        let subset: Vec<GridCell> = indices.iter().map(|&i| survivors[i].clone()).collect();
        let mut guard = LeaderGuard::new(
            &self.flight,
            indices.iter().map(|&i| fps[i].as_u128()).collect(),
        );
        let mut sink_err: Option<String> = None;
        let mut appended = 0u64;
        let grid = run_grid_with_cell_sink(&subset, &self.leads, config, &mut |cr| {
            if sink_err.is_some() {
                return;
            }
            let survivor_idx = indices[cr.cell];
            let fp = fps[survivor_idx];
            let frame = CellFrame {
                fp,
                lanes: cr.lanes as u32,
                runs: cr.runs as u64,
                results: cr.iter().cloned().collect(),
            };
            let bytes = frame.encode();
            if let Some(j) = journal.as_deref_mut() {
                if let Err(e) = j.append_cell(survivor_idx, &bytes) {
                    sink_err = Some(e);
                    return;
                }
                appended += 1;
                APPENDS.fetch_add(1, Ordering::SeqCst);
                crash_hook_after_append();
            }
            if let Err(e) = self.store.put(fp, &bytes) {
                sink_err = Some(e);
                return;
            }
            let bytes = Arc::new(bytes);
            self.flight.publish(fp.as_u128(), Arc::clone(&bytes));
            guard.published(fp.as_u128());
            resolved[survivor_idx] = Some(bytes);
            frames[survivor_idx] = Some(frame);
        });
        drop(guard); // Abandons anything the sink never published.
        if let Some(e) = sink_err {
            return Err(e);
        }
        meta.computed_cells += indices.len() as u64;
        meta.journal_appended += appended;
        Ok(grid)
    }
}

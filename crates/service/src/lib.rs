//! # pckpt-service — the campaign service layer
//!
//! A long-running front end for the simulation grid: requests come in
//! as config JSON (over a Unix socket via `pckptd`, or in-process),
//! are canonicalized into the binding-digest normal form
//! ([`pckpt_core::fingerprint`]), and are served through three reuse
//! layers, cheapest first:
//!
//! 1. a **content-addressed cell cache** — computed cells persist as
//!    sealed result frames keyed by fingerprint, so replaying a sweep
//!    is a read, not a simulation ([`cache`]);
//! 2. **single-flight admission** — concurrent identical requests
//!    coalesce onto one computation ([`flight`]);
//! 3. a **crash-safe sweep journal** — each completed cell is appended
//!    (digest-checked) before publication, so a killed daemon resumes
//!    re-executing only what never finished ([`journal`]).
//!
//! All three lean on one repo-wide invariant: per-cell grid aggregates
//! are **bit-identical** to standalone runs regardless of pool
//! composition. That is what makes a cached frame, a coalesced wait,
//! and a journal replay each indistinguishable — byte for byte — from
//! fresh computation, and it is checked, not assumed: [`grid_digest`]
//! gives every response a campaign digest that cold runs, warm runs,
//! and crash-resumed runs must reproduce exactly.

pub mod cache;
pub mod cellframe;
pub mod flight;
pub mod journal;
pub mod json;
pub mod request;
pub mod server;
pub mod service;

pub use cache::CellStore;
pub use cellframe::{CellFrame, CellFrameReader};
pub use flight::{Claim, SingleFlight};
pub use journal::{Journal, SyncPolicy};
pub use request::{parse_request, CampaignRequest};
pub use server::{respond, serve_unix, submit_unix};
pub use service::{Service, ServiceConfig, ServiceMeta, ServiceOutcome};

use pckpt_core::{Canon, Fingerprint, GridResult};

/// The campaign digest: a fingerprint over every result-bearing field
/// of a grid in input-cell order — labels, per-lane aggregate bits
/// (mean total hours, pooled failure-tolerance ratio, failure counts),
/// attained CIs, and run counts.
///
/// Execution-shape metadata (threads, trace-cache counters, shard
/// accounting) is deliberately excluded: the digest answers "did this
/// sweep produce the same *results*?", the equality the cache, the
/// journal, and the single-flight layer each promise. Cold, warm,
/// coalesced, and crash-resumed executions of one campaign must all
/// report the same digest — the integration tests hold them to it.
pub fn grid_digest(grid: &GridResult) -> Fingerprint {
    let mut canon = Canon::new();
    canon.push_u64(grid.cells.len() as u64);
    canon.push_u64(grid.leads_digest);
    for (i, campaign) in grid.cells.iter().enumerate() {
        canon.push_str(&grid.labels[i]);
        canon.push_u64(grid.cell_runs[i] as u64);
        canon.push_f64(grid.cell_ci_rel[i]);
        canon.push_u64(campaign.aggregates.len() as u64);
        for agg in &campaign.aggregates {
            canon.push_f64(agg.total_hours.mean());
            canon.push_f64(agg.ft_ratio_pooled());
            canon.push_f64(agg.failures.sum());
        }
    }
    canon.fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pckpt_core::{run_grid, GridCell, ModelKind, RunnerConfig, SimParams};
    use pckpt_failure::LeadTimeModel;
    use pckpt_workloads::Application;

    #[test]
    fn grid_digest_binds_results_not_execution_shape() {
        let app = Application::by_name("POP").expect("table app");
        let params = SimParams::paper_defaults(ModelKind::B, app);
        let cells = vec![GridCell::new(params, &[ModelKind::B, ModelKind::P2])];
        let leads = LeadTimeModel::desh_default();
        let mut config = RunnerConfig::new(4, 11);
        config.threads = 1;
        let one = run_grid(&cells, &leads, &config);
        config.threads = 2;
        let two = run_grid(&cells, &leads, &config);
        // Different thread counts, identical results → identical digest.
        assert_eq!(grid_digest(&one).hex(), grid_digest(&two).hex());

        // Different seed → different digest.
        let mut other_cfg = RunnerConfig::new(4, 12);
        other_cfg.threads = 1;
        let other = run_grid(&cells, &leads, &other_cfg);
        assert_ne!(grid_digest(&one).hex(), grid_digest(&other).hex());
    }
}

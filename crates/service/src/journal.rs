//! Crash-safe append-only sweep journal.
//!
//! One journal file per campaign fingerprint. Every record is
//! self-delimiting and digest-checked, so a daemon killed mid-write
//! leaves at worst one torn tail record, which recovery truncates
//! away; everything before it replays bit-exactly. Layout:
//!
//! ```text
//! record := REC_MAGIC u32 | kind u8 | len u64 | payload[len] | fnv1a u64
//! ```
//!
//! The digest covers the whole preceding record (magic through
//! payload). Record kinds:
//!
//! * `KIND_HEADER` (first record, exactly once): frame version,
//!   campaign fingerprint, cell count. A journal whose header does not
//!   match the campaign being opened is discarded and restarted — the
//!   fingerprint IS the campaign identity, so a stale file from a
//!   different sweep can never leak results into this one.
//! * `KIND_CELL`: survivor index `u64` followed by the sealed
//!   [`crate::cellframe::CellFrame`] bytes for that cell.
//!
//! Recovery scans from the start, accepts the longest valid record
//! prefix, truncates the file there, and returns the recovered cells.
//! The cell frames carry their own seals and fingerprints, so journal
//! recovery composes two integrity layers: record framing (torn
//! writes) and frame seals (content rot).
//!
//! Sync policy: `PCKPT_JOURNAL_SYNC=always` (default) issues
//! `sync_data` after every append — a killed *machine* loses at most
//! the in-flight cell. `off` leaves flushing to the OS — a killed
//! *process* still loses nothing (the bytes are in the page cache),
//! which is the failure mode the tests exercise.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use pckpt_core::fingerprint::fnv1a;
use pckpt_core::frames::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64, FRAME_VERSION};
use pckpt_core::Fingerprint;

/// Record magic ("PKJL" little-endian).
pub const REC_MAGIC: u32 = 0x4c4a_4b50;
/// Header record kind.
const KIND_HEADER: u8 = 0;
/// Cell record kind.
const KIND_CELL: u8 = 1;
/// Fixed record overhead: magic + kind + len + digest.
const REC_OVERHEAD: usize = 4 + 1 + 8 + 8;

/// When appended records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `sync_data` after every record (default; survives power cut).
    Always,
    /// Leave flushing to the OS (survives process kill only).
    Off,
}

impl SyncPolicy {
    /// Reads `PCKPT_JOURNAL_SYNC` (`always` | `off`).
    pub fn from_env() -> SyncPolicy {
        // simlint: config
        match std::env::var("PCKPT_JOURNAL_SYNC").as_deref() {
            Ok("off") => SyncPolicy::Off,
            _ => SyncPolicy::Always,
        }
    }
}

/// An open, append-position journal for one campaign.
pub struct Journal {
    file: File,
    sync: SyncPolicy,
    /// Records appended through this handle (crash-injection hook).
    appended: u64,
}

/// Cells recovered from an existing journal: survivor index → sealed
/// frame bytes. Later duplicates win (idempotent re-appends after an
/// ill-timed crash are harmless).
pub type Recovered = std::collections::BTreeMap<usize, Vec<u8>>;

fn encode_record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(REC_OVERHEAD + payload.len());
    put_u32(&mut rec, REC_MAGIC);
    rec.push(kind);
    put_u64(&mut rec, payload.len() as u64);
    rec.extend_from_slice(payload);
    let digest = fnv1a(&rec);
    put_u64(&mut rec, digest);
    rec
}

/// Parses the record starting at `bytes[at..]`. Returns
/// `(kind, payload, next_offset)` or `None` when the bytes from `at`
/// do not form a complete, digest-valid record.
fn parse_record(bytes: &[u8], at: usize) -> Option<(u8, &[u8], usize)> {
    let rest = bytes.get(at..)?;
    if rest.len() < REC_OVERHEAD {
        return None;
    }
    let mut pos = 0usize;
    let magic = get_u32(rest, &mut pos).ok()?;
    if magic != REC_MAGIC {
        return None;
    }
    let kind = *rest.get(pos)?;
    pos += 1;
    let len = get_u64(rest, &mut pos).ok()? as usize;
    let body_end = pos.checked_add(len)?;
    if rest.len() < body_end.checked_add(8)? {
        return None;
    }
    let payload = &rest[pos..body_end];
    let mut dpos = body_end;
    let stored = get_u64(rest, &mut dpos).ok()?;
    if fnv1a(&rest[..body_end]) != stored {
        return None;
    }
    Some((kind, payload, at + body_end + 8))
}

fn header_payload(campaign_fp: Fingerprint, n_cells: usize) -> Vec<u8> {
    let mut p = Vec::with_capacity(2 + 8 + 8 + 8);
    put_u16(&mut p, FRAME_VERSION);
    put_u64(&mut p, campaign_fp.hi);
    put_u64(&mut p, campaign_fp.lo);
    put_u64(&mut p, n_cells as u64);
    p
}

fn header_matches(payload: &[u8], campaign_fp: Fingerprint, n_cells: usize) -> bool {
    let mut pos = 0usize;
    let ok = (|| -> Result<bool, String> {
        Ok(get_u16(payload, &mut pos)? == FRAME_VERSION
            && get_u64(payload, &mut pos)? == campaign_fp.hi
            && get_u64(payload, &mut pos)? == campaign_fp.lo
            && get_u64(payload, &mut pos)? == n_cells as u64)
    })();
    matches!(ok, Ok(true)) && pos == payload.len()
}

impl Journal {
    /// Opens (or creates) the journal for `campaign_fp` at `path` and
    /// recovers every valid cell record already on disk.
    ///
    /// The file is truncated to its longest valid record prefix, so a
    /// torn tail from a crash disappears and appending resumes from a
    /// clean boundary. A file whose header belongs to a different
    /// campaign (or is itself damaged) is restarted from scratch —
    /// recovery never mixes sweeps.
    pub fn open(
        path: &Path,
        campaign_fp: Fingerprint,
        n_cells: usize,
        sync: SyncPolicy,
    ) -> Result<(Journal, Recovered), String> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
        let mut bytes = Vec::new();
        if let Ok(mut existing) = File::open(path) {
            existing
                .read_to_end(&mut bytes)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
        }

        let mut recovered = Recovered::new();
        let mut good_end = 0usize;
        if let Some((KIND_HEADER, payload, next)) = parse_record(&bytes, 0) {
            if header_matches(payload, campaign_fp, n_cells) {
                good_end = next;
                while let Some((kind, payload, next)) = parse_record(&bytes, good_end) {
                    if kind == KIND_CELL && payload.len() > 8 {
                        let mut pos = 0usize;
                        if let Ok(idx) = get_u64(payload, &mut pos) {
                            if (idx as usize) < n_cells {
                                recovered.insert(idx as usize, payload[pos..].to_vec());
                            }
                        }
                    }
                    good_end = next;
                }
            }
        }

        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        file.set_len(good_end as u64)
            .map_err(|e| format!("truncate {}: {e}", path.display()))?;
        file.seek(SeekFrom::End(0)).map_err(|e| e.to_string())?;

        let mut journal = Journal {
            file,
            sync,
            appended: 0,
        };
        if good_end == 0 {
            journal.append_record(KIND_HEADER, &header_payload(campaign_fp, n_cells))?;
        }
        Ok((journal, recovered))
    }

    fn append_record(&mut self, kind: u8, payload: &[u8]) -> Result<(), String> {
        let rec = encode_record(kind, payload);
        self.file
            .write_all(&rec)
            .map_err(|e| format!("journal append: {e}"))?;
        self.file.flush().map_err(|e| e.to_string())?;
        if self.sync == SyncPolicy::Always {
            self.file.sync_data().map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    /// Appends one completed cell (survivor index + sealed frame
    /// bytes).
    pub fn append_cell(&mut self, cell_idx: usize, frame_bytes: &[u8]) -> Result<(), String> {
        let mut payload = Vec::with_capacity(8 + frame_bytes.len());
        put_u64(&mut payload, cell_idx as u64);
        payload.extend_from_slice(frame_bytes);
        self.append_record(KIND_CELL, &payload)?;
        self.appended += 1;
        Ok(())
    }

    /// Cell records appended through this handle (the header does not
    /// count). Drives the `PCKPT_SERVICE_FAIL=crash:<k>` hook.
    pub fn cells_appended(&self) -> u64 {
        self.appended
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SCRATCH: AtomicU64 = AtomicU64::new(0);

    fn scratch_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "pckpt-journal-test-{tag}-{}-{}.jnl",
            std::process::id(),
            SCRATCH.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn fp() -> Fingerprint {
        Fingerprint { hi: 0xAAAA, lo: 0x5555 }
    }

    #[test]
    fn append_then_recover() {
        let path = scratch_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, recovered) = Journal::open(&path, fp(), 4, SyncPolicy::Off).unwrap();
            assert!(recovered.is_empty());
            j.append_cell(0, b"cell-zero").unwrap();
            j.append_cell(2, b"cell-two").unwrap();
        }
        let (_, recovered) = Journal::open(&path, fp(), 4, SyncPolicy::Off).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[&0], b"cell-zero");
        assert_eq!(recovered[&2], b"cell-two");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = scratch_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path, fp(), 4, SyncPolicy::Off).unwrap();
            j.append_cell(0, b"intact").unwrap();
            j.append_cell(1, b"doomed").unwrap();
        }
        // Tear the last record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut j, recovered) = Journal::open(&path, fp(), 4, SyncPolicy::Off).unwrap();
        assert_eq!(recovered.len(), 1, "torn record dropped");
        assert_eq!(recovered[&0], b"intact");
        // Appending after recovery lands on a clean boundary.
        j.append_cell(1, b"redone").unwrap();
        drop(j);
        let (_, recovered) = Journal::open(&path, fp(), 4, SyncPolicy::Off).unwrap();
        assert_eq!(recovered[&1], b"redone");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_campaign_restarts_journal() {
        let path = scratch_path("mismatch");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path, fp(), 4, SyncPolicy::Off).unwrap();
            j.append_cell(0, b"old-sweep").unwrap();
        }
        let other = Fingerprint { hi: 1, lo: 2 };
        let (_, recovered) = Journal::open(&path, other, 4, SyncPolicy::Off).unwrap();
        assert!(recovered.is_empty(), "foreign journal must not leak cells");
        // And the file now belongs to the new campaign.
        let (_, recovered) = Journal::open(&path, other, 4, SyncPolicy::Off).unwrap();
        assert!(recovered.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_at_any_offset_keeps_valid_prefix() {
        let path = scratch_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path, fp(), 8, SyncPolicy::Off).unwrap();
            for i in 0..5 {
                j.append_cell(i, format!("payload-{i}").as_bytes()).unwrap();
            }
        }
        let golden = std::fs::read(&path).unwrap();
        for offset in (0..golden.len()).step_by(7) {
            let mut damaged = golden.clone();
            damaged[offset] ^= 0xFF;
            std::fs::write(&path, &damaged).unwrap();
            let (_, recovered) = Journal::open(&path, fp(), 8, SyncPolicy::Off).unwrap();
            // Every recovered record must be one of the originals,
            // and recovery is a prefix: cell i present ⇒ cells < i
            // present (records were appended in index order).
            for (idx, payload) in &recovered {
                assert_eq!(payload.as_slice(), format!("payload-{idx}").as_bytes());
            }
            if let Some(max) = recovered.keys().max() {
                assert_eq!(recovered.len(), max + 1, "recovery must be a prefix");
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

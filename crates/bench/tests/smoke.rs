//! Perf-trajectory smoke tests: one full P2 replication must complete
//! well inside a generous event budget, in both PFS modes. `CrSim::run`
//! itself enforces a 10M-event runaway guard; these tests pin the bound
//! much tighter so an event-loop regression (e.g. a rescheduling storm
//! in the fluid tick) fails fast instead of merely getting slower.

use pckpt_core::iosim::PfsMode;
use pckpt_core::{CrSim, ModelKind, SimParams};
use pckpt_desim::engine::StopReason;
use pckpt_desim::Simulation;
use pckpt_failure::{FailureTrace, LeadTimeModel, TraceConfig};
use pckpt_simrng::SimRng;
use pckpt_workloads::Application;

const EVENT_BUDGET: u64 = 2_000_000;

fn one_p2_replication(mode: PfsMode) {
    let leads = LeadTimeModel::desh_default();
    let app = Application::by_name("XGC").expect("Table I app");
    let mut params = SimParams::paper_defaults(ModelKind::P2, app);
    params.pfs_mode = mode;
    let cfg = TraceConfig::new(
        params.distribution,
        app.nodes,
        app.compute_hours * params.horizon_factor,
    )
    .with_projection(params.projection);
    let mut rng = SimRng::seed_from(4242);
    let trace = FailureTrace::generate(&cfg, &leads, &params.predictor, &mut rng);
    let sim = CrSim::new(params, trace, &leads);
    let mut engine = Simulation::new(sim).with_event_budget(EVENT_BUDGET);
    let stop = engine.run();
    assert_ne!(
        stop,
        StopReason::EventBudget,
        "P2 replication burned through the {EVENT_BUDGET}-event budget"
    );
    assert!(
        engine.events_handled() < EVENT_BUDGET,
        "handled {} events",
        engine.events_handled()
    );
}

#[test]
fn p2_replication_fits_event_budget_analytic() {
    one_p2_replication(PfsMode::Analytic);
}

#[test]
fn p2_replication_fits_event_budget_fluid() {
    one_p2_replication(PfsMode::Fluid);
}

/// The bench harness itself must not bit-rot: a 1-run campaign through
/// `bench_campaign` has to emit one machine-parsable `CAMPAIGN_JSON`
/// line per PFS mode with positive throughput, or `scripts/bench.sh`
/// would silently produce an empty snapshot.
#[test]
fn bench_campaign_emits_parsable_campaign_lines() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_bench_campaign"))
        .env("PCKPT_RUNS", "1")
        .output()
        .expect("spawn bench_campaign");
    assert!(out.status.success(), "bench_campaign failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout
        .lines()
        .filter_map(|l| l.strip_prefix("CAMPAIGN_JSON "))
        .collect();
    assert_eq!(lines.len(), 2, "one line per PFS mode:\n{stdout}");
    for (line, mode) in lines.iter().zip(["analytic", "fluid"]) {
        // Poor man's JSON check (no serde in-tree): the fields bench.sh
        // consumes must be present, and runs_per_sec must be positive.
        assert!(
            line.contains(&format!("\"name\":\"p2_xgc_{mode}\"")),
            "unexpected campaign name in {line}"
        );
        let rps = line
            .split("\"runs_per_sec\":")
            .nth(1)
            .and_then(|rest| {
                rest.trim_end_matches('}')
                    .split(',')
                    .next()?
                    .parse::<f64>()
                    .ok()
            })
            .unwrap_or_else(|| panic!("no parsable runs_per_sec in {line}"));
        assert!(rps > 0.0, "non-positive throughput in {line}");
    }
}

//! `pckpt-bench` — experiment harnesses regenerating every table and
//! figure of the paper's evaluation.
//!
//! Each `exp_*` binary reproduces one artifact (see DESIGN.md §5 for the
//! full index):
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `exp_fig2a` | Fig. 2a — lead-time box plots per failure sequence |
//! | `exp_fig2b` | Fig. 2b — single-node bandwidth vs tasks × size |
//! | `exp_fig2c` | Fig. 2c — weak-scaling bandwidth heat map |
//! | `exp_table1` | Table I — workload characteristics (+ derived latencies) |
//! | `exp_fig4` | Fig. 4 — lead-time variability, M1/M2 |
//! | `exp_table2` | Table II — FT ratios, M1/M2 |
//! | `exp_fig6a` | Fig. 6a — overheads under Titan's distribution |
//! | `exp_fig6b` | Fig. 6b — overheads under LANL 18 (and LANL 8) |
//! | `exp_fig6c` | Fig. 6c — LM transfer-size sweep |
//! | `exp_fig7` | Fig. 7 — lead-time variability, P1/P2 |
//! | `exp_table4` | Table IV — FT ratios, P1/P2 |
//! | `exp_fig8` | Fig. 8 — LM vs p-ckpt FT share in P2 |
//! | `exp_obs9` | Obs. 9 — false-negative-rate sweep |
//! | `exp_analytical` | Eqs. 4–8 — the LM-vs-p-ckpt analytical model |
//!
//! The number of Monte-Carlo runs defaults to 1000 (as in the paper);
//! set `PCKPT_RUNS` to trade fidelity for speed, and `PCKPT_SEED` to try
//! another stream.

use pckpt_core::{
    parse_runs_spec, run_grid, run_models, CampaignResult, GridCell, GridResult, ModelKind,
    RunnerConfig, RunsSpec, SimParams,
};
use pckpt_failure::{FailureDistribution, LeadTimeModel};
use pckpt_workloads::Application;

/// Monte-Carlo runs per configuration (`PCKPT_RUNS`, default 1000). In
/// adaptive mode (`PCKPT_RUNS=auto[:target[:cap]]`) this is the per-cell
/// run cap; the stopping rule usually spends far fewer.
pub fn runs() -> usize {
    match std::env::var("PCKPT_RUNS").ok().and_then(|v| parse_runs_spec(&v)) {
        Some(RunsSpec::Fixed(n)) => n,
        Some(RunsSpec::Auto(a)) => a.max_runs,
        None => 1000,
    }
}

/// Master seed (`PCKPT_SEED`, default 20220530 — the paper's IPDPS
/// presentation date).
pub fn seed() -> u64 {
    std::env::var("PCKPT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_220_530)
}

/// The runner configuration used by all experiments: `PCKPT_RUNS` runs
/// from `PCKPT_SEED`, with the `PCKPT_VR` / `PCKPT_RUNS=auto`
/// variance-reduction knobs applied on top.
pub fn runner() -> RunnerConfig {
    RunnerConfig::new(runs(), seed()).with_env_vr()
}

/// The three applications whose per-app curves the paper shows
/// (CHIMERA, XGC, POP; the rest "behave similarly to POP").
pub fn figure_apps() -> Vec<Application> {
    ["CHIMERA", "XGC", "POP"]
        .iter()
        .map(|n| Application::by_name(n).expect("Table I app"))
        .collect()
}

/// Builds the parameter point `campaign` runs, with the same overrides.
pub fn sweep_params(
    app: Application,
    distribution: FailureDistribution,
    lead_scale: f64,
    fn_rate: Option<f64>,
    lm_transfer_factor: Option<f64>,
) -> SimParams {
    let mut params = SimParams::with_distribution(ModelKind::B, app, distribution);
    params.lead_scale = lead_scale;
    if let Some(fnr) = fn_rate {
        params.predictor = params.predictor.with_false_negative_rate(fnr);
    }
    if let Some(alpha) = lm_transfer_factor {
        params.lm_transfer_factor = alpha;
    }
    params
}

/// Builds one grid cell with `campaign`'s overrides, labelled
/// `"{app}@{lead_scale}"` (relabel with [`GridCell::with_label`]).
pub fn sweep_cell(
    app: Application,
    models: &[ModelKind],
    distribution: FailureDistribution,
    lead_scale: f64,
    fn_rate: Option<f64>,
    lm_transfer_factor: Option<f64>,
) -> GridCell {
    let params = sweep_params(app, distribution, lead_scale, fn_rate, lm_transfer_factor);
    GridCell::new(params, models).with_label(format!("{}@{lead_scale}", app.name))
}

/// Runs a whole bin's sweep — every cell × model × run — through one
/// work-stealing pool with cross-cell failure-trace sharing (see
/// `pckpt_core::run_grid`). All cells share one Desh lead-time model and
/// the experiment-wide [`runner`] configuration.
pub fn run_cells(cells: &[GridCell]) -> GridResult {
    let leads = LeadTimeModel::desh_default();
    run_grid(cells, &leads, &runner())
}

/// Prints a sweep's execution metadata: one `METRICS_JSON` line with the
/// grid-wide merged observability aggregate and one with the
/// campaign-style grid metadata (cells, lanes, units, threads, trace
/// sharing). `scripts/bench.sh` folds both into its snapshot.
pub fn print_grid_metrics(name: &str, grid: &GridResult) {
    println!("METRICS_JSON {}", grid.obs_merged().to_json(name));
    println!("METRICS_JSON {}", grid.meta_json(&format!("{name}_grid")));
    // Per-cell run allocation becomes interesting once cells can differ
    // (adaptive mode or a prefiltered sweep); keep fixed uniform sweeps'
    // output unchanged.
    if grid.cell_runs.iter().any(|&r| r != grid.runs_per_cell) {
        println!(
            "METRICS_JSON {}",
            pckpt_core::obs::allocation_json(&format!("{name}_alloc"), &grid.allocations())
        );
    }
}

/// Runs one app × model-set campaign with optional overrides.
///
/// One-cell convenience over [`run_cells`]; sweep bins should build all
/// their cells and run them as one grid instead.
pub fn campaign(
    app: Application,
    models: &[ModelKind],
    distribution: FailureDistribution,
    lead_scale: f64,
    fn_rate: Option<f64>,
    lm_transfer_factor: Option<f64>,
) -> CampaignResult {
    let leads = LeadTimeModel::desh_default();
    let params = sweep_params(app, distribution, lead_scale, fn_rate, lm_transfer_factor);
    run_models(&params, models, &leads, &runner())
}

/// Renders one Fig.-6-style panel: all six applications × all five
/// models under `distribution`, as a stacked bar chart plus a numeric
/// table (total hours annotated, per-bucket breakdown, reduction vs B).
pub fn print_fig6_panel(distribution: FailureDistribution, title: &str) {
    use pckpt_analysis::{BarChart, Table};
    println!("{title}  ({} runs per app)\n", runs());
    let mut table = Table::new(vec![
        "app",
        "model",
        "ckpt(h)",
        "recomp(h)",
        "recovery(h)",
        "total(h)",
        "±95%CI",
        "p05..p95",
        "vs B",
    ]);
    let mut ranges: std::collections::HashMap<&'static str, (f64, f64)> =
        std::collections::HashMap::new();
    // All six applications ride one work-stealing pool (one cell each;
    // per-cell aggregates are bit-identical to standalone campaigns).
    let cells: Vec<GridCell> = pckpt_workloads::TABLE_I
        .iter()
        .map(|app| sweep_cell(*app, &ModelKind::ALL, distribution, 1.0, None, None))
        .collect();
    let grid = run_cells(&cells);
    for (app, c) in pckpt_workloads::TABLE_I.iter().zip(&grid.cells) {
        let base_total = c.get(ModelKind::B).unwrap().total_hours.mean();
        let mut chart = BarChart::new(
            format!(
                "{} — overhead, normalized to B (# ckpt, = recomp, . recovery)",
                app.name
            ),
            48,
        );
        for m in ModelKind::ALL {
            let a = c.get(m).unwrap();
            let (ck, rc, rv) = (
                a.ckpt_hours.mean(),
                a.recomp_hours.mean(),
                a.recovery_hours.mean(),
            );
            let total = a.total_hours.mean();
            chart.bar(
                m.name(),
                vec![ck, rc, rv],
                format!("{:.1}h ({:.0}%)", total, 100.0 * total / base_total.max(1e-12)),
            );
            let red = reduction_pct(total, base_total);
            let entry = ranges.entry(m.name()).or_insert((f64::INFINITY, f64::NEG_INFINITY));
            entry.0 = entry.0.min(red);
            entry.1 = entry.1.max(red);
            table.row(vec![
                app.name.to_string(),
                m.name().to_string(),
                format!("{ck:.2}"),
                format!("{rc:.2}"),
                format!("{rv:.2}"),
                format!("{total:.2}"),
                // Student-t 95% half-width on the mean — the precision
                // the adaptive allocator (PCKPT_RUNS=auto) steers by.
                format!("{:.2}", a.total_hours.ci_half_width(0.95)),
                format!(
                    "{:.1}..{:.1}",
                    a.total_hours_quantile(0.05),
                    a.total_hours_quantile(0.95)
                ),
                format!("{red:+.1}%"),
            ]);
        }
        println!("{}", chart.render());
    }
    println!("{table}");
    println!("Overall overhead reduction ranges vs B:");
    for m in ModelKind::ALL {
        if m == ModelKind::B {
            continue;
        }
        let (lo, hi) = ranges[m.name()];
        println!("  {:<3} {:.0}% .. {:.0}%", m.name(), lo, hi);
    }
}

/// Percentage reduction of `value` relative to `base` (positive = lower
/// overhead than the base model; the y-axis of Figs. 4 & 7).
pub fn reduction_pct(value: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        100.0 * (1.0 - value / base)
    }
}

/// The lead-scale grid of Tables II/IV and Figs. 4/7.
pub const LEAD_SCALES: [f64; 5] = [1.5, 1.1, 1.0, 0.9, 0.5];

/// Labels for [`LEAD_SCALES`].
pub const LEAD_SCALE_LABELS: [&str; 5] = ["+50%", "+10%", "0%", "-10%", "-50%"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        assert_eq!(reduction_pct(5.0, 10.0), 50.0);
        assert_eq!(reduction_pct(10.0, 10.0), 0.0);
        assert_eq!(reduction_pct(15.0, 10.0), -50.0);
        assert_eq!(reduction_pct(1.0, 0.0), 0.0);
    }

    #[test]
    fn figure_apps_are_the_papers_three() {
        let apps = figure_apps();
        assert_eq!(apps.len(), 3);
        assert_eq!(apps[0].name, "CHIMERA");
        assert_eq!(apps[2].name, "POP");
    }

    #[test]
    fn env_defaults() {
        // Defaults apply when the env vars are unset in the test runner.
        assert!(runs() > 0);
        let _ = seed();
    }
}

//! Table IV — FT ratio for P1 and P2 under lead-time variability.

use pckpt_analysis::report::ratio;
use pckpt_analysis::Table;
use pckpt_bench::{campaign, figure_apps, LEAD_SCALES, LEAD_SCALE_LABELS};
use pckpt_core::ModelKind;
use pckpt_failure::FailureDistribution;

fn main() {
    let models = [ModelKind::P1, ModelKind::P2];
    let apps = figure_apps();
    let mut t = Table::new(vec![
        "lead", "CHIMERA P1", "CHIMERA P2", "XGC P1", "XGC P2", "POP P1", "POP P2",
    ])
    .with_title(format!(
        "Table IV — FT ratio for applications under P1 and P2 ({} runs)",
        pckpt_bench::runs()
    ));
    for (scale, label) in LEAD_SCALES.iter().zip(LEAD_SCALE_LABELS) {
        let mut row = vec![label.to_string()];
        for app in &apps {
            let c = campaign(
                *app,
                &models,
                FailureDistribution::OLCF_TITAN,
                *scale,
                None,
                None,
            );
            for m in models {
                row.push(ratio(c.get(m).unwrap().ft_ratio_pooled()));
            }
        }
        t.row(row);
    }
    println!("{t}");
    println!(
        "Paper reference (Table IV): P1 ≈ P2 throughout; CHIMERA 0.70 at base leads\n\
         degrading to 0.36 at -50%; XGC stable at 0.84; POP 0.85-0.88."
    );
}

//! Table IV — FT ratio for P1 and P2 under lead-time variability.
//!
//! The 15 (app × lead-scale) cells run as one grid; within each app the
//! five scales share per-run failure traces through a scale-invariant
//! trace core.

use pckpt_analysis::report::ratio;
use pckpt_analysis::Table;
use pckpt_bench::{figure_apps, run_cells, sweep_cell, LEAD_SCALES, LEAD_SCALE_LABELS};
use pckpt_core::ModelKind;
use pckpt_failure::FailureDistribution;

fn main() {
    let models = [ModelKind::P1, ModelKind::P2];
    let apps = figure_apps();
    let mut t = Table::new(vec![
        "lead", "CHIMERA P1", "CHIMERA P2", "XGC P1", "XGC P2", "POP P1", "POP P2",
    ])
    .with_title(format!(
        "Table IV — FT ratio for applications under P1 and P2 ({} runs)",
        pckpt_bench::runs()
    ));
    let cells: Vec<_> = LEAD_SCALES
        .iter()
        .flat_map(|&scale| {
            apps.iter().map(move |app| {
                sweep_cell(
                    *app,
                    &models,
                    FailureDistribution::OLCF_TITAN,
                    scale,
                    None,
                    None,
                )
            })
        })
        .collect();
    let grid = run_cells(&cells);
    for (s, label) in LEAD_SCALE_LABELS.iter().enumerate() {
        let mut row = vec![label.to_string()];
        for a in 0..apps.len() {
            let c = grid.cell(s * apps.len() + a);
            for m in models {
                row.push(ratio(c.get(m).unwrap().ft_ratio_pooled()));
            }
        }
        t.row(row);
    }
    println!("{t}");
    println!(
        "Paper reference (Table IV): P1 ≈ P2 throughout; CHIMERA 0.70 at base leads\n\
         degrading to 0.36 at -50%; XGC stable at 0.84; POP 0.85-0.88."
    );
}

//! Fig. 6b — overheads under the LANL System 18 failure distribution
//! (plus LANL System 8, which the paper describes in text only:
//! "for LANL System 8 ... the decrease in overhead is ≈44-73% while
//! System 18 results in ≈52-69%").

use pckpt_failure::FailureDistribution;

fn main() {
    pckpt_bench::print_fig6_panel(
        FailureDistribution::LANL_SYSTEM_18,
        "Fig. 6b — C/R overhead under LANL System 18's failure distribution",
    );
    println!();
    pckpt_bench::print_fig6_panel(
        FailureDistribution::LANL_SYSTEM_8,
        "(text-only panel) — C/R overhead under LANL System 8's failure distribution",
    );
    println!(
        "\nPaper reference: P2 reduces overhead ≈52-69% under System 18 and ≈44-73%\n\
         under System 8 — same ordering as Fig. 6a, demonstrating robustness across\n\
         Weibull distributions (Observation 7)."
    );
}

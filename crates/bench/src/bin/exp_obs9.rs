//! Observation 9 — robustness against false negatives.
//!
//! Holds the false-positive share at 18 % and sweeps the false-negative
//! rate from 0 % to 40 %, printing each model's recomputation-overhead
//! reduction and total-overhead reduction vs B. LM-assisted models
//! (M2/P2) should degrade faster: Eq. 2 keeps their checkpoint interval
//! stretched by a σ that overestimates how many failures they still
//! catch.

use pckpt_analysis::Table;
use pckpt_bench::{campaign, figure_apps, reduction_pct};
use pckpt_core::ModelKind;
use pckpt_failure::FailureDistribution;

fn main() {
    let fn_rates = [0.0f64, 0.1, 0.2, 0.3, 0.4];
    let models = [
        ModelKind::B,
        ModelKind::M1,
        ModelKind::M2,
        ModelKind::P1,
        ModelKind::P2,
    ];
    println!(
        "Observation 9 — overhead reductions vs B (%) as the false-negative rate grows\n\
         (false-positive share fixed at 18%; {} runs per cell)\n",
        pckpt_bench::runs()
    );
    for app in figure_apps() {
        let mut t = Table::new(vec![
            "FN rate", "M1 recomp", "M2 recomp", "P1 recomp", "P2 recomp", "M1 total",
            "M2 total", "P1 total", "P2 total",
        ])
        .with_title(format!("{} ({} nodes)", app.name, app.nodes));
        for &fnr in &fn_rates {
            let c = campaign(
                app,
                &models,
                FailureDistribution::OLCF_TITAN,
                1.0,
                Some(fnr),
                None,
            );
            let b = c.get(ModelKind::B).unwrap();
            let mut row = vec![format!("{:.0}%", fnr * 100.0)];
            for m in [ModelKind::M1, ModelKind::M2, ModelKind::P1, ModelKind::P2] {
                let a = c.get(m).unwrap();
                row.push(format!(
                    "{:+.1}",
                    reduction_pct(a.recomp_hours.mean(), b.recomp_hours.mean())
                ));
            }
            for m in [ModelKind::M1, ModelKind::M2, ModelKind::P1, ModelKind::P2] {
                let a = c.get(m).unwrap();
                row.push(format!(
                    "{:+.1}",
                    reduction_pct(a.total_hours.mean(), b.total_hours.mean())
                ));
            }
            t.row(row);
        }
        println!("{t}");
    }
    println!(
        "Paper shape: all models decline steadily with the FN rate; M2/P2's\n\
         recomputation-reduction declines are the steepest (they overestimate σ and\n\
         keep checkpoint intervals too long), confirming P1's advantage on\n\
         failure-prone, poorly-predicted systems."
    );
}

//! Grid sweep engine vs serial-cells baseline.
//!
//! Times a fig4-shaped sweep — four lead scales × [B, M2] per
//! application — two ways:
//!
//! * **serial**: one [`run_models`] campaign per cell, back to back (the
//!   pre-grid behavior: every cell pays its own pool spin-up, regenerates
//!   every trace, and re-runs the lead-blind B lanes);
//! * **grid**: one [`run_grid`] over all cells (one work-stealing pool,
//!   per-worker trace cores shared across the scales, B executed once
//!   per run).
//!
//! Both must produce bit-identical per-cell aggregates — verified here
//! on every invocation before any timing is reported. Emits one
//! machine-parsable `GRID_JSON {...}` line per app plus the grid
//! `METRICS_JSON` metadata; `scripts/bench.sh` folds these into its
//! snapshot (`BENCH_pr9.json`), with POP as the headline speedup.

use std::time::Instant;

use pckpt_bench::{run_cells, runner, runs, seed, sweep_cell};
use pckpt_core::{run_grid_filtered, run_models, Aggregate, ModelKind, Prefilter};
use pckpt_failure::{FailureDistribution, LeadTimeModel};

const SWEEP_SCALES: [f64; 4] = [1.5, 1.1, 0.9, 0.5];
const MODELS: [ModelKind; 2] = [ModelKind::B, ModelKind::M2];

/// The Fig.-4-shaped sweep the shard scale-out headline fans out: three
/// figure apps × four lead scales × [B, M2]. Shard children rebuild the
/// identical cells through [`main`]'s coordinator-environment hook, so
/// only results ever cross the process boundary.
fn fig4_shard_cells() -> Vec<pckpt_core::GridCell> {
    pckpt_bench::figure_apps()
        .into_iter()
        .flat_map(|app| {
            SWEEP_SCALES.iter().map(move |&s| {
                sweep_cell(app, &MODELS, FailureDistribution::OLCF_TITAN, s, None, None)
            })
        })
        .collect()
}

fn digest(a: &Aggregate) -> (u64, u64, u64) {
    (
        a.total_hours.mean().to_bits(),
        a.ft_ratio_pooled().to_bits(),
        a.failures.sum().to_bits(),
    )
}

fn main() {
    let leads = LeadTimeModel::desh_default();
    // Shard-child hook: when `run_grid_sharded` re-invokes this binary
    // with the coordinator's environment contract, execute one shard of
    // the fig4 sweep and exit instead of benchmarking.
    if let Some(spec) = pckpt_core::shard_spec_from_env() {
        pckpt_core::run_shard_child(
            &fig4_shard_cells(),
            &leads,
            &pckpt_core::shard_child_config(),
            &spec,
        )
        .expect("shard child");
        return;
    }
    println!(
        "grid sweep vs serial cells — 4 lead scales x [B, M2], {} runs, seed {}",
        runs(),
        seed()
    );
    for app_name in ["CHIMERA", "XGC", "POP"] {
        let app = pckpt_workloads::Application::by_name(app_name).expect("Table I app");
        let cells: Vec<_> = SWEEP_SCALES
            .iter()
            .map(|&s| {
                sweep_cell(app, &MODELS, FailureDistribution::OLCF_TITAN, s, None, None)
            })
            .collect();

        let started = Instant::now();
        let serial: Vec<_> = cells
            .iter()
            .map(|cell| run_models(&cell.params, &cell.models, &leads, &runner()))
            .collect();
        let serial_wall = started.elapsed().as_secs_f64();

        let started = Instant::now();
        let grid = run_cells(&cells);
        let grid_wall = started.elapsed().as_secs_f64();

        // Equivalence gate: a speedup only counts if every cell's
        // aggregate is bit-identical to its standalone campaign.
        for (i, (s, g)) in serial.iter().zip(&grid.cells).enumerate() {
            for (a, b) in s.aggregates.iter().zip(&g.aggregates) {
                assert_eq!(
                    digest(a),
                    digest(b),
                    "{app_name} cell {i}: grid diverged from serial baseline"
                );
            }
        }

        let speedup = serial_wall / grid_wall;
        let cells_per_sec = cells.len() as f64 / grid_wall;
        println!(
            "  {app_name:<8} serial {serial_wall:.3} s, grid {grid_wall:.3} s  \
             ({speedup:.2}x, {cells_per_sec:.2} cells/s, {} units for {} lanes, \
             trace hit rate {:.0}%)",
            grid.units,
            grid.lanes,
            100.0 * grid.trace_cache_hit_rate(),
        );
        println!(
            "GRID_JSON {{\"name\":\"grid_sweep_{name}\",\"cells\":{cells},\"runs_per_cell\":{rpc},\
             \"serial_wall_secs\":{serial_wall:.6},\"grid_wall_secs\":{grid_wall:.6},\
             \"speedup\":{speedup:.3},\"cells_per_sec\":{cells_per_sec:.3},\
             \"lanes\":{lanes},\"units\":{units},\"trace_groups\":{groups},\
             \"trace_cache_hit_rate\":{hit:.4},\"threads\":{threads}}}",
            name = app_name.to_lowercase(),
            cells = cells.len(),
            rpc = grid.runs_per_cell,
            lanes = grid.lanes,
            units = grid.units,
            groups = grid.trace_groups,
            hit = grid.trace_cache_hit_rate(),
            threads = grid.threads,
        );
        println!(
            "METRICS_JSON {}",
            grid.meta_json(&format!("grid_sweep_{}_grid", app_name.to_lowercase()))
        );
    }

    // Analytic pre-filter on the 4-cell POP sweep: POP's θ is tiny, so σ
    // sits at the 0.90 cap for every lead scale and the LM-vs-p-ckpt
    // crossover is decided closed-form — the whole sweep prunes. The
    // digest gate mirrors the tentpole soundness contract: any cell the
    // filter *does* simulate must match the unfiltered sweep bit for bit.
    let app = pckpt_workloads::Application::by_name("POP").expect("Table I app");
    let crossover = [ModelKind::B, ModelKind::M2, ModelKind::P1];
    let cells: Vec<_> = SWEEP_SCALES
        .iter()
        .map(|&s| sweep_cell(app, &crossover, FailureDistribution::OLCF_TITAN, s, None, None))
        .collect();

    let started = Instant::now();
    let unfiltered = run_grid_filtered(&cells, &leads, &runner(), None);
    let unfiltered_wall = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let filtered = run_grid_filtered(&cells, &leads, &runner(), Some(&Prefilter::default()));
    let filtered_wall = started.elapsed().as_secs_f64();

    for (i, verdict) in filtered.analytic_verdicts.iter().enumerate() {
        if verdict.is_some() {
            continue;
        }
        for (a, b) in filtered.cell(i).aggregates.iter().zip(&unfiltered.cell(i).aggregates) {
            assert_eq!(
                digest(a),
                digest(b),
                "POP cell {i}: prefiltered survivor diverged from unfiltered grid"
            );
        }
    }

    let prune_rate = filtered.cells_pruned as f64 / cells.len() as f64;
    println!(
        "  prefilter POP x [B, M2, P1]: {} of {} cells answered analytically \
         ({:.0}% pruned); unfiltered {unfiltered_wall:.3} s, filtered {filtered_wall:.3} s",
        filtered.cells_pruned,
        cells.len(),
        100.0 * prune_rate,
    );
    println!(
        "GRID_JSON {{\"name\":\"grid_prefilter_pop\",\"cells\":{cells_n},\"runs_per_cell\":{rpc},\
         \"pruned\":{pruned},\"simulated\":{simulated},\"prune_rate\":{prune_rate:.4},\
         \"unfiltered_wall_secs\":{unfiltered_wall:.6},\"filtered_wall_secs\":{filtered_wall:.6}}}",
        cells_n = cells.len(),
        rpc = runs(),
        pruned = filtered.cells_pruned,
        simulated = filtered.cells_simulated(),
    );
    println!(
        "METRICS_JSON {}",
        filtered.meta_json("grid_prefilter_pop_grid")
    );

    variance_reduction_headline(&leads);
    shard_scaleout_headline(&leads);
}

/// Deterministic scale-out on the Fig.-4 sweep: one single-threaded
/// process vs 2 single-threaded shard subprocesses (the scale-out story
/// is processes, not threads, so both sides are pinned to one worker
/// thread per process). The merge is gated on bit-identity with the
/// single-process sweep before any timing is reported. `shard_speedup`
/// tracks available cores: ~2x on 2+ free cores, and ≤ 1x on a
/// single-core host, where parallel shards merely timeslice and the
/// number degenerates to a measure of coordination overhead.
fn shard_scaleout_headline(leads: &LeadTimeModel) {
    use pckpt_core::{
        run_grid_sharded_opts, RunnerConfig, ShardLauncher, ShardOptions,
    };
    // Large enough that simulation dominates the ~100 ms of process
    // spawn + frame I/O the sharded side pays (at 64 runs the overhead
    // wins and the "speedup" is < 1).
    const SHARD_BUDGET: usize = 512;
    const SHARDS: usize = 2;
    let cells = fig4_shard_cells();
    let mut cfg = RunnerConfig::new(SHARD_BUDGET, seed());
    cfg.threads = 1;

    let started = Instant::now();
    let single = run_grid_filtered(&cells, leads, &cfg, None);
    let single_wall = started.elapsed().as_secs_f64();

    let launcher = ShardLauncher::current_exe(Vec::new()).expect("bench binary path");
    let started = Instant::now();
    let sharded = run_grid_sharded_opts(
        &cells,
        leads,
        &cfg,
        &ShardOptions::new(SHARDS),
        &launcher,
        None,
    )
    .expect("sharded fig4 sweep");
    let sharded_wall = started.elapsed().as_secs_f64();

    for (i, (s, g)) in single.cells.iter().zip(&sharded.cells).enumerate() {
        for (a, b) in s.aggregates.iter().zip(&g.aggregates) {
            assert_eq!(
                digest(a),
                digest(b),
                "fig4 cell {i}: sharded merge diverged from single process"
            );
        }
    }
    let meta = sharded.shard_meta.expect("sharded runs report shard_meta");
    let speedup = single_wall / sharded_wall;
    // A bare speedup number is ambiguous: on a host with fewer free
    // cores than shards, parallel single-threaded processes merely
    // timeslice one core, and the ratio measures *coordination
    // overhead* (spawn + frame I/O + merge), not scale-out. Report the
    // regime alongside the number so downstream consumers never read a
    // 0.9x on a starved CI box as a parallelism regression.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let regime = if host_cores >= SHARDS {
        "parallel"
    } else {
        "coordination_overhead"
    };
    println!(
        "  shard scale-out fig4 ({} cells x {SHARD_BUDGET} runs): single {single_wall:.3} s, \
         {SHARDS} shards {sharded_wall:.3} s  ({speedup:.2}x {regime} on {host_cores} core(s), \
         {} re-execution(s), {} frame bytes, digests bit-identical)",
        cells.len(),
        meta.reexecutions,
        meta.frame_bytes,
    );
    println!(
        "GRID_JSON {{\"name\":\"shard_scaleout_fig4\",\"cells\":{n},\"runs_per_cell\":{SHARD_BUDGET},\
         \"shards\":{shards},\"single_wall_secs\":{single_wall:.6},\
         \"sharded_wall_secs\":{sharded_wall:.6},\"shard_speedup\":{speedup:.3},\
         \"host_cores\":{host_cores},\"shard_speedup_regime\":\"{regime}\",\
         \"reexecutions\":{reexec},\"frame_bytes\":{fb},\"digest_match\":true}}",
        n = cells.len(),
        shards = meta.shards,
        reexec = meta.reexecutions,
        fb = meta.frame_bytes,
    );
    println!("METRICS_JSON {}", sharded.meta_json("shard_scaleout_fig4_grid"));
}

/// Runs-to-±1%-CI on the Fig.-4-shaped sweep (the three figure apps ×
/// four lead scales), fixed-provisioned vs adaptive
/// antithetic+stratified.
///
/// Fixed mode must provision every cell at the budget its *worst* cell
/// needs (the target CI is unknown a priori, so a uniform sweep buys
/// `cells × max_c N_c(1%)` runs — and POP converges an order of
/// magnitude slower than XGC/CHIMERA, so the worst cell is expensive).
/// The VR engine instead runs the real adaptive allocator (antithetic
/// pairs, 8 first-failure strata, per-cell CI stopping) and each side's
/// measured relative CI half-width is extrapolated to ±1% by the CLT
/// (`N(1%) = runs × (ci_rel / 0.01)²`) so the headline does not have to
/// simulate millions of POP runs. Both sides use identical cells, seed,
/// and primary metric.
fn variance_reduction_headline(leads: &LeadTimeModel) {
    use pckpt_core::{run_grid, AdaptiveConfig, RunnerConfig, VrConfig};

    const TARGET: f64 = 0.01;
    const FIXED_BUDGET: usize = 512;
    let cells: Vec<_> = pckpt_bench::figure_apps()
        .into_iter()
        .flat_map(|app| {
            SWEEP_SCALES.iter().map(move |&s| {
                sweep_cell(app, &MODELS, FailureDistribution::OLCF_TITAN, s, None, None)
            })
        })
        .collect();

    let fixed_cfg = RunnerConfig::new(FIXED_BUDGET, seed());
    let started = Instant::now();
    let fixed = run_grid(&cells, leads, &fixed_cfg);
    let fixed_wall = started.elapsed().as_secs_f64();
    // Uniform provisioning: every cell buys the worst cell's budget.
    let fixed_need = |i: usize| {
        let ci = fixed.cell_ci_rel[i];
        fixed.cell_runs[i] as f64 * (ci / TARGET).powi(2)
    };
    let worst_need = (0..cells.len()).map(fixed_need).fold(0.0, f64::max);
    let fixed_provisioned = cells.len() as f64 * worst_need;

    let mut vr_cfg = RunnerConfig::new(4096, seed());
    vr_cfg.vr = VrConfig {
        antithetic: true,
        strata: 8,
        adaptive: Some(AdaptiveConfig {
            rel_target: 0.06,
            ..AdaptiveConfig::default()
        }),
    };
    let started = Instant::now();
    let vr = run_grid(&cells, leads, &vr_cfg);
    let vr_wall = started.elapsed().as_secs_f64();
    let vr_total: f64 = (0..cells.len())
        .map(|i| vr.cell_runs[i] as f64 * (vr.cell_ci_rel[i] / TARGET).powi(2))
        .sum();

    let speedup = fixed_provisioned / vr_total;
    // How much of the sweep the per-cell stopping rule alone saved,
    // relative to provisioning every cell at the worst cell's spend.
    let max_cell = vr.cell_runs.iter().copied().max().unwrap_or(0);
    let saved_pct = 100.0
        * (1.0 - vr.total_runs() as f64 / (cells.len() * max_cell.max(1)) as f64);

    // Per-strategy attained CI at one fixed budget (worst lane of the
    // slowest-converging cell, POP@1.5) — the column view of what each
    // transform buys before adaptive allocation enters.
    let pop = pckpt_workloads::Application::by_name("POP").expect("Table I app");
    let one_cell = [sweep_cell(
        pop,
        &MODELS,
        FailureDistribution::OLCF_TITAN,
        SWEEP_SCALES[0],
        None,
        None,
    )];
    let strategies: [(&str, VrConfig); 4] = [
        ("plain", VrConfig::default()),
        ("antithetic", VrConfig { antithetic: true, ..VrConfig::default() }),
        ("stratified", VrConfig { strata: 8, ..VrConfig::default() }),
        (
            "antithetic_stratified",
            VrConfig { antithetic: true, strata: 8, ..VrConfig::default() },
        ),
    ];
    let mut ci_cols = String::new();
    println!(
        "  variance reduction {{CHIMERA,XGC,POP}} x scales x [B, M2]: fixed {FIXED_BUDGET}/cell \
         (worst ci {:.4}), adaptive spent {:?} (ci {:?})",
        fixed.worst_ci_rel(),
        vr.cell_runs,
        vr.cell_ci_rel.iter().map(|c| (c * 1e4).round() / 1e4).collect::<Vec<_>>(),
    );
    for (name, vrc) in strategies {
        let mut cfg = RunnerConfig::new(FIXED_BUDGET, seed());
        cfg.vr = vrc;
        let g = run_grid(&one_cell, leads, &cfg);
        let ci = g.worst_ci_rel();
        println!("    {name:<22} ci_rel @ {FIXED_BUDGET} runs: {ci:.5}");
        ci_cols.push_str(&format!(",\"ci_rel_{name}\":{ci:.6}"));
    }
    println!(
        "  runs to ±1%: fixed-provisioned {:.0}, VR adaptive {:.0}  ({speedup:.2}x); \
         adaptive allocation alone saves {saved_pct:.0}%",
        fixed_provisioned, vr_total,
    );
    println!(
        "GRID_JSON {{\"name\":\"variance_reduction_fig4\",\"cells\":{n},\
         \"fixed_budget\":{FIXED_BUDGET},\"fixed_runs_to_1pct\":{fixed_provisioned:.1},\
         \"vr_runs_to_1pct\":{vr_total:.1},\"variance_reduction_speedup\":{speedup:.3},\
         \"adaptive_runs_saved_pct\":{saved_pct:.2},\"adaptive_total_runs\":{total},\
         \"fixed_wall_secs\":{fixed_wall:.6},\"vr_wall_secs\":{vr_wall:.6}{ci_cols}}}",
        n = cells.len(),
        total = vr.total_runs(),
    );
    println!("METRICS_JSON {}", vr.meta_json("variance_reduction_fig4_grid"));
    println!(
        "METRICS_JSON {}",
        pckpt_core::obs::allocation_json("variance_reduction_fig4_alloc", &vr.allocations())
    );
}

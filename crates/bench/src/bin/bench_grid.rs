//! Grid sweep engine vs serial-cells baseline.
//!
//! Times a fig4-shaped sweep — four lead scales × [B, M2] per
//! application — two ways:
//!
//! * **serial**: one [`run_models`] campaign per cell, back to back (the
//!   pre-grid behavior: every cell pays its own pool spin-up, regenerates
//!   every trace, and re-runs the lead-blind B lanes);
//! * **grid**: one [`run_grid`] over all cells (one work-stealing pool,
//!   per-worker trace cores shared across the scales, B executed once
//!   per run).
//!
//! Both must produce bit-identical per-cell aggregates — verified here
//! on every invocation before any timing is reported. Emits one
//! machine-parsable `GRID_JSON {...}` line per app plus the grid
//! `METRICS_JSON` metadata; `scripts/bench.sh` folds these into its
//! snapshot (`BENCH_pr5.json`), with POP as the headline speedup.

use std::time::Instant;

use pckpt_bench::{run_cells, runner, runs, seed, sweep_cell};
use pckpt_core::{run_grid_filtered, run_models, Aggregate, ModelKind, Prefilter};
use pckpt_failure::{FailureDistribution, LeadTimeModel};

const SWEEP_SCALES: [f64; 4] = [1.5, 1.1, 0.9, 0.5];
const MODELS: [ModelKind; 2] = [ModelKind::B, ModelKind::M2];

fn digest(a: &Aggregate) -> (u64, u64, u64) {
    (
        a.total_hours.mean().to_bits(),
        a.ft_ratio_pooled().to_bits(),
        a.failures.sum().to_bits(),
    )
}

fn main() {
    let leads = LeadTimeModel::desh_default();
    println!(
        "grid sweep vs serial cells — 4 lead scales x [B, M2], {} runs, seed {}",
        runs(),
        seed()
    );
    for app_name in ["CHIMERA", "XGC", "POP"] {
        let app = pckpt_workloads::Application::by_name(app_name).expect("Table I app");
        let cells: Vec<_> = SWEEP_SCALES
            .iter()
            .map(|&s| {
                sweep_cell(app, &MODELS, FailureDistribution::OLCF_TITAN, s, None, None)
            })
            .collect();

        let started = Instant::now();
        let serial: Vec<_> = cells
            .iter()
            .map(|cell| run_models(&cell.params, &cell.models, &leads, &runner()))
            .collect();
        let serial_wall = started.elapsed().as_secs_f64();

        let started = Instant::now();
        let grid = run_cells(&cells);
        let grid_wall = started.elapsed().as_secs_f64();

        // Equivalence gate: a speedup only counts if every cell's
        // aggregate is bit-identical to its standalone campaign.
        for (i, (s, g)) in serial.iter().zip(&grid.cells).enumerate() {
            for (a, b) in s.aggregates.iter().zip(&g.aggregates) {
                assert_eq!(
                    digest(a),
                    digest(b),
                    "{app_name} cell {i}: grid diverged from serial baseline"
                );
            }
        }

        let speedup = serial_wall / grid_wall;
        let cells_per_sec = cells.len() as f64 / grid_wall;
        println!(
            "  {app_name:<8} serial {serial_wall:.3} s, grid {grid_wall:.3} s  \
             ({speedup:.2}x, {cells_per_sec:.2} cells/s, {} units for {} lanes, \
             trace hit rate {:.0}%)",
            grid.units,
            grid.lanes,
            100.0 * grid.trace_cache_hit_rate(),
        );
        println!(
            "GRID_JSON {{\"name\":\"grid_sweep_{name}\",\"cells\":{cells},\"runs_per_cell\":{rpc},\
             \"serial_wall_secs\":{serial_wall:.6},\"grid_wall_secs\":{grid_wall:.6},\
             \"speedup\":{speedup:.3},\"cells_per_sec\":{cells_per_sec:.3},\
             \"lanes\":{lanes},\"units\":{units},\"trace_groups\":{groups},\
             \"trace_cache_hit_rate\":{hit:.4},\"threads\":{threads}}}",
            name = app_name.to_lowercase(),
            cells = cells.len(),
            rpc = grid.runs_per_cell,
            lanes = grid.lanes,
            units = grid.units,
            groups = grid.trace_groups,
            hit = grid.trace_cache_hit_rate(),
            threads = grid.threads,
        );
        println!(
            "METRICS_JSON {}",
            grid.meta_json(&format!("grid_sweep_{}_grid", app_name.to_lowercase()))
        );
    }

    // Analytic pre-filter on the 4-cell POP sweep: POP's θ is tiny, so σ
    // sits at the 0.90 cap for every lead scale and the LM-vs-p-ckpt
    // crossover is decided closed-form — the whole sweep prunes. The
    // digest gate mirrors the tentpole soundness contract: any cell the
    // filter *does* simulate must match the unfiltered sweep bit for bit.
    let app = pckpt_workloads::Application::by_name("POP").expect("Table I app");
    let crossover = [ModelKind::B, ModelKind::M2, ModelKind::P1];
    let cells: Vec<_> = SWEEP_SCALES
        .iter()
        .map(|&s| sweep_cell(app, &crossover, FailureDistribution::OLCF_TITAN, s, None, None))
        .collect();

    let started = Instant::now();
    let unfiltered = run_grid_filtered(&cells, &leads, &runner(), None);
    let unfiltered_wall = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let filtered = run_grid_filtered(&cells, &leads, &runner(), Some(&Prefilter::default()));
    let filtered_wall = started.elapsed().as_secs_f64();

    for (i, verdict) in filtered.analytic_verdicts.iter().enumerate() {
        if verdict.is_some() {
            continue;
        }
        for (a, b) in filtered.cell(i).aggregates.iter().zip(&unfiltered.cell(i).aggregates) {
            assert_eq!(
                digest(a),
                digest(b),
                "POP cell {i}: prefiltered survivor diverged from unfiltered grid"
            );
        }
    }

    let prune_rate = filtered.cells_pruned as f64 / cells.len() as f64;
    println!(
        "  prefilter POP x [B, M2, P1]: {} of {} cells answered analytically \
         ({:.0}% pruned); unfiltered {unfiltered_wall:.3} s, filtered {filtered_wall:.3} s",
        filtered.cells_pruned,
        cells.len(),
        100.0 * prune_rate,
    );
    println!(
        "GRID_JSON {{\"name\":\"grid_prefilter_pop\",\"cells\":{cells_n},\"runs_per_cell\":{rpc},\
         \"pruned\":{pruned},\"simulated\":{simulated},\"prune_rate\":{prune_rate:.4},\
         \"unfiltered_wall_secs\":{unfiltered_wall:.6},\"filtered_wall_secs\":{filtered_wall:.6}}}",
        cells_n = cells.len(),
        rpc = runs(),
        pruned = filtered.cells_pruned,
        simulated = filtered.cells_simulated(),
    );
    println!(
        "METRICS_JSON {}",
        filtered.meta_json("grid_prefilter_pop_grid")
    );
}

//! Ablations of the design choices DESIGN.md calls out — what each
//! ingredient of (hybrid) p-ckpt is worth.
//!
//! 1. **Coordination** (the paper's core idea): prioritized phase-1
//!    access vs FIFO queueing vs no coordination at all (everyone writes
//!    at once — safeguard behavior).
//! 2. **Eq. 2's σ policy**: the paper's lead-time-only estimate vs the
//!    accuracy-aware future-work variant (Observation 9's proposed fix),
//!    compared at a high false-negative rate where it matters.
//! 3. **Dynamic OCI**: the windowed failure-rate estimator vs a static
//!    Young interval.
//! 4. **Failure projection**: uniform thinning vs Weibull min-stability
//!    when both apply.
//!
//! All 22 ablation cells run as one grid. Coordination, σ policy and the
//! OCI mode do not enter trace generation, so those cells share trace
//! groups per app — each ablation axis is a common-random-numbers
//! comparison; the FN-rate and projection axes change generation itself
//! and intentionally get fresh groups.

use pckpt_analysis::Table;
use pckpt_bench::{print_grid_metrics, run_cells};
use pckpt_core::config::CoordinationPolicy;
use pckpt_core::oci::SigmaPolicy;
use pckpt_core::{GridCell, ModelKind, SimParams};
use pckpt_failure::{FailureDistribution, Projection};
use pckpt_workloads::Application;

fn main() {
    let runs = pckpt_bench::runs();
    let coord_axis = [
        (CoordinationPolicy::Prioritized, "prioritized (paper)"),
        (CoordinationPolicy::FifoQueue, "FIFO queue"),
        (CoordinationPolicy::Uncoordinated, "uncoordinated"),
    ];
    let sigma_axis = [
        (SigmaPolicy::LeadTimeOnly, "lead-only (paper)"),
        (SigmaPolicy::AccuracyAware, "accuracy-aware"),
    ];
    let fn_rates = [0.15, 0.40];
    let oci_axis = [(true, "dynamic (paper)"), (false, "static")];
    let proj_axis = [
        (Projection::Thinning, "uniform thinning (paper)"),
        (Projection::MinStability, "Weibull min-stability"),
    ];

    let mut cells = Vec::new();
    for app_name in ["CHIMERA", "XGC"] {
        let app = Application::by_name(app_name).unwrap();
        for (policy, label) in coord_axis {
            let mut params = SimParams::paper_defaults(ModelKind::B, app);
            params.coordination = policy;
            cells.push(
                GridCell::new(params, &[ModelKind::B, ModelKind::P1])
                    .with_label(format!("coord/{app_name}/{label}")),
            );
        }
        for (policy, label) in sigma_axis {
            for fnr in fn_rates {
                let mut params = SimParams::paper_defaults(ModelKind::B, app);
                params.sigma_policy = policy;
                params.predictor = params.predictor.with_false_negative_rate(fnr);
                cells.push(
                    GridCell::new(params, &[ModelKind::B, ModelKind::P2])
                        .with_label(format!("sigma/{app_name}/{label}/{fnr}")),
                );
            }
        }
        for (dynamic, label) in oci_axis {
            let mut params = SimParams::paper_defaults(ModelKind::B, app);
            params.dynamic_oci = dynamic;
            cells.push(
                GridCell::new(params, &[ModelKind::B])
                    .with_label(format!("oci/{app_name}/{label}")),
            );
        }
    }
    for app_name in ["CHIMERA", "POP"] {
        let app = Application::by_name(app_name).unwrap();
        for (proj, label) in proj_axis {
            let mut params =
                SimParams::with_distribution(ModelKind::B, app, FailureDistribution::OLCF_TITAN);
            params.projection = proj;
            cells.push(
                GridCell::new(params, &[ModelKind::B])
                    .with_label(format!("proj/{app_name}/{label}")),
            );
        }
    }
    let grid = run_cells(&cells);

    // ------------------------------------------------------------------
    // 1. Coordination policy (P1, large apps — where p-ckpt matters).
    // ------------------------------------------------------------------
    let mut t = Table::new(vec!["app", "policy", "FT ratio", "reduction vs B"]).with_title(
        format!("Ablation 1 — what coordination buys (model P1, {runs} runs)"),
    );
    for app_name in ["CHIMERA", "XGC"] {
        for (_, label) in coord_axis {
            let c = grid
                .by_label(&format!("coord/{app_name}/{label}"))
                .unwrap();
            let p1 = c.get(ModelKind::P1).unwrap();
            t.row(vec![
                app_name.to_string(),
                label.to_string(),
                format!("{:.2}", p1.ft_ratio_pooled()),
                format!("{:+.1}%", c.reduction(ModelKind::P1, ModelKind::B).unwrap()),
            ]);
        }
    }
    println!("{t}");
    println!(
        "Expected: removing coordination collapses large-app FT toward M1's ≈0;\n\
         FIFO vs priority differs only when several nodes are vulnerable at once\n\
         (rare at these failure rates — the paper's Weibull burstiness is what\n\
         makes the priority queue worth having at all).\n"
    );

    // ------------------------------------------------------------------
    // 2. σ policy under a lossy predictor (Observation 9's future work).
    // ------------------------------------------------------------------
    let mut t = Table::new(vec![
        "app",
        "sigma policy",
        "FN rate",
        "P2 recomp (h)",
        "P2 total vs B",
    ])
    .with_title("Ablation 2 — Eq. 2's σ: lead-time-only (paper) vs accuracy-aware (future work)");
    for app_name in ["CHIMERA", "XGC"] {
        for (_, label) in sigma_axis {
            for fnr in fn_rates {
                let c = grid
                    .by_label(&format!("sigma/{app_name}/{label}/{fnr}"))
                    .unwrap();
                let p2 = c.get(ModelKind::P2).unwrap();
                t.row(vec![
                    app_name.to_string(),
                    label.to_string(),
                    format!("{:.0}%", fnr * 100.0),
                    format!("{:.2}", p2.recomp_hours.mean()),
                    format!("{:+.1}%", c.reduction(ModelKind::P2, ModelKind::B).unwrap()),
                ]);
            }
        }
    }
    println!("{t}");
    println!(
        "Expected: at 40% FN the accuracy-aware σ shortens the interval back toward\n\
         Eq. 1 and recovers part of the recomputation loss the paper attributes to\n\
         Eq. 2's overestimate — the improvement Observation 9 proposes.\n"
    );

    // ------------------------------------------------------------------
    // 3. Dynamic vs static OCI (base model, bursty failure process).
    // ------------------------------------------------------------------
    let mut t = Table::new(vec!["app", "OCI", "total (h)", "recomp (h)"])
        .with_title("Ablation 3 — windowed failure-rate estimator vs static Young interval (B)");
    for app_name in ["CHIMERA", "XGC"] {
        for (_, label) in oci_axis {
            let c = grid.by_label(&format!("oci/{app_name}/{label}")).unwrap();
            let b = c.get(ModelKind::B).unwrap();
            t.row(vec![
                app_name.to_string(),
                label.to_string(),
                format!("{:.2}", b.total_hours.mean()),
                format!("{:.2}", b.recomp_hours.mean()),
            ]);
        }
    }
    println!("{t}");

    // ------------------------------------------------------------------
    // 4. Projection strategy (thinning vs min-stability), Titan rows.
    // ------------------------------------------------------------------
    let mut t = Table::new(vec!["app", "projection", "failures/run", "B total (h)"])
        .with_title("Ablation 4 — system→job failure projection (Titan distribution)");
    for app_name in ["CHIMERA", "POP"] {
        for (_, label) in proj_axis {
            let c = grid.by_label(&format!("proj/{app_name}/{label}")).unwrap();
            let b = c.get(ModelKind::B).unwrap();
            t.row(vec![
                app_name.to_string(),
                label.to_string(),
                format!("{:.2}", b.failures.mean()),
                format!("{:.2}", b.total_hours.mean()),
            ]);
        }
    }
    println!("{t}");
    println!(
        "Min-stability preserves Weibull burstiness exactly but rates small jobs\n\
         more gently than uniform thinning (shape < 1); the paper's literal\n\
         procedure is thinning, which this repository defaults to whenever the\n\
         job fits inside the source system."
    );
    print_grid_metrics("ablations", &grid);
}

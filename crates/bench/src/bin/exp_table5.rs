//! Table V — qualitative C/R model comparison, re-stated against this
//! repository's implementations, plus a quantitative epilogue the paper
//! could not print: the same capability matrix exercised in simulation.

use pckpt_analysis::report::Align;
use pckpt_analysis::Table;
use pckpt_bench::run_cells;
use pckpt_core::{GridCell, ModelKind, SimParams};
use pckpt_workloads::Application;

fn main() {
    let mut t = Table::new(vec![
        "C/R model",
        "failure awareness",
        "coord. prioritized ckpt",
        "safeguard ckpt",
        "periodic ckpt",
        "live migration",
        "PFS I/O model",
        "failure prediction",
    ])
    .with_aligns(vec![Align::Left; 8])
    .with_title("Table V — C/R model comparison (rows as in the paper)");
    t.row(vec![
        "Hybrid p-ckpt (P2, this paper)",
        "failure lead-time prediction",
        "yes",
        "no",
        "yes",
        "yes",
        "yes",
        "yes",
    ]);
    t.row(vec![
        "Wang et al. (proactive LM)",
        "health monitoring",
        "no",
        "no",
        "no",
        "yes",
        "no",
        "no",
    ]);
    t.row(vec![
        "Bouguerra et al. (M1)",
        "failure lead-time prediction",
        "no",
        "yes",
        "yes",
        "no",
        "no",
        "yes",
    ]);
    t.row(vec![
        "Tiwari et al. (lazy ckpt)",
        "failure locality",
        "no",
        "no",
        "yes",
        "no",
        "no",
        "no",
    ]);
    t.row(vec![
        "Behera et al. (M2, LM-C/R)",
        "failure lead-time prediction",
        "no",
        "no",
        "yes",
        "yes",
        "yes",
        "yes",
    ]);
    println!("{t}");

    // Quantitative epilogue: the capability combinations the matrix
    // describes, run head-to-head on one large application.
    let app = Application::by_name("XGC").unwrap();
    let params = SimParams::paper_defaults(ModelKind::B, app);
    let grid = run_cells(&[GridCell::new(params, &ModelKind::ALL)]);
    let c = grid.cell(0);
    let b = c.get(ModelKind::B).unwrap();
    let mut q = Table::new(vec!["capabilities", "model", "overhead vs B", "FT ratio"])
        .with_title(format!(
            "\nCapabilities in action — XGC, {} runs",
            pckpt_bench::runs()
        ));
    for (caps, m) in [
        ("periodic only", ModelKind::B),
        ("+ prediction + safeguard", ModelKind::M1),
        ("+ prediction + LM", ModelKind::M2),
        ("+ prediction + p-ckpt", ModelKind::P1),
        ("+ prediction + p-ckpt + LM", ModelKind::P2),
    ] {
        let a = c.get(m).unwrap();
        q.row(vec![
            caps.to_string(),
            m.name().to_string(),
            format!("{:+.1}%", a.reduction_vs(b)),
            format!("{:.2}", a.ft_ratio_pooled()),
        ]);
    }
    println!("{q}");
}

//! Fig. 6c — impact of the LM transfer size on the LM-vs-p-ckpt
//! comparison.
//!
//! Sweeps the LM transfer factor α (models M2-α in the paper) and prints
//! the total-overhead reduction of B, P1 and each M2-α for CHIMERA, XGC
//! and POP. p-ckpt should beat LM for large applications until α drops
//! toward ≈1–2.5×.
//!
//! All 18 cells (per app: one B/P1 baseline plus five M2-α points) run
//! as one grid. α does not enter trace generation, so every cell of an
//! app shares one trace group — the whole α sweep is a common-random-
//! numbers comparison against the same failures.

use pckpt_analysis::Table;
use pckpt_bench::{figure_apps, print_grid_metrics, reduction_pct, run_cells, sweep_cell};
use pckpt_core::ModelKind;
use pckpt_failure::FailureDistribution;

fn main() {
    let alphas = [1.0, 1.5, 2.0, 2.5, 3.0];
    println!(
        "Fig. 6c — total-overhead reduction vs B (%), varying LM transfer factor α\n\
         ({} runs per cell)\n",
        pckpt_bench::runs()
    );
    let apps = figure_apps();
    let mut cells = Vec::new();
    for app in &apps {
        cells.push(
            sweep_cell(
                *app,
                &[ModelKind::B, ModelKind::P1],
                FailureDistribution::OLCF_TITAN,
                1.0,
                None,
                None,
            )
            .with_label(format!("{}-base", app.name)),
        );
        for &alpha in &alphas {
            cells.push(
                sweep_cell(
                    *app,
                    &[ModelKind::M2],
                    FailureDistribution::OLCF_TITAN,
                    1.0,
                    None,
                    Some(alpha),
                )
                .with_label(format!("{}-a{alpha}", app.name)),
            );
        }
    }
    let grid = run_cells(&cells);
    let stride = 1 + alphas.len();
    for (a, app) in apps.iter().enumerate() {
        let mut t = Table::new(vec!["model", "reduction vs B", "ckpt(h)", "recomp(h)"])
            .with_title(format!("{} ({} nodes)", app.name, app.nodes));
        let base = grid.cell(a * stride);
        let b = base.get(ModelKind::B).unwrap();
        let p1 = base.get(ModelKind::P1).unwrap();
        t.row(vec![
            "B".to_string(),
            "0.0".to_string(),
            format!("{:.2}", b.ckpt_hours.mean()),
            format!("{:.2}", b.recomp_hours.mean()),
        ]);
        t.row(vec![
            "P1".to_string(),
            format!("{:+.1}", reduction_pct(p1.total_hours.mean(), b.total_hours.mean())),
            format!("{:.2}", p1.ckpt_hours.mean()),
            format!("{:.2}", p1.recomp_hours.mean()),
        ]);
        for (i, &alpha) in alphas.iter().enumerate() {
            let m2 = grid.cell(a * stride + 1 + i).get(ModelKind::M2).unwrap();
            t.row(vec![
                format!("M2-{alpha}x"),
                format!(
                    "{:+.1}",
                    reduction_pct(m2.total_hours.mean(), b.total_hours.mean())
                ),
                format!("{:.2}", m2.ckpt_hours.mean()),
                format!("{:.2}", m2.recomp_hours.mean()),
            ]);
        }
        println!("{t}");
    }
    println!(
        "Paper reference: for CHIMERA/XGC, P1 outperforms M2 until the LM transfer\n\
         shrinks to ≈1x/2.5x the checkpoint size; for small apps LM always wins;\n\
         P1's recomputation reductions exceed M2's throughout (Observation 8)."
    );
    print_grid_metrics("fig6c", &grid);
}

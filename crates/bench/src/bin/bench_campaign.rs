//! End-to-end campaign throughput: times a full Monte-Carlo campaign
//! (default 1000 runs, `PCKPT_RUNS` to override) of the P2 model on XGC
//! in both PFS modes and reports runs/second.
//!
//! Emits one machine-parsable `CAMPAIGN_JSON {...}` line per mode plus
//! one `METRICS_JSON {...}` line with the aggregated per-run simobs
//! metrics (event counts, queue depth high-water mark, latency
//! histograms); `scripts/bench.sh` folds these into its snapshot
//! (BENCH_pr4.json by default) alongside the criterion micro-benchmarks.

use std::time::Instant;

use pckpt_bench::{runner, runs, seed};
use pckpt_core::iosim::PfsMode;
use pckpt_core::{run_many, ModelKind, SimParams};
use pckpt_failure::LeadTimeModel;
use pckpt_workloads::Application;

fn main() {
    let leads = LeadTimeModel::desh_default();
    let app = Application::by_name("XGC").expect("Table I app");
    println!(
        "P2/XGC campaign, {} runs, seed {}",
        runs(),
        seed()
    );
    for (label, mode) in [("analytic", PfsMode::Analytic), ("fluid", PfsMode::Fluid)] {
        let mut params = SimParams::paper_defaults(ModelKind::P2, app);
        params.pfs_mode = mode;
        let started = Instant::now();
        let agg = run_many(&params, &leads, &runner());
        let wall = started.elapsed().as_secs_f64();
        let rps = agg.runs() as f64 / wall;
        println!(
            "  {label:<8} {} runs in {wall:.3} s  ({rps:.1} runs/s, mean total {:.2} h)",
            agg.runs(),
            agg.total_hours.mean()
        );
        println!(
            "CAMPAIGN_JSON {{\"name\":\"p2_xgc_{label}\",\"runs\":{},\"wall_secs\":{wall:.6},\"runs_per_sec\":{rps:.3}}}",
            agg.runs()
        );
        println!("METRICS_JSON {}", agg.obs.to_json(&format!("p2_xgc_{label}")));
    }
}

//! Aligns the structured event streams of two single runs by causal id
//! and reports the first divergent event (sim-time, kind, payload, and
//! causal parent), or confirms the streams are identical.
//!
//! Usage: `trace_diff [app] [model] [mode] [seed_a] [seed_b]`
//! (defaults: `XGC P2 analytic 1 2`). Build with `--features trace` —
//! with the feature disabled the recorder is a ZST and both recordings
//! come back empty, which the bin reports explicitly.
//!
//! Example (two different seeds diverge almost immediately):
//!
//! ```text
//! cargo run --release --features trace --bin trace_diff -- XGC P2 fluid 1 2
//! ```

use pckpt_core::iosim::PfsMode;
use pckpt_core::obs::{diff_report, Recording};
use pckpt_core::{record_run, ModelKind, SimParams};
use pckpt_failure::LeadTimeModel;
use pckpt_workloads::Application;

/// Ring capacity per recording: large enough to hold every event of a
/// single 240 h run (tens of thousands), small enough to stay cheap.
const CAPACITY: usize = 1 << 20;

fn parse_model(s: &str) -> ModelKind {
    ModelKind::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(s))
        .unwrap_or_else(|| {
            eprintln!("unknown model {s:?} (expected one of B, M1, M2, P1, P2)");
            std::process::exit(2);
        })
}

fn record(params: &SimParams, leads: &LeadTimeModel, seed: u64) -> Recording {
    let (_, recording) = record_run(params, leads, seed, 0, CAPACITY);
    recording
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |i: usize, default: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| default.to_string())
    };
    let app_name = get(0, "XGC");
    let model = parse_model(&get(1, "P2"));
    let mode_name = get(2, "analytic");
    let seed_a: u64 = get(3, "1").parse().expect("seed_a must be an integer");
    let seed_b: u64 = get(4, "2").parse().expect("seed_b must be an integer");

    let app = Application::by_name(&app_name).unwrap_or_else(|| {
        eprintln!("unknown application {app_name:?} (see Table I)");
        std::process::exit(2);
    });
    let mode = match mode_name.as_str() {
        "analytic" => PfsMode::Analytic,
        "fluid" => PfsMode::Fluid,
        other => {
            eprintln!("unknown PFS mode {other:?} (expected analytic or fluid)");
            std::process::exit(2);
        }
    };

    let leads = LeadTimeModel::desh_default();
    let mut params = SimParams::paper_defaults(model, app);
    params.pfs_mode = mode;

    let a = record(&params, &leads, seed_a);
    let b = record(&params, &leads, seed_b);
    println!(
        "{} {} {}: seed {} -> {} events ({} dropped), seed {} -> {} events ({} dropped)",
        app.name,
        model.name(),
        mode_name,
        seed_a,
        a.len(),
        a.dropped,
        seed_b,
        b.len(),
        b.dropped,
    );
    if a.is_empty() && b.is_empty() {
        println!("both recordings are empty — build with `--features trace` to capture events");
        return;
    }

    let label_a = format!("seed {seed_a}");
    let label_b = format!("seed {seed_b}");
    match diff_report((&label_a, &a), (&label_b, &b)) {
        Some(report) => println!("{report}"),
        None => println!("streams identical ({} events, digest {})", a.len(), a.digest_hex()),
    }
}

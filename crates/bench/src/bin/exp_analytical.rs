//! Eqs. (4)–(8) — the analytical LM-vs-p-ckpt trade-off model of
//! Observation 8.
//!
//! Prints β(α, σ), LM's checkpoint-overhead reduction, and the α
//! crossover threshold — both the paper's printed Eq. (8) and the exact
//! solution of Eqs. (4)–(6) (see the transcription note in DESIGN.md
//! §14.1). The σ sweep is one [`BatchEval`] pass over SoA columns; the
//! threshold surfaces are [`Curve`] objects, so the break-even points
//! come from curve intersection/inversion instead of ad-hoc loops.

use pckpt_analysis::batch::{BatchEval, Validity};
use pckpt_analysis::curve::{
    break_even_sigma, crossover_verdict, AlphaThresholdCurve, AlphaThresholdExactCurve,
    ConstCurve, Crossing, Curve, CurveExt,
};
use pckpt_analysis::Table;
use pckpt_core::{ModelKind, SimParams};
use pckpt_failure::{LeadTimeModel, Predictor};
use pckpt_workloads::TABLE_I;

fn main() {
    // The σ sweep of the paper band, evaluated as one SoA batch: every
    // row of the table reads from the same five result columns.
    let sigmas: Vec<f64> = (0..=12).map(|i| i as f64 * 0.05).collect();
    let alphas = vec![3.0; sigmas.len()];
    let mut batch = BatchEval::new();
    batch.evaluate(&alphas, &sigmas, 1.0);

    let mut t = Table::new(vec![
        "sigma",
        "beta(α=3)",
        "LM ckpt reduction",
        "α* (Eq. 8 as printed)",
        "α* (exact, Eqs. 4-6)",
    ])
    .with_title("Analytical model: p-ckpt beats LM when α exceeds the threshold");
    for (i, &sigma) in sigmas.iter().enumerate() {
        if !batch.validity()[i].has(Validity::ALPHA_THRESHOLD) {
            // σ ≥ SIGMA_MAX: the printed Eq. (8) band ends here.
            break;
        }
        t.row(vec![
            format!("{sigma:.2}"),
            format!("{:.3}", batch.mitigatable_fraction()[i]),
            format!("{:.1}%", 100.0 * batch.lm_ckpt_reduction()[i]),
            format!("{:.3}", batch.alpha_threshold()[i]),
            format!("{:.3}", batch.alpha_threshold_exact()[i]),
        ]);
    }
    println!("{t}");
    println!(
        "Paper: printed Eq. (8) gives 1.04 ≤ α* < 1.30 over 0 ≤ σ < 0.61. The exact\n\
         algebra additionally explains the σ bound: √(1−σ) > σ ⇔ σ < 0.618.\n"
    );

    // Break-even points from curve arithmetic: where does the horizontal
    // α = 3 line cross each threshold surface? The printed form tops out
    // below 1.30 and is never crossed; the exact form is crossed exactly
    // at the inverse curve's value (the two derivations must agree).
    let alpha_line = ConstCurve(3.0);
    let printed_cross = AlphaThresholdCurve.intersect(&alpha_line);
    let exact_cross = AlphaThresholdExactCurve.intersect(&alpha_line);
    match (printed_cross, exact_cross) {
        (None, Some(sigma)) => {
            let inv = break_even_sigma().eval(3.0).expect("α = 3 is in band");
            assert!(
                (sigma - inv).abs() < 1e-9,
                "intersection and inversion disagree: {sigma} vs {inv}"
            );
            println!(
                "Break-even σ for α = 3: {sigma:.4} under the exact algebra (the printed\n\
                 Eq. (8) tops out below 1.30 and is never crossed — at α = 3 the printed\n\
                 form says p-ckpt wins at every valid σ).\n"
            );
        }
        other => unreachable!("threshold curves changed shape: {other:?}"),
    }

    // Per-application σ (α = 3, Summit hierarchy) and the verdict — the
    // same margin-aware crossover the analytic grid pre-filter uses
    // (PCKPT_PREFILTER=analytic), at margin 0 to match the historical
    // 50/50-split convention of this table.
    let leads = LeadTimeModel::desh_default();
    let predictor = Predictor::aarohi_default();
    let mut v = Table::new(vec![
        "app",
        "theta (s)",
        "sigma",
        "pckpt beats LM (50/50 split)?",
    ])
    .with_title("Per-application verdict at α = 3");
    for app in &TABLE_I {
        let p = SimParams::paper_defaults(ModelKind::P2, *app);
        let sigma = pckpt_core::oci::sigma(&leads, &predictor, p.theta_secs(), 1.0);
        let verdict = match crossover_verdict(3.0, sigma, 0.0) {
            Crossing::Pckpt { .. } => "p-ckpt",
            Crossing::Lm { .. } => "LM",
            // Inside the SIGMA_GUARD band around the validity bound the
            // closed form abstains; the pre-filter would simulate here.
            Crossing::Uncertain => "~ (simulate)",
        };
        v.row(vec![
            app.name.to_string(),
            format!("{:.1}", p.theta_secs()),
            format!("{sigma:.2}"),
            verdict.to_string(),
        ]);
    }
    println!("{v}");
    println!(
        "Cross-check with simulation: run exp_fig6c — the simulated crossover (P1 vs\n\
         M2-α) should fall near these analytic thresholds for the large applications."
    );
}

//! Eqs. (4)–(8) — the analytical LM-vs-p-ckpt trade-off model of
//! Observation 8.
//!
//! Prints β(α, σ), LM's checkpoint-overhead reduction, and the α
//! crossover threshold — both the paper's printed Eq. (8) and the exact
//! solution of Eqs. (4)–(6) (see the transcription note in DESIGN.md).

use pckpt_analysis::analytic::{
    alpha_threshold, alpha_threshold_exact, beta_pckpt, lm_ckpt_reduction, pckpt_beats_lm,
    SIGMA_MAX,
};
use pckpt_analysis::Table;
use pckpt_core::{ModelKind, SimParams};
use pckpt_failure::{LeadTimeModel, Predictor};
use pckpt_workloads::TABLE_I;

fn main() {
    let mut t = Table::new(vec![
        "sigma",
        "beta(α=3)",
        "LM ckpt reduction",
        "α* (Eq. 8 as printed)",
        "α* (exact, Eqs. 4-6)",
    ])
    .with_title("Analytical model: p-ckpt beats LM when α exceeds the threshold");
    for i in 0..=12 {
        let sigma = i as f64 * 0.05;
        if sigma >= SIGMA_MAX {
            break;
        }
        t.row(vec![
            format!("{sigma:.2}"),
            format!("{:.3}", beta_pckpt(3.0, sigma)),
            format!("{:.1}%", 100.0 * lm_ckpt_reduction(sigma)),
            format!("{:.3}", alpha_threshold(sigma)),
            format!("{:.3}", alpha_threshold_exact(sigma)),
        ]);
    }
    println!("{t}");
    println!(
        "Paper: printed Eq. (8) gives 1.04 ≤ α* < 1.30 over 0 ≤ σ < 0.61. The exact\n\
         algebra additionally explains the σ bound: √(1−σ) > σ ⇔ σ < 0.618.\n"
    );

    // Per-application σ (α = 3, Summit hierarchy) and the verdict.
    let leads = LeadTimeModel::desh_default();
    let predictor = Predictor::aarohi_default();
    let mut v = Table::new(vec![
        "app",
        "theta (s)",
        "sigma",
        "pckpt beats LM (50/50 split)?",
    ])
    .with_title("Per-application verdict at α = 3");
    for app in &TABLE_I {
        let p = SimParams::paper_defaults(ModelKind::P2, *app);
        let sigma = pckpt_core::oci::sigma(&leads, &predictor, p.theta_secs(), 1.0);
        let verdict = if sigma < SIGMA_MAX && pckpt_beats_lm(3.0, sigma, 1.0) {
            "p-ckpt"
        } else {
            "LM"
        };
        v.row(vec![
            app.name.to_string(),
            format!("{:.1}", p.theta_secs()),
            format!("{sigma:.2}"),
            verdict.to_string(),
        ]);
    }
    println!("{v}");
    println!(
        "Cross-check with simulation: run exp_fig6c — the simulated crossover (P1 vs\n\
         M2-α) should fall near these analytic thresholds for the large applications."
    );
}

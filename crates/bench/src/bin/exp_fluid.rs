//! Fluid-PFS fidelity study (extension).
//!
//! The paper's simulator computes PFS operation durations in closed form,
//! implicitly assuming operations never overlap. Fluid mode routes every
//! PFS byte through a weighted fluid-flow link, so the asynchronous drain
//! genuinely contends with proactive commits and recovery reads — and the
//! p-ckpt protocol's coordination (drain suspension) is exercised
//! literally instead of being assumed.
//!
//! This study quantifies how much the closed-form shortcut matters: if
//! the paper's assumption is sound, the two modes should agree closely —
//! with the gap concentrated in M1 (the uncoordinated safeguard is the
//! one model whose commits race its own drain).

use pckpt_analysis::Table;
use pckpt_core::iosim::PfsMode;
use pckpt_core::{run_models, ModelKind, SimParams};
use pckpt_failure::LeadTimeModel;
use pckpt_workloads::Application;

fn main() {
    let leads = LeadTimeModel::desh_default();
    let runner = pckpt_bench::runner();
    let models = ModelKind::ALL;
    let mut t = Table::new(vec![
        "app",
        "model",
        "analytic total (h)",
        "fluid total (h)",
        "delta",
        "analytic FT",
        "fluid FT",
    ])
    .with_title(format!(
        "Fluid vs analytic PFS timing ({} runs, paired traces)",
        pckpt_bench::runs()
    ));
    for app_name in ["CHIMERA", "XGC", "POP"] {
        let app = Application::by_name(app_name).unwrap();
        let analytic = run_models(
            &SimParams::paper_defaults(ModelKind::B, app),
            &models,
            &leads,
            &runner,
        );
        let mut pf = SimParams::paper_defaults(ModelKind::B, app);
        pf.pfs_mode = PfsMode::Fluid;
        let fluid = run_models(&pf, &models, &leads, &runner);
        for m in models {
            let a = analytic.get(m).unwrap();
            let f = fluid.get(m).unwrap();
            let at = a.total_hours.mean();
            let ft = f.total_hours.mean();
            t.row(vec![
                app_name.to_string(),
                m.name().to_string(),
                format!("{at:.2}"),
                format!("{ft:.2}"),
                format!("{:+.1}%", 100.0 * (ft - at) / at.max(1e-9)),
                format!("{:.2}", a.ft_ratio_pooled()),
                format!("{:.2}", f.ft_ratio_pooled()),
            ]);
        }
    }
    println!("{t}");
    println!(
        "Reading: small deltas validate the paper's closed-form assumption (the OCI\n\
         dwarfs the drain window). p-ckpt's FT ratios must be unchanged — the round\n\
         suspends the drain, reproducing 'contention-free access' literally. Any\n\
         FT-ratio loss concentrates in M1, whose safeguard commit races the drain."
    );
}

//! Fig. 4 — impact of lead-time variability on safeguard checkpointing
//! (M1) and live migration (M2).
//!
//! For CHIMERA, XGC and POP, sweeps the prediction lead scale over
//! −50 %…+50 % and prints each model's per-bucket overhead reduction
//! relative to the base model B (the y-axis of Fig. 4; higher is better,
//! 0 % = no change, 100 % = overhead eliminated).
//!
//! All 15 sweep cells run through one work-stealing grid: each app's
//! five lead scales share per-run failure traces through a
//! scale-invariant trace core, and the lead-blind B lanes collapse to
//! one execution per app (common random numbers across the whole sweep,
//! not just within a cell).

use pckpt_analysis::Table;
use pckpt_bench::{
    figure_apps, print_grid_metrics, reduction_pct, run_cells, sweep_cell, LEAD_SCALES,
    LEAD_SCALE_LABELS,
};
use pckpt_core::ModelKind;
use pckpt_failure::FailureDistribution;

fn main() {
    let models = [ModelKind::B, ModelKind::M1, ModelKind::M2];
    println!(
        "Fig. 4 — overhead reduction vs B (%), by bucket, under lead-time variability\n\
         ({} runs per cell; Titan failure distribution)\n",
        pckpt_bench::runs()
    );
    let apps = figure_apps();
    let cells: Vec<_> = apps
        .iter()
        .flat_map(|app| {
            LEAD_SCALES.iter().map(move |&scale| {
                sweep_cell(
                    *app,
                    &models,
                    FailureDistribution::OLCF_TITAN,
                    scale,
                    None,
                    None,
                )
            })
        })
        .collect();
    let grid = run_cells(&cells);
    for (a, app) in apps.iter().enumerate() {
        let mut t = Table::new(vec![
            "lead",
            "M1 ckpt",
            "M1 recomp",
            "M1 recovery",
            "M2 ckpt",
            "M2 recomp",
            "M2 recovery",
        ])
        .with_title(format!("{} ({} nodes)", app.name, app.nodes));
        for (s, label) in LEAD_SCALE_LABELS.iter().enumerate() {
            let c = grid.cell(a * LEAD_SCALES.len() + s);
            let b = c.get(ModelKind::B).unwrap();
            let mut row = vec![label.to_string()];
            for m in [ModelKind::M1, ModelKind::M2] {
                let x = c.get(m).unwrap();
                row.push(format!(
                    "{:+.1}",
                    reduction_pct(x.ckpt_hours.mean(), b.ckpt_hours.mean())
                ));
                row.push(format!(
                    "{:+.1}",
                    reduction_pct(x.recomp_hours.mean(), b.recomp_hours.mean())
                ));
                row.push(format!(
                    "{:+.1}",
                    reduction_pct(x.recovery_hours.mean(), b.recovery_hours.mean())
                ));
            }
            t.row(row);
        }
        println!("{t}");
    }
    println!(
        "Paper shape: M1 gives no benefit for CHIMERA/XGC, ~85% recomputation elimination\n\
         for small apps; M2's benefits collapse for CHIMERA once leads shrink 10%, and for\n\
         XGC only below -50%."
    );
    print_grid_metrics("fig4", &grid);
}

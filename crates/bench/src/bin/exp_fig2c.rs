//! Fig. 2c — weak-scaling aggregate bandwidth heat map.
//!
//! Renders the (node count × per-node transfer size) performance matrix
//! the simulation looks checkpoint-commit times up in.

use pckpt_analysis::HeatMap;
use pckpt_ioperf::{PfsModel, GB, TB};

fn main() {
    let pfs = PfsModel::summit();
    let nodes: Vec<u64> = (0..=12).map(|e| 1u64 << e).collect(); // 1..4096
    let sizes: Vec<f64> = [0.5, 2.0, 8.0, 32.0, 128.0, 512.0]
        .iter()
        .map(|g| g * GB)
        .collect();

    let mut values = Vec::new();
    for &n in &nodes {
        for &s in &sizes {
            values.push(pfs.aggregate_write_bw(n, s) / TB);
        }
    }
    let map = HeatMap::new(
        "Fig. 2c — aggregate write bandwidth (TB/s), nodes × per-node transfer size",
        nodes.iter().map(|n| format!("{n} nodes")).collect(),
        sizes.iter().map(|s| format!("{:.1}GB", s / GB)).collect(),
        values.clone(),
    );
    println!("{}", map.render());

    println!("Numeric matrix (TB/s):");
    print!("{:>10}", "");
    for &s in &sizes {
        print!("{:>9.1}GB", s / GB);
    }
    println!();
    for (i, &n) in nodes.iter().enumerate() {
        print!("{n:>10}");
        for j in 0..sizes.len() {
            print!("{:>11.3}", values[i * sizes.len() + j]);
        }
        println!();
    }
    println!(
        "\nCeiling {:.1} TB/s; single-node peak {:.1} GB/s; contention exponent β = {:.2}.",
        pfs.ceiling() / TB,
        pfs.single_node_write_bw(512.0 * GB) / GB,
        pfs.contention_exponent(),
    );
    println!(
        "Calibration anchors: XGC 1515-node commit {:.0}s, S3D 505-node commit {:.0}s,\n\
         CHIMERA 2272-node commit {:.0}s (these drive Table II's M1 FT ratios).",
        pfs.write_secs(1515, 98.8 * GB),
        pfs.write_secs(505, 40.0 * GB),
        pfs.write_secs(2272, 284.5 * GB),
    );
}

//! Table I — HPC workload characteristics, plus the derived per-app
//! latencies every later experiment hinges on.

use pckpt_analysis::Table;
use pckpt_core::{ModelKind, SimParams};
use pckpt_ioperf::GB;
use pckpt_workloads::TABLE_I;

fn main() {
    let mut t = Table::new(vec![
        "application",
        "nodes",
        "ckpt total (GB)",
        "ckpt/node (GB)",
        "compute (h)",
    ])
    .with_title("Table I — HPC workload characteristics (Summit-scaled per Eq. 3)");
    for app in &TABLE_I {
        t.row(vec![
            app.name.to_string(),
            format!("{}", app.nodes),
            format!("{:.1}", app.checkpoint_total / GB),
            format!("{:.2}", app.checkpoint_per_node_gb()),
            format!("{:.0}", app.compute_hours),
        ]);
    }
    println!("{t}");

    let mut d = Table::new(vec![
        "application",
        "t_bb (s)",
        "t_pfs_1node (s)",
        "t_pfs_all (s)",
        "theta_LM (s)",
        "OCI eq.1 (h)",
    ])
    .with_title("Derived latencies (Summit I/O model, Titan failure rates)");
    for app in &TABLE_I {
        let p = SimParams::paper_defaults(ModelKind::P2, *app);
        let oci = pckpt_core::oci::young_oci_secs(
            p.bb_write_secs(),
            p.distribution.job_rate(app.nodes),
        );
        d.row(vec![
            app.name.to_string(),
            format!("{:.1}", p.bb_write_secs()),
            format!("{:.1}", p.io.pfs.single_node_write_secs(p.per_node_bytes())),
            format!("{:.1}", p.io.pfs.write_secs(app.nodes, p.per_node_bytes())),
            format!("{:.1}", p.theta_secs()),
            format!("{:.2}", oci / 3600.0),
        ]);
    }
    println!("{d}");
    println!(
        "t_pfs_1node is the p-ckpt phase-1 latency; t_pfs_all is the safeguard commit;\n\
         theta_LM the live-migration latency (alpha = 3, DRAM-capped, pre-copy 1.45x)."
    );
}

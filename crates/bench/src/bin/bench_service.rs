//! End-to-end campaign-service timing on the Fig.-4-shaped sweep:
//! cold compute vs warm content-addressed replay, plus crash-resume
//! cost through the sweep journal.
//!
//! Every timed variant is gated on the digest oracle first: the
//! service-served grid must be bit-identical (per
//! [`pckpt_service::grid_digest`]) to a direct `run_grid_filtered`
//! call before any speedup is printed. Machine-readable lines:
//!
//! ```text
//! GRID_JSON {"name":"service_cache_fig4",  ... "cache_hit_speedup":..}
//! GRID_JSON {"name":"service_journal_fig4",... "journal_resume_overhead_pct":..}
//! METRICS_JSON {...,"cache_hits":..,"uncached":false}
//! ```
//!
//! The cold/warm ratio is only meaningful when the cold side actually
//! simulates for a while; at smoke budgets (`PCKPT_RUNS=1`) the
//! numbers are still printed but the ≥ 50× floor is not asserted.

use std::path::PathBuf;
use std::time::Instant;

use pckpt_bench::{figure_apps, runs, seed, sweep_cell};
use pckpt_core::{run_grid_filtered, GridCell, RunnerConfig};
use pckpt_failure::{FailureDistribution, LeadTimeModel};
use pckpt_service::{grid_digest, CampaignRequest, Service, ServiceConfig, SyncPolicy};

const SWEEP_SCALES: [f64; 4] = [1.5, 1.1, 0.9, 0.5];
const MODELS: [pckpt_core::ModelKind; 2] =
    [pckpt_core::ModelKind::B, pckpt_core::ModelKind::M2];

fn fig4_cells() -> Vec<GridCell> {
    figure_apps()
        .into_iter()
        .flat_map(|app| {
            SWEEP_SCALES.iter().map(move |&s| {
                sweep_cell(app, &MODELS, FailureDistribution::OLCF_TITAN, s, None, None)
            })
        })
        .collect()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pckpt-bench-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service(cache: &PathBuf, state: &PathBuf) -> Service {
    let mut cfg = ServiceConfig::in_dirs(Some(cache.clone()), Some(state.clone()));
    cfg.sync = SyncPolicy::Off; // benching compute vs replay, not fsync
    Service::open(cfg).expect("open service")
}

fn main() {
    // Service reuse only applies to fixed-run campaigns, so the bench
    // pins its own budget (still `PCKPT_RUNS`-scalable for smokes).
    let budget = runs().min(1024);
    let cells = fig4_cells();
    let config = RunnerConfig::new(budget, seed());
    let req = CampaignRequest {
        name: "service_fig4".into(),
        cells: cells.clone(),
        config,
        prefilter: None,
    };
    let leads = LeadTimeModel::desh_default();

    println!(
        "service cache/journal bench: {} cells x {budget} runs x {} models",
        cells.len(),
        MODELS.len()
    );

    // The oracle: a direct, service-free sweep.
    let direct = run_grid_filtered(&cells, &leads, &config, None);
    let golden = grid_digest(&direct).hex();

    // Cold: compute everything, journal + cache as we go. Daemons are
    // long-running, so the timers cover request service, not startup.
    let cache_dir = scratch("cache");
    let cold_state = scratch("state-cold");
    let daemon = service(&cache_dir, &cold_state);
    let started = Instant::now();
    let cold = daemon.execute(&req).expect("cold campaign");
    let cold_wall = started.elapsed().as_secs_f64();
    assert_eq!(grid_digest(&cold.grid).hex(), golden, "cold != direct");
    assert_eq!(cold.meta.computed_cells as usize, cells.len());

    // Warm: a fresh daemon instance, fresh journal dir, same cache —
    // every cell must be served from its content-addressed frame.
    let warm_state = scratch("state-warm");
    let daemon = service(&cache_dir, &warm_state);
    let started = Instant::now();
    let warm = daemon.execute(&req).expect("warm campaign");
    let warm_wall = started.elapsed().as_secs_f64();
    assert_eq!(grid_digest(&warm.grid).hex(), golden, "warm != direct");
    assert_eq!(warm.meta.computed_cells, 0, "warm pass must not simulate");
    let reused = warm.meta.cache_hits + warm.meta.journal_recovered;
    let cache_hit_rate = reused as f64 / cells.len() as f64;
    let cache_hit_speedup = cold_wall / warm_wall.max(1e-9);
    println!(
        "  cold {cold_wall:.3} s, warm {warm_wall:.4} s  ({cache_hit_speedup:.1}x, \
         hit rate {cache_hit_rate:.2}, digests bit-identical)"
    );
    println!(
        "GRID_JSON {{\"name\":\"service_cache_fig4\",\"cells\":{n},\"runs_per_cell\":{budget},\
         \"cold_wall_secs\":{cold_wall:.6},\"warm_wall_secs\":{warm_wall:.6},\
         \"cache_hit_speedup\":{cache_hit_speedup:.3},\"cache_hit_rate\":{cache_hit_rate:.4},\
         \"digest_match\":true}}",
        n = cells.len(),
    );
    println!("METRICS_JSON {}", warm.meta_json("service_fig4_grid"));
    if budget >= 64 {
        assert!(
            cache_hit_speedup >= 50.0,
            "warm replay must be >= 50x faster than cold compute, got {cache_hit_speedup:.1}x"
        );
    }

    // Crash resume: cut the cold journal at an arbitrary byte offset
    // (half the file — a real crash tears wherever it tears), drop the
    // cache so the journal is the only reuse layer, and resume.
    let journal_path = std::fs::read_dir(&cold_state)
        .expect("journal dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .next()
        .expect("one journal");
    let journal_bytes = std::fs::read(&journal_path).expect("journal bytes");
    std::fs::write(&journal_path, &journal_bytes[..journal_bytes.len() / 2])
        .expect("tear journal");
    std::fs::remove_dir_all(&cache_dir).expect("drop cache");
    let daemon = service(&scratch("cache-resume"), &cold_state);
    let started = Instant::now();
    let resumed = daemon.execute(&req).expect("resumed campaign");
    let resume_wall = started.elapsed().as_secs_f64();
    assert_eq!(grid_digest(&resumed.grid).hex(), golden, "resume != direct");
    assert_eq!(
        resumed.meta.journal_recovered + resumed.meta.computed_cells,
        cells.len() as u64,
        "every cell recovered or recomputed"
    );

    // Replay overhead: resume over the *complete* journal (nothing to
    // recompute) — pure recovery + refold cost as a share of cold.
    std::fs::write(&journal_path, &journal_bytes).expect("restore journal");
    let daemon = service(&scratch("cache-replay"), &cold_state);
    let started = Instant::now();
    let replayed = daemon.execute(&req).expect("replayed campaign");
    let replay_wall = started.elapsed().as_secs_f64();
    assert_eq!(grid_digest(&replayed.grid).hex(), golden, "replay != direct");
    assert_eq!(replayed.meta.computed_cells, 0);
    let journal_resume_overhead_pct = 100.0 * replay_wall / cold_wall.max(1e-9);
    println!(
        "  torn-journal resume {resume_wall:.3} s ({} recovered, {} recomputed); \
         full-journal replay {replay_wall:.4} s ({journal_resume_overhead_pct:.2}% of cold)",
        resumed.meta.journal_recovered, resumed.meta.computed_cells,
    );
    println!(
        "GRID_JSON {{\"name\":\"service_journal_fig4\",\"cells\":{n},\"runs_per_cell\":{budget},\
         \"cold_wall_secs\":{cold_wall:.6},\"resume_wall_secs\":{resume_wall:.6},\
         \"replay_wall_secs\":{replay_wall:.6},\
         \"journal_resume_overhead_pct\":{journal_resume_overhead_pct:.3},\
         \"resume_recovered\":{rec},\"resume_computed\":{comp},\"digest_match\":true}}",
        n = cells.len(),
        rec = resumed.meta.journal_recovered,
        comp = resumed.meta.computed_cells,
    );

    for dir in [cache_dir, cold_state, warm_state] {
        let _ = std::fs::remove_dir_all(&dir);
    }
    for tag in ["cache-resume", "cache-replay"] {
        let _ = std::fs::remove_dir_all(std::env::temp_dir().join(format!(
            "pckpt-bench-service-{tag}-{}",
            std::process::id()
        )));
    }
}

//! Prints campaign digests (bit patterns of key aggregates) for the
//! P2/XGC cell in both PFS modes — a manual scheduler-equivalence probe.
use pckpt_core::iosim::PfsMode;
use pckpt_core::{run_models, Aggregate, ModelKind, RunnerConfig, SimParams};
use pckpt_failure::LeadTimeModel;
use pckpt_workloads::Application;

fn digest(agg: &Aggregate) -> String {
    format!(
        "{:016x}-{:016x}-{:016x}-{:016x}",
        agg.total_hours.mean().to_bits(),
        agg.ft_ratio_pooled().to_bits(),
        agg.failures.sum().to_bits(),
        agg.total_hours_quantile(0.9).to_bits()
    )
}

fn main() {
    let leads = LeadTimeModel::desh_default();
    let app = Application::by_name("XGC").expect("Table I app");
    for (name, mode) in [("analytic", PfsMode::Analytic), ("fluid", PfsMode::Fluid)] {
        let mut params = SimParams::paper_defaults(ModelKind::P2, app);
        params.pfs_mode = mode;
        let campaign = run_models(
            &params,
            &[ModelKind::B, ModelKind::P2],
            &leads,
            &RunnerConfig::new(24, 41),
        );
        for (m, agg) in campaign.models.iter().zip(&campaign.aggregates) {
            println!("DIGEST {name} {m:?} {}", digest(agg));
        }
    }
}

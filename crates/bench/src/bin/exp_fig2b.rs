//! Fig. 2b — single-node aggregate write bandwidth on GPFS.
//!
//! Prints the bandwidth curves over aggregate transfer size for task
//! counts 1–42, reproducing the experiment that established 8 MPI tasks
//! as the optimal writer count.

use pckpt_analysis::Table;
use pckpt_ioperf::{NodeIoModel, GB, MB};

fn main() {
    let model = NodeIoModel::summit();
    let tasks = [1u32, 2, 4, 8, 16, 28, 42];
    let sizes = [
        64.0 * MB,
        256.0 * MB,
        1.0 * GB,
        4.0 * GB,
        16.0 * GB,
        64.0 * GB,
        256.0 * GB,
    ];

    let mut headers: Vec<String> = vec!["transfer".into()];
    headers.extend(tasks.iter().map(|t| format!("{t} tasks")));
    let mut table = Table::new(headers)
        .with_title("Fig. 2b — single-node aggregate write bandwidth (GB/s) by task count");
    for &size in &sizes {
        let mut row = vec![human_size(size)];
        for &t in &tasks {
            row.push(format!("{:.2}", model.bandwidth(t, size) / GB));
        }
        table.row(row);
    }
    println!("{table}");

    let peak = model.optimal_bandwidth(256.0 * GB) / GB;
    println!(
        "Peak at {} tasks: {:.2} GB/s for large transfers (paper: 13-13.5 GB/s at 8 tasks).",
        model.optimal_tasks(),
        peak
    );
    println!("The C/R models therefore perform checkpoint I/O with 8 writer tasks per node.");
}

fn human_size(bytes: f64) -> String {
    if bytes >= GB {
        format!("{:.0} GB", bytes / GB)
    } else {
        format!("{:.0} MB", bytes / MB)
    }
}

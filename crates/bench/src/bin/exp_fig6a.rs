//! Fig. 6a — fault-tolerance overhead of all five C/R models on all six
//! applications under OLCF Titan's Weibull failure distribution (the
//! paper's "Titan's distribution applies to Summit" assumption).

use pckpt_failure::FailureDistribution;

fn main() {
    pckpt_bench::print_fig6_panel(
        FailureDistribution::OLCF_TITAN,
        "Fig. 6a — C/R overhead under OLCF Titan's failure distribution",
    );
    println!(
        "\nPaper reference: P1 reduces total overhead by ≈42-55%, P2 by ≈53-65%;\n\
         M2 31-61%; M1 provides no benefit for large applications."
    );
}

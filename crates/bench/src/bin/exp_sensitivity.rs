//! Calibration sensitivity study (extension).
//!
//! DESIGN.md §7 lists the constants this reproduction had to calibrate
//! because the paper's raw inputs are unpublished: the GPFS contention
//! exponent β, the LM pre-copy factor, and the predictor recall. This
//! study sweeps each one (one at a time, everything else at defaults) and
//! reports how the headline quantities respond — showing which
//! conclusions are robust to the substitutions and which are sensitive.
//!
//! All 14 sweep points run as one grid. β and the pre-copy factor do not
//! enter trace generation, so those ten cells share one trace group with
//! common random numbers; the recall sweep changes the predictor and
//! therefore intentionally gets fresh trace groups per point.

use pckpt_analysis::Table;
use pckpt_bench::{print_grid_metrics, run_cells};
use pckpt_core::{CampaignResult, GridCell, ModelKind, SimParams};
use pckpt_ioperf::{IoHierarchy, NodeIoModel, PfsModel, TB};
use pckpt_workloads::Application;

const MODELS: [ModelKind; 4] = [ModelKind::B, ModelKind::M2, ModelKind::P1, ModelKind::P2];

fn headline(c: &CampaignResult) -> (f64, f64, f64, f64) {
    (
        c.reduction(ModelKind::P1, ModelKind::B).unwrap(),
        c.reduction(ModelKind::P2, ModelKind::B).unwrap(),
        c.get(ModelKind::P1).unwrap().ft_ratio_pooled(),
        c.get(ModelKind::M2).unwrap().ft_ratio_pooled(),
    )
}

fn row_of(t: &mut Table, label: String, h: (f64, f64, f64, f64)) {
    t.row(vec![
        label,
        format!("{:+.1}%", h.0),
        format!("{:+.1}%", h.1),
        format!("{:.2}", h.2),
        format!("{:.2}", h.3),
    ]);
}

fn main() {
    let app = Application::by_name("CHIMERA").unwrap();
    println!(
        "Calibration sensitivity — CHIMERA, {} runs per point. Defaults: β = 0.40,\n\
         pre-copy = 1.45, recall = 0.85.\n",
        pckpt_bench::runs()
    );

    let betas = [0.2, 0.3, 0.4, 0.5];
    let precopies = [1.0, 1.2, 1.45, 1.7, 2.0];
    let recalls = [0.7, 0.8, 0.85, 0.9, 0.95];

    let mut cells = Vec::new();
    for &beta in &betas {
        let mut params = SimParams::paper_defaults(ModelKind::B, app);
        params.io = IoHierarchy {
            pfs: PfsModel::from_parts(NodeIoModel::summit(), 2.5 * TB, beta),
            ..IoHierarchy::summit()
        };
        cells.push(GridCell::new(params, &MODELS).with_label(format!("beta-{beta:.2}")));
    }
    for &factor in &precopies {
        let mut params = SimParams::paper_defaults(ModelKind::B, app);
        params.lm_precopy_factor = factor;
        cells.push(GridCell::new(params, &MODELS).with_label(format!("precopy-{factor:.2}")));
    }
    for &recall in &recalls {
        let mut params = SimParams::paper_defaults(ModelKind::B, app);
        params.predictor = params.predictor.with_false_negative_rate(1.0 - recall);
        cells.push(GridCell::new(params, &MODELS).with_label(format!("recall-{recall:.2}")));
    }
    let grid = run_cells(&cells);

    // 1. GPFS contention exponent β.
    let mut t = Table::new(vec!["β", "P1 vs B", "P2 vs B", "P1 FT", "M2 FT"])
        .with_title("Sweep 1 — weak-scaling contention exponent β (aggregate ∝ n^{1−β})");
    for &beta in &betas {
        let c = grid.by_label(&format!("beta-{beta:.2}")).unwrap();
        row_of(&mut t, format!("{beta:.2}"), headline(c));
    }
    println!("{t}");
    println!(
        "β moves the safeguard/phase-2 commit times, so it shifts *where* p-ckpt's\n\
         advantage over safeguard lies, but phase 1 (single node) is β-independent —\n\
         P1's FT ratio should barely move.\n"
    );

    // 2. LM pre-copy factor.
    let mut t = Table::new(vec!["pre-copy", "P1 vs B", "P2 vs B", "P1 FT", "M2 FT"])
        .with_title("Sweep 2 — LM pre-copy factor (effective migration time multiplier)");
    for &factor in &precopies {
        let c = grid.by_label(&format!("precopy-{factor:.2}")).unwrap();
        row_of(&mut t, format!("{factor:.2}"), headline(c));
    }
    println!("{t}");
    println!(
        "The pre-copy factor sets θ and therefore M2's FT ratio (Table II's 0.47\n\
         anchor) and the LM/p-ckpt split inside P2; P1 is untouched by construction.\n"
    );

    // 3. Predictor recall.
    let mut t = Table::new(vec!["recall", "P1 vs B", "P2 vs B", "P1 FT", "M2 FT"])
        .with_title("Sweep 3 — predictor recall (1 − FN rate)");
    for &recall in &recalls {
        let c = grid.by_label(&format!("recall-{recall:.2}")).unwrap();
        row_of(&mut t, format!("{recall:.2}"), headline(c));
    }
    println!("{t}");
    println!(
        "Recall caps every FT ratio (Tables II/IV saturate near 0.85) and scales\n\
         all models' benefits roughly linearly — the paper's conclusions are about\n\
         *relative* orderings, which the sweeps above should leave intact."
    );
    print_grid_metrics("sensitivity", &grid);
}

//! Fig. 2a — failure-prediction lead-time distribution.
//!
//! Runs the full Desh-style pipeline: generate six months of synthetic
//! logs for three systems, mine the failure chains, and render one box
//! plot per sequence with its occurrence count and mean lead time — the
//! exact contents of the paper's Fig. 2a.

use pckpt_analysis::report::ratio;
use pckpt_analysis::{BoxPlotChart, Table};
use pckpt_failure::chains::{ChainAnalyzer, LogGenerator};
use pckpt_failure::LeadTimeModel;
use pckpt_simrng::SimRng;

fn main() {
    let mut rng = SimRng::seed_from(pckpt_bench::seed());
    let generator = LogGenerator::desh_default();
    let analyzer = ChainAnalyzer::desh_default();
    let six_months_secs = 0.5 * 365.25 * 24.0 * 3600.0;

    // Three systems' logs, mined jointly (the paper pools three HPC
    // systems' logs into one lead-time study).
    let mut all_chains = Vec::new();
    for (system, nodes, failures) in [
        ("system-A", 600u32, 520usize),
        ("system-B", 450, 400),
        ("system-C", 300, 280),
    ] {
        let (log, truth) = generator.generate(&mut rng, six_months_secs, nodes, failures);
        let report = analyzer.analyze(&log);
        println!(
            "{system}: {} log lines, {} failures planted, {} chains mined",
            log.len(),
            truth.len(),
            report.chains.len()
        );
        all_chains.extend(report.chains);
    }

    let design = LeadTimeModel::desh_default();
    let mut chart = BoxPlotChart::new("\nFig. 2a — lead time (seconds) per failure sequence", 60);
    let mut table = Table::new(vec![
        "seq", "label", "occurrences", "mean(s)", "q1", "median", "q3", "outliers",
    ])
    .with_title("\nMined lead-time statistics");

    for stat in design.sequences() {
        let leads: Vec<f64> = all_chains
            .iter()
            .filter(|c| c.sequence_id == stat.id)
            .map(|c| c.lead_secs())
            .collect();
        if leads.len() < 2 {
            continue;
        }
        let plot = pckpt_simrng::BoxPlot::new(&leads);
        chart.entry(
            format!("seq{:<2} (n={})", stat.id, leads.len()),
            [
                plot.whisker_lo,
                plot.q1,
                plot.median,
                plot.q3,
                plot.whisker_hi,
            ],
            format!("mean {:.0}s", plot.mean),
        );
        table.row(vec![
            format!("{}", stat.id),
            stat.label.to_string(),
            format!("{}", leads.len()),
            format!("{:.1}", plot.mean),
            ratio(plot.q1),
            ratio(plot.median),
            ratio(plot.q3),
            format!("{}", plot.outliers.len()),
        ]);
    }
    println!("{}", chart.render());
    println!("{table}");
    println!(
        "Design mixture mean: {:.1}s; paper reports second-to-minute scale leads\n\
         with most mass bounded by the whiskers (seqs 3-4 outlier-heavy).",
        design.mean_secs()
    );
}

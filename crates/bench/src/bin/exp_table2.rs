//! Table II — FT ratio (mitigated / all failures) for M1 and M2 under
//! lead-time variability.

use pckpt_analysis::report::ratio;
use pckpt_analysis::Table;
use pckpt_bench::{campaign, figure_apps, LEAD_SCALES, LEAD_SCALE_LABELS};
use pckpt_core::ModelKind;
use pckpt_failure::FailureDistribution;

fn main() {
    let models = [ModelKind::M1, ModelKind::M2];
    let apps = figure_apps();
    let mut t = Table::new(vec![
        "lead", "CHIMERA M1", "CHIMERA M2", "XGC M1", "XGC M2", "POP M1", "POP M2",
    ])
    .with_title(format!(
        "Table II — FT ratio for applications under M1 and M2 ({} runs)",
        pckpt_bench::runs()
    ));
    for (scale, label) in LEAD_SCALES.iter().zip(LEAD_SCALE_LABELS) {
        let mut row = vec![label.to_string()];
        for app in &apps {
            let c = campaign(
                *app,
                &models,
                FailureDistribution::OLCF_TITAN,
                *scale,
                None,
                None,
            );
            for m in models {
                row.push(ratio(c.get(m).unwrap().ft_ratio_pooled()));
            }
        }
        t.row(row);
    }
    println!("{t}");
    println!(
        "Paper reference (Table II): CHIMERA M1 ≈ 0.006, M2 0.47 at base leads;\n\
         XGC M1 0.04, M2 0.66; POP both ≈ 0.84-0.85."
    );
}

//! Table II — FT ratio (mitigated / all failures) for M1 and M2 under
//! lead-time variability.
//!
//! The 15 (app × lead-scale) cells run as one grid; within each app the
//! five scales share per-run failure traces through a scale-invariant
//! trace core.

use pckpt_analysis::report::ratio;
use pckpt_analysis::Table;
use pckpt_bench::{figure_apps, run_cells, sweep_cell, LEAD_SCALES, LEAD_SCALE_LABELS};
use pckpt_core::ModelKind;
use pckpt_failure::FailureDistribution;

fn main() {
    let models = [ModelKind::M1, ModelKind::M2];
    let apps = figure_apps();
    let mut t = Table::new(vec![
        "lead", "CHIMERA M1", "CHIMERA M2", "XGC M1", "XGC M2", "POP M1", "POP M2",
    ])
    .with_title(format!(
        "Table II — FT ratio for applications under M1 and M2 ({} runs)",
        pckpt_bench::runs()
    ));
    let cells: Vec<_> = LEAD_SCALES
        .iter()
        .flat_map(|&scale| {
            apps.iter().map(move |app| {
                sweep_cell(
                    *app,
                    &models,
                    FailureDistribution::OLCF_TITAN,
                    scale,
                    None,
                    None,
                )
            })
        })
        .collect();
    let grid = run_cells(&cells);
    for (s, label) in LEAD_SCALE_LABELS.iter().enumerate() {
        let mut row = vec![label.to_string()];
        for a in 0..apps.len() {
            let c = grid.cell(s * apps.len() + a);
            for m in models {
                row.push(ratio(c.get(m).unwrap().ft_ratio_pooled()));
            }
        }
        t.row(row);
    }
    println!("{t}");
    println!(
        "Paper reference (Table II): CHIMERA M1 ≈ 0.006, M2 0.47 at base leads;\n\
         XGC M1 0.04, M2 0.66; POP both ≈ 0.84-0.85."
    );
}

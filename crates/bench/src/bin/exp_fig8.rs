//! Fig. 8 — which proactive action dominates inside hybrid p-ckpt (P2)?
//!
//! For each application, sweeps the lead scale over ±90 % and prints the
//! difference between LM's and p-ckpt's shares of mitigated failures,
//! in percent of all mitigations: positive = LM dominant, negative =
//! p-ckpt dominant.
//!
//! The full 6-app × 7-scale matrix (42 cells) runs as one grid; each
//! app's seven scales share per-run failure traces through a
//! scale-invariant trace core, so the ±90 % axis is a common-random-
//! numbers comparison.

use pckpt_analysis::Table;
use pckpt_bench::{print_grid_metrics, run_cells, sweep_cell};
use pckpt_core::ModelKind;
use pckpt_failure::FailureDistribution;
use pckpt_workloads::TABLE_I;

fn main() {
    let scales = [0.1f64, 0.4, 0.7, 1.0, 1.3, 1.6, 1.9];
    let labels = ["-90%", "-60%", "-30%", "0%", "+30%", "+60%", "+90%"];
    let mut headers: Vec<String> = vec!["app".into()];
    headers.extend(labels.iter().map(|s| s.to_string()));
    let mut t = Table::new(headers).with_title(format!(
        "Fig. 8 — FT-share difference (LM − p-ckpt)/(all mitigations) in P2, % \n\
         (positive: LM dominant; negative: p-ckpt dominant; {} runs per cell)",
        pckpt_bench::runs()
    ));
    let cells: Vec<_> = TABLE_I
        .iter()
        .flat_map(|app| {
            scales.iter().map(move |&scale| {
                sweep_cell(
                    *app,
                    &[ModelKind::P2],
                    FailureDistribution::OLCF_TITAN,
                    scale,
                    None,
                    None,
                )
            })
        })
        .collect();
    let grid = run_cells(&cells);
    for (i, app) in TABLE_I.iter().enumerate() {
        let mut row = vec![app.name.to_string()];
        for s in 0..scales.len() {
            let a = grid
                .cell(i * scales.len() + s)
                .get(ModelKind::P2)
                .unwrap();
            let lm = a.mitigated_lm.sum();
            let pc = a.mitigated_pckpt.sum();
            let total = lm + pc;
            let diff = if total == 0.0 {
                0.0
            } else {
                100.0 * (lm - pc) / total
            };
            row.push(format!("{diff:+.0}"));
        }
        t.row(row);
    }
    println!("{t}");
    println!(
        "Paper shape: small apps stay above +75% across the whole range (LM handles\n\
         everything); as application size grows the difference shrinks at base leads,\n\
         and with shrinking leads p-ckpt takes over — earliest for CHIMERA, then XGC,\n\
         then S3D (Observation 4)."
    );
    print_grid_metrics("fig8", &grid);
}

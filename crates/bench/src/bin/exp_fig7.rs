//! Fig. 7 — impact of lead-time variability on p-ckpt (P1) and hybrid
//! p-ckpt (P2), the counterpart of Fig. 4 for this paper's models.

use pckpt_analysis::Table;
use pckpt_bench::{campaign, figure_apps, reduction_pct, LEAD_SCALES, LEAD_SCALE_LABELS};
use pckpt_core::ModelKind;
use pckpt_failure::FailureDistribution;

fn main() {
    let models = [ModelKind::B, ModelKind::P1, ModelKind::P2];
    println!(
        "Fig. 7 — overhead reduction vs B (%), by bucket, under lead-time variability\n\
         ({} runs per cell; Titan failure distribution)\n",
        pckpt_bench::runs()
    );
    for app in figure_apps() {
        let mut t = Table::new(vec![
            "lead",
            "P1 ckpt",
            "P1 recomp",
            "P1 recovery",
            "P2 ckpt",
            "P2 recomp",
            "P2 recovery",
        ])
        .with_title(format!("{} ({} nodes)", app.name, app.nodes));
        for (scale, label) in LEAD_SCALES.iter().zip(LEAD_SCALE_LABELS) {
            let c = campaign(
                app,
                &models,
                FailureDistribution::OLCF_TITAN,
                *scale,
                None,
                None,
            );
            let b = c.get(ModelKind::B).unwrap();
            let mut row = vec![label.to_string()];
            for m in [ModelKind::P1, ModelKind::P2] {
                let a = c.get(m).unwrap();
                row.push(format!(
                    "{:+.1}",
                    reduction_pct(a.ckpt_hours.mean(), b.ckpt_hours.mean())
                ));
                row.push(format!(
                    "{:+.1}",
                    reduction_pct(a.recomp_hours.mean(), b.recomp_hours.mean())
                ));
                row.push(format!(
                    "{:+.1}",
                    reduction_pct(a.recovery_hours.mean(), b.recovery_hours.mean())
                ));
            }
            t.row(row);
        }
        println!("{t}");
    }
    println!(
        "Paper shape: P1 keeps large recomputation reductions for CHIMERA down to -50%\n\
         leads; for XGC it nearly eliminates recomputation at every scale; P2's ckpt\n\
         reductions follow M2's while its recomputation robustness follows P1's."
    );
}

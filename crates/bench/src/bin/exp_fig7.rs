//! Fig. 7 — impact of lead-time variability on p-ckpt (P1) and hybrid
//! p-ckpt (P2), the counterpart of Fig. 4 for this paper's models.
//!
//! All 15 sweep cells run through one work-stealing grid; each app's
//! five lead scales share per-run failure traces through a
//! scale-invariant trace core, and the B lanes collapse to one
//! execution per app.

use pckpt_analysis::Table;
use pckpt_bench::{
    figure_apps, print_grid_metrics, reduction_pct, run_cells, sweep_cell, LEAD_SCALES,
    LEAD_SCALE_LABELS,
};
use pckpt_core::ModelKind;
use pckpt_failure::FailureDistribution;

fn main() {
    let models = [ModelKind::B, ModelKind::P1, ModelKind::P2];
    println!(
        "Fig. 7 — overhead reduction vs B (%), by bucket, under lead-time variability\n\
         ({} runs per cell; Titan failure distribution)\n",
        pckpt_bench::runs()
    );
    let apps = figure_apps();
    let cells: Vec<_> = apps
        .iter()
        .flat_map(|app| {
            LEAD_SCALES.iter().map(move |&scale| {
                sweep_cell(
                    *app,
                    &models,
                    FailureDistribution::OLCF_TITAN,
                    scale,
                    None,
                    None,
                )
            })
        })
        .collect();
    let grid = run_cells(&cells);
    for (a, app) in apps.iter().enumerate() {
        let mut t = Table::new(vec![
            "lead",
            "P1 ckpt",
            "P1 recomp",
            "P1 recovery",
            "P2 ckpt",
            "P2 recomp",
            "P2 recovery",
        ])
        .with_title(format!("{} ({} nodes)", app.name, app.nodes));
        for (s, label) in LEAD_SCALE_LABELS.iter().enumerate() {
            let c = grid.cell(a * LEAD_SCALES.len() + s);
            let b = c.get(ModelKind::B).unwrap();
            let mut row = vec![label.to_string()];
            for m in [ModelKind::P1, ModelKind::P2] {
                let x = c.get(m).unwrap();
                row.push(format!(
                    "{:+.1}",
                    reduction_pct(x.ckpt_hours.mean(), b.ckpt_hours.mean())
                ));
                row.push(format!(
                    "{:+.1}",
                    reduction_pct(x.recomp_hours.mean(), b.recomp_hours.mean())
                ));
                row.push(format!(
                    "{:+.1}",
                    reduction_pct(x.recovery_hours.mean(), b.recovery_hours.mean())
                ));
            }
            t.row(row);
        }
        println!("{t}");
    }
    println!(
        "Paper shape: P1 keeps large recomputation reductions for CHIMERA down to -50%\n\
         leads; for XGC it nearly eliminates recomputation at every scale; P2's ckpt\n\
         reductions follow M2's while its recomputation robustness follows P1's."
    );
    print_grid_metrics("fig7", &grid);
}

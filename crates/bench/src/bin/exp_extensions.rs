//! Extension studies beyond the paper's evaluation.
//!
//! 1. **Background PFS traffic.** The paper assumes an unshared file
//!    system and notes (Sec. IV) that congestion "will add more overhead
//!    for the non-frequent and failure prediction driven proactive
//!    checkpoints (safeguard and p-ckpt) ... but not for the asynchronous
//!    periodic checkpoints". We sweep the bandwidth share left to the job
//!    during synchronous PFS operations and measure which models suffer.
//! 2. **Failure locality.** Production failures concentrate on repeat
//!    offenders; we compare uniform node selection against a hotspot
//!    model (5 % of nodes, 20× weight).
//! 3. **Lead-time estimation error.** The paper assumes the predictor
//!    reports the exact lead ("we consider the actual lead time of any
//!    failure during simulation"). With a noisy estimate the C/R model
//!    can pick a migration that loses its race (overestimate) or fall
//!    back to p-ckpt needlessly (underestimate).

use pckpt_analysis::Table;
use pckpt_core::config::BackgroundTraffic;
use pckpt_core::{run_models, ModelKind, SimParams};
use pckpt_failure::generator::NodeSelection;
use pckpt_failure::LeadTimeModel;
use pckpt_workloads::Application;

fn main() {
    let leads = LeadTimeModel::desh_default();
    let runner = pckpt_bench::runner();
    let runs = pckpt_bench::runs();
    let models = [ModelKind::B, ModelKind::M1, ModelKind::M2, ModelKind::P1, ModelKind::P2];

    // ------------------------------------------------------------------
    // Extension 1: background traffic sweep.
    // ------------------------------------------------------------------
    let mut t = Table::new(vec![
        "app",
        "PFS share",
        "M1 vs B",
        "M2 vs B",
        "P1 vs B",
        "P2 vs B",
        "P1 FT",
    ])
    .with_title(format!(
        "Extension 1 — synchronous-PFS congestion ({runs} runs; share = fraction of\n\
         bandwidth left to the job during proactive commits and recoveries)"
    ));
    for app_name in ["CHIMERA", "XGC"] {
        let app = Application::by_name(app_name).unwrap();
        for share in [1.0f64, 0.75, 0.5, 0.25] {
            let mut params = SimParams::paper_defaults(ModelKind::B, app);
            if share < 1.0 {
                params.background_traffic = Some(BackgroundTraffic::new(share, 0.1));
            }
            let c = run_models(&params, &models, &leads, &runner);
            let b = c.get(ModelKind::B).unwrap();
            let red = |m| {
                format!("{:+.1}%", c.get(m).unwrap().reduction_vs(b))
            };
            t.row(vec![
                app_name.to_string(),
                format!("{:.0}%", share * 100.0),
                red(ModelKind::M1),
                red(ModelKind::M2),
                red(ModelKind::P1),
                red(ModelKind::P2),
                format!("{:.2}", c.get(ModelKind::P1).unwrap().ft_ratio_pooled()),
            ]);
        }
    }
    println!("{t}");
    println!(
        "Expected: B is untouched (its PFS use is asynchronous); LM (M2) is\n\
         untouched (network path); p-ckpt and safeguard lose FT ratio as their\n\
         commit windows stretch — but p-ckpt's short phase-1 degrades much more\n\
         gracefully than the safeguard's full-job commit.\n"
    );

    // ------------------------------------------------------------------
    // Extension 2: failure locality.
    // ------------------------------------------------------------------
    let mut t = Table::new(vec![
        "app",
        "selection",
        "failures/run",
        "P2 vs B",
        "P2 FT",
        "LM share of mitigations",
    ])
    .with_title("Extension 2 — failure locality (hotspots: 5% of nodes, 20x weight)");
    for app_name in ["CHIMERA", "XGC", "S3D"] {
        let app = Application::by_name(app_name).unwrap();
        for (sel, label) in [
            (NodeSelection::Uniform, "uniform (paper)"),
            (
                NodeSelection::Hotspot {
                    fraction: 0.05,
                    weight: 20.0,
                },
                "hotspot",
            ),
        ] {
            let mut params = SimParams::paper_defaults(ModelKind::B, app);
            params.node_selection = sel;
            let c = run_models(&params, &[ModelKind::B, ModelKind::P2], &leads, &runner);
            let b = c.get(ModelKind::B).unwrap();
            let p2 = c.get(ModelKind::P2).unwrap();
            let lm = p2.mitigated_lm.sum();
            let pc = p2.mitigated_pckpt.sum();
            let lm_share = if lm + pc > 0.0 { lm / (lm + pc) } else { 0.0 };
            t.row(vec![
                app_name.to_string(),
                label.to_string(),
                format!("{:.2}", b.failures.mean()),
                format!("{:+.1}%", p2.reduction_vs(b)),
                format!("{:.2}", p2.ft_ratio_pooled()),
                format!("{:.0}%", lm_share * 100.0),
            ]);
        }
    }
    println!("{t}");
    println!(
        "Note: live migration retires the vulnerable node, so under locality a\n\
         completed LM removes a repeat offender — hotspot runs lean slightly more\n\
         on LM than the uniform baseline.\n"
    );

    // ------------------------------------------------------------------
    // Extension 3: lead-time estimation error.
    // ------------------------------------------------------------------
    let mut t = Table::new(vec![
        "app",
        "lead error CV",
        "M2 FT",
        "P2 FT",
        "M2 vs B",
        "P2 vs B",
    ])
    .with_title(
        "Extension 3 — lead-time estimation error (decide on the estimate, fail on schedule)",
    );
    for app_name in ["CHIMERA", "XGC"] {
        let app = Application::by_name(app_name).unwrap();
        for cv in [0.0f64, 0.2, 0.5, 1.0] {
            let mut params = SimParams::paper_defaults(ModelKind::B, app);
            params.lead_error_cv = cv;
            let c = run_models(
                &params,
                &[ModelKind::B, ModelKind::M2, ModelKind::P2],
                &leads,
                &runner,
            );
            let b = c.get(ModelKind::B).unwrap();
            let m2 = c.get(ModelKind::M2).unwrap();
            let p2 = c.get(ModelKind::P2).unwrap();
            t.row(vec![
                app_name.to_string(),
                format!("{cv:.1}"),
                format!("{:.2}", m2.ft_ratio_pooled()),
                format!("{:.2}", p2.ft_ratio_pooled()),
                format!("{:+.1}%", m2.reduction_vs(b)),
                format!("{:+.1}%", p2.reduction_vs(b)),
            ]);
        }
    }
    println!("{t}");
    println!(
        "Expected: estimation noise hurts LM-only M2 twice over (overestimates lose\n\
         races, underestimates forgo feasible migrations), while hybrid P2 degrades\n\
         gently — a wrong LM call usually still leaves time for p-ckpt's short\n\
         phase-1 commit on the re-arm, and underestimates merely shift work to\n\
         p-ckpt."
    );
}

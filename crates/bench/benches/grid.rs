//! Grid sweep engine micro-benchmarks.
//!
//! `grid_sweep` times a fig4-shaped 4-cell sweep (lead scales × [B, M2]
//! on POP) at a small, fixed run count two ways: `serial_cells` runs one
//! campaign per cell back to back (the pre-grid behavior), `grid` runs
//! all cells through one work-stealing pool with cross-cell trace
//! sharing and lead-blind deduplication. Their ratio is the
//! work-elimination speedup `scripts/bench.sh` tracks; both are pinned
//! to one thread so the comparison measures eliminated work, not
//! scheduling luck.
//!
//! `grid_unit_warm` times one warm worker unit execution — the grid's
//! steady-state inner loop — split into a trace-cache *miss* (generate)
//! and *hit* (reuse) so the cache's per-unit saving is visible directly.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pckpt_core::{run_grid, run_models, GridCell, GridPlan, GridWorker, ModelKind, RunnerConfig, SimParams};
use pckpt_failure::{FailureDistribution, LeadTimeModel};
use pckpt_simrng::SimRng;
use pckpt_workloads::Application;

const SWEEP_SCALES: [f64; 4] = [1.5, 1.1, 0.9, 0.5];
const MODELS: [ModelKind; 2] = [ModelKind::B, ModelKind::M2];
const RUNS: usize = 8;
const SEED: u64 = 20_220_530;

fn sweep_cells(app_name: &str) -> Vec<GridCell> {
    let app = Application::by_name(app_name).expect("Table I app");
    SWEEP_SCALES
        .iter()
        .map(|&scale| {
            let mut p =
                SimParams::with_distribution(ModelKind::B, app, FailureDistribution::OLCF_TITAN);
            p.lead_scale = scale;
            GridCell::new(p, &MODELS)
        })
        .collect()
}

fn bench_grid_sweep(c: &mut Criterion) {
    let leads = LeadTimeModel::desh_default();
    let cells = sweep_cells("POP");
    let mut cfg = RunnerConfig::new(RUNS, SEED);
    cfg.threads = 1;

    let mut group = c.benchmark_group("grid_sweep");
    group.bench_function("serial_cells_pop", |b| {
        b.iter(|| {
            for cell in &cells {
                let campaign = run_models(&cell.params, &cell.models, &leads, &cfg);
                black_box(campaign.aggregates[0].total_hours.mean());
            }
        })
    });
    group.bench_function("grid_pop", |b| {
        b.iter(|| {
            let grid = run_grid(&cells, &leads, &cfg);
            black_box(grid.cells[0].aggregates[0].total_hours.mean());
        })
    });
    group.finish();
}

fn bench_grid_unit_warm(c: &mut Criterion) {
    let leads = LeadTimeModel::desh_default();
    let cells = sweep_cells("XGC");
    let plan = GridPlan::new(&cells, &leads);
    let master = SimRng::seed_from(SEED);
    let mut worker = GridWorker::new(&plan);
    // Touch every unit once so simulators and buffers exist.
    for unit in 0..plan.units() {
        worker.run_unit(&master, 0, unit);
    }

    let mut group = c.benchmark_group("grid_unit_warm");
    // Unit 0 at a fresh run index every iteration: trace cache miss.
    let mut run = 1usize;
    group.bench_function("trace_miss_xgc", |b| {
        b.iter(|| {
            let r = worker.run_unit(&master, run, 0);
            run += 1;
            black_box(r.wall_secs);
        })
    });
    // Alternate units of one run: every execution after the first is a
    // trace-cache hit.
    let last = plan.units() - 1;
    group.bench_function("trace_hit_xgc", |b| {
        b.iter(|| {
            let r = worker.run_unit(&master, 0, last);
            black_box(r.wall_secs);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_grid_sweep, bench_grid_unit_warm);
criterion_main!(benches);

//! Criterion benchmarks of the C/R models themselves: trace generation
//! and single-run simulation cost per application × model. These numbers
//! size the Monte-Carlo campaigns (1000 runs × 6 apps × 5 models).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pckpt_core::{CrSim, ModelKind, SimParams};
use pckpt_failure::{FailureTrace, LeadTimeModel, TraceConfig};
use pckpt_simrng::SimRng;
use pckpt_workloads::Application;

fn bench_trace_generation(c: &mut Criterion) {
    let leads = LeadTimeModel::desh_default();
    let mut group = c.benchmark_group("trace_generation");
    for name in ["CHIMERA", "POP"] {
        let app = Application::by_name(name).unwrap();
        let params = SimParams::paper_defaults(ModelKind::P2, app);
        let cfg = TraceConfig::new(
            params.distribution,
            app.nodes,
            app.compute_hours * params.horizon_factor,
        )
        .with_projection(params.projection);
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            let mut rng = SimRng::seed_from(7);
            b.iter(|| {
                black_box(FailureTrace::generate(
                    cfg,
                    &leads,
                    &params.predictor,
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

fn bench_single_run(c: &mut Criterion) {
    let leads = LeadTimeModel::desh_default();
    let mut group = c.benchmark_group("single_run");
    for name in ["CHIMERA", "XGC", "POP"] {
        let app = Application::by_name(name).unwrap();
        for model in [ModelKind::B, ModelKind::M2, ModelKind::P2] {
            let params = SimParams::paper_defaults(model, app);
            let cfg = TraceConfig::new(
                params.distribution,
                app.nodes,
                app.compute_hours * params.horizon_factor,
            )
            .with_projection(params.projection);
            let mut rng = SimRng::seed_from(99);
            let trace = FailureTrace::generate(&cfg, &leads, &params.predictor, &mut rng);
            group.bench_function(BenchmarkId::new(name, model.name()), |b| {
                b.iter(|| {
                    let sim = CrSim::new(params.clone(), trace.clone(), &leads);
                    black_box(sim.run())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_trace_generation, bench_single_run);
criterion_main!(benches);

//! Arena-reuse vs fresh-build cost of one campaign run.
//!
//! The campaign steady state (PR 3) recycles per-worker [`RunArena`]s —
//! one `CrSim` per model, one event queue, one trace buffer — instead of
//! rebuilding them for every Monte-Carlo run. These benchmarks measure
//! exactly that delta on the same workload (P2 on XGC): `arena_reuse`
//! resets a warm arena in place per run, `fresh_build` pays the
//! pre-refactor cost of constructing the trace and simulation from
//! scratch. Both execute identical event sequences, so the gap is pure
//! construction/allocation overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pckpt_core::iosim::PfsMode;
use pckpt_core::{CrSim, ModelKind, RunArena, RunResult, SimParams};
use pckpt_failure::{FailureTrace, LeadTimeModel, TraceConfig};
use pckpt_simrng::SimRng;
use pckpt_workloads::Application;

const MODELS: [ModelKind; 1] = [ModelKind::P2];
const SEED: u64 = 20_220_530;
/// Cycle over a fixed set of run indices so both benches average over
/// the same trace mix rather than timing one lucky/unlucky draw.
const RUN_CYCLE: u64 = 32;

fn params(mode: PfsMode) -> SimParams {
    let app = Application::by_name("XGC").expect("Table I app");
    let mut p = SimParams::paper_defaults(ModelKind::P2, app);
    p.pfs_mode = mode;
    p
}

fn trace_config(p: &SimParams) -> TraceConfig {
    TraceConfig::new(
        p.distribution,
        p.app.nodes,
        p.app.compute_hours * p.horizon_factor,
    )
    .with_lead_scale(p.lead_scale)
    .with_projection(p.projection)
    .with_node_selection(p.node_selection)
    .with_lead_error(p.lead_error_cv)
}

fn bench_campaign_run(c: &mut Criterion) {
    let leads = LeadTimeModel::desh_default();
    let mut group = c.benchmark_group("campaign_run");
    for (label, mode) in [("analytic", PfsMode::Analytic), ("fluid", PfsMode::Fluid)] {
        let p = params(mode);
        let master = SimRng::seed_from(SEED);

        let mut arena = RunArena::new(&p, &MODELS, &leads);
        let mut out: Vec<Option<RunResult>> = vec![None; MODELS.len()];
        // Warm the arena past its high-water mark so the measured loop is
        // the allocation-free steady state.
        for run in 0..RUN_CYCLE {
            arena.run_one(&master, run as usize, &mut out);
        }
        let mut run = 0u64;
        group.bench_function(format!("arena_reuse_{label}"), |b| {
            b.iter(|| {
                arena.run_one(&master, (run % RUN_CYCLE) as usize, &mut out);
                run += 1;
                black_box(out[0].as_ref().map(|r| r.wall_secs));
            })
        });

        let tcfg = trace_config(&p);
        let mut run = 0u64;
        group.bench_function(format!("fresh_build_{label}"), |b| {
            b.iter(|| {
                let mut rng = master.split(run % RUN_CYCLE);
                run += 1;
                let trace = FailureTrace::generate(&tcfg, &leads, &p.predictor, &mut rng);
                let bg_rng = rng.split(0xB6);
                let sim = CrSim::new(p.clone(), trace, &leads).with_bg_rng(bg_rng);
                black_box(sim.run().wall_secs);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaign_run);
criterion_main!(benches);

//! Analytic-tier micro-benchmarks: scalar vs SoA evaluation of
//! Eqs. (4)–(8) over a ~1M-cell (α, σ) grid.
//!
//! `scalar_1m` calls the five checked scalar functions per cell — the
//! only way to evaluate a grid before the batch tier existed. `soa_1m`
//! runs the same grid through one [`BatchEval`] pass over SoA columns.
//! Both produce bit-identical results (pinned by the
//! `analytic_batch_equivalence` proptest); their ratio is the
//! vectorization + call-overhead speedup `scripts/bench.sh` reports as
//! `analytic_batch_speedup`, and 2^20 cells over `soa_1m`'s median time
//! is `analytic_cells_per_s`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pckpt_analysis::analytic::{
    alpha_threshold_checked, alpha_threshold_exact_checked, beta_pckpt_checked,
    lm_ckpt_reduction_checked, pckpt_beats_lm_checked,
};
use pckpt_analysis::batch::{cartesian_columns, BatchEval};

/// 1024 × 1024 = 2^20 cells. α spans the Fig. 6c sweep band; σ spans
/// [0, 0.8), crossing the SIGMA_MAX validity edge so the per-cell
/// validity masks do real work (mixed valid/invalid, like a real sweep).
const N_ALPHA: usize = 1024;
const N_SIGMA: usize = 1024;

fn grid_columns() -> (Vec<f64>, Vec<f64>) {
    let alphas: Vec<f64> = (0..N_ALPHA)
        .map(|i| 1.0 + 7.0 * i as f64 / N_ALPHA as f64)
        .collect();
    let sigmas: Vec<f64> = (0..N_SIGMA)
        .map(|j| 0.8 * j as f64 / N_SIGMA as f64)
        .collect();
    cartesian_columns(&alphas, &sigmas)
}

fn bench_analytic_batch(c: &mut Criterion) {
    let (alpha, sigma) = grid_columns();
    let n = alpha.len();
    assert_eq!(n, N_ALPHA * N_SIGMA);

    let mut group = c.benchmark_group("analytic_batch");
    group.bench_function("scalar_1m", |b| {
        b.iter(|| {
            // Fold everything into one accumulator so no per-cell result
            // can be optimized away.
            let mut acc = 0.0f64;
            let mut wins = 0usize;
            for i in 0..n {
                let (a, s) = (alpha[i], sigma[i]);
                if let Some(beta) = beta_pckpt_checked(a, s) {
                    acc += beta;
                }
                if let Some(red) = lm_ckpt_reduction_checked(s) {
                    acc += red;
                }
                if pckpt_beats_lm_checked(a, s, 1.0) == Some(true) {
                    wins += 1;
                }
                if let Some(t) = alpha_threshold_checked(s) {
                    acc += t;
                }
                if let Some(t) = alpha_threshold_exact_checked(s) {
                    acc += t;
                }
            }
            black_box((acc, wins));
        })
    });

    let mut batch = BatchEval::new();
    // Warm once so the steady state is growth-free (allocation-free
    // reuse is the evaluator's contract).
    batch.evaluate(&alpha, &sigma, 1.0);
    group.bench_function("soa_1m", |b| {
        b.iter(|| {
            batch.evaluate(black_box(&alpha), black_box(&sigma), 1.0);
            black_box(batch.alpha_threshold_exact().last());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analytic_batch);
criterion_main!(benches);

//! Criterion benchmarks of the simulation substrate: event queue
//! throughput, process-world scheduling, and fluid-flow link churn.
//!
//! These establish that the DES engine is fast enough for the paper's
//! 1000-run Monte-Carlo campaigns (one CHIMERA run handles a few thousand
//! events; the engine sustains millions per second).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pckpt_desim::process::{ProcCtx, Process, ProcessWorld, Step, Wake};
use pckpt_desim::{
    Ctx, EventQueue, FlowLink, Model, ReferenceFlowLink, SimDuration, SimTime, Simulation,
};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("schedule_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..10_000u64 {
                    // Pseudo-random times to exercise heap reordering.
                    let t = (i.wrapping_mul(2_654_435_761)) % 1_000_000;
                    q.schedule_at(SimTime::from_nanos(t + 1_000_000), i);
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("schedule_cancel_half_10k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                let ids: Vec<_> = (0..10_000u64)
                    .map(|i| q.schedule_at(SimTime::from_nanos(i + 1), i))
                    .collect();
                for id in ids.iter().step_by(2) {
                    q.cancel(*id);
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// A self-rescheduling ticker used to measure raw dispatch throughput.
struct Ticker {
    remaining: u32,
}

impl Model for Ticker {
    type Event = ();

    fn init(&mut self, ctx: &mut Ctx<'_, ()>) {
        ctx.schedule_in(SimDuration::from_nanos(1), ());
    }

    fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _: ()) {
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.schedule_in(SimDuration::from_nanos(1), ());
        }
    }
}

fn bench_engine_dispatch(c: &mut Criterion) {
    c.bench_function("engine_dispatch_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Ticker { remaining: 100_000 });
            sim.run();
            black_box(sim.events_handled())
        })
    });
}

struct Sleeper {
    naps: u32,
}

impl Process<()> for Sleeper {
    fn resume(&mut self, _s: &mut (), _ctx: &mut ProcCtx<()>, _w: Wake) -> Step {
        if self.naps == 0 {
            return Step::Done;
        }
        self.naps -= 1;
        Step::Sleep(SimDuration::from_nanos(10))
    }
}

fn bench_process_world(c: &mut Criterion) {
    c.bench_function("process_world_100_procs_1k_naps", |b| {
        b.iter(|| {
            let mut world = ProcessWorld::new(());
            for _ in 0..100 {
                world.spawn(Box::new(Sleeper { naps: 1_000 }));
            }
            let mut sim = Simulation::new(world);
            sim.run();
            black_box(sim.events_handled())
        })
    });
}

/// The churn driver shared by the virtual-time and reference links: load
/// the link with 1000 *concurrent* flows of staggered sizes, then for
/// each completion immediately start a replacement, until 1000 flows
/// have churned through. The link therefore holds ~1000 live flows at
/// every completion event — exactly the regime where the reference
/// implementation's per-flow O(n) bookkeeping dominates.
macro_rules! churn_1k_concurrent {
    ($link:expr) => {{
        let mut link = $link;
        let t0 = SimTime::ZERO;
        for i in 0..1_000u64 {
            link.start(t0, 1e6 + i as f64 * 1e3);
        }
        let mut now = t0;
        let mut churned = 0u32;
        while churned < 1_000 {
            let fin = link
                .next_completion(now)
                .expect("churn keeps the link busy");
            now = fin.max(now);
            let done = link.take_completed(now);
            if done.is_empty() {
                // Float dust: the completion rounds to the next ns.
                now += SimDuration::from_nanos(1);
                continue;
            }
            for &(_, bytes, _) in done.iter() {
                link.start(now, bytes);
                churned += 1;
            }
        }
        black_box(link.bytes_moved())
    }};
}

fn bench_flow_link(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_link_churn");
    group.bench_function("virtual_1k_concurrent", |b| {
        b.iter(|| churn_1k_concurrent!(FlowLink::with_constant_capacity(1e9)))
    });
    group.bench_function("reference_1k_concurrent", |b| {
        b.iter(|| churn_1k_concurrent!(ReferenceFlowLink::with_constant_capacity(1e9)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_engine_dispatch,
    bench_process_world,
    bench_flow_link
);
criterion_main!(benches);

//! Criterion benchmarks of the simulation substrate: event queue
//! throughput, process-world scheduling, and fluid-flow link churn.
//!
//! These establish that the DES engine is fast enough for the paper's
//! 1000-run Monte-Carlo campaigns (one CHIMERA run handles a few thousand
//! events; the engine sustains millions per second).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pckpt_desim::process::{ProcCtx, Process, ProcessWorld, Step, Wake};
use pckpt_desim::{Ctx, EventQueue, FlowLink, Model, SimDuration, SimTime, Simulation};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("schedule_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..10_000u64 {
                    // Pseudo-random times to exercise heap reordering.
                    let t = (i.wrapping_mul(2_654_435_761)) % 1_000_000;
                    q.schedule_at(SimTime::from_nanos(t + 1_000_000), i);
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("schedule_cancel_half_10k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                let ids: Vec<_> = (0..10_000u64)
                    .map(|i| q.schedule_at(SimTime::from_nanos(i + 1), i))
                    .collect();
                for id in ids.iter().step_by(2) {
                    q.cancel(*id);
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// A self-rescheduling ticker used to measure raw dispatch throughput.
struct Ticker {
    remaining: u32,
}

impl Model for Ticker {
    type Event = ();

    fn init(&mut self, ctx: &mut Ctx<'_, ()>) {
        ctx.schedule_in(SimDuration::from_nanos(1), ());
    }

    fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _: ()) {
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.schedule_in(SimDuration::from_nanos(1), ());
        }
    }
}

fn bench_engine_dispatch(c: &mut Criterion) {
    c.bench_function("engine_dispatch_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Ticker { remaining: 100_000 });
            sim.run();
            black_box(sim.events_handled())
        })
    });
}

struct Sleeper {
    naps: u32,
}

impl Process<()> for Sleeper {
    fn resume(&mut self, _s: &mut (), _ctx: &mut ProcCtx<()>, _w: Wake) -> Step {
        if self.naps == 0 {
            return Step::Done;
        }
        self.naps -= 1;
        Step::Sleep(SimDuration::from_nanos(10))
    }
}

fn bench_process_world(c: &mut Criterion) {
    c.bench_function("process_world_100_procs_1k_naps", |b| {
        b.iter(|| {
            let mut world = ProcessWorld::new(());
            for _ in 0..100 {
                world.spawn(Box::new(Sleeper { naps: 1_000 }));
            }
            let mut sim = Simulation::new(world);
            sim.run();
            black_box(sim.events_handled())
        })
    });
}

fn bench_flow_link(c: &mut Criterion) {
    c.bench_function("flow_link_churn_1k_transfers", |b| {
        b.iter(|| {
            let mut link = FlowLink::with_constant_capacity(1e9);
            let mut t = 0.0f64;
            for i in 0..1_000 {
                link.start(SimTime::from_secs(t), 1e6 + i as f64);
                t += 1e-4;
                if let Some(fin) = link.next_completion(SimTime::from_secs(t)) {
                    if i % 3 == 0 {
                        t = t.max(fin.as_secs());
                        black_box(link.take_completed(fin).len());
                    }
                }
            }
            while let Some(fin) = link.next_completion(SimTime::from_secs(t)) {
                t = fin.as_secs();
                if link.take_completed(fin).is_empty() {
                    break;
                }
            }
            black_box(link.bytes_moved())
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_engine_dispatch,
    bench_process_world,
    bench_flow_link
);
criterion_main!(benches);

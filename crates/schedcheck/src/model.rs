//! The operation model of the grid pool's claim/slab/fold protocol.
//!
//! One [`State`] holds the shared memory (the chunk-claim counter and
//! the result slab) plus every thread's phase. A *step* is one atomic
//! operation by one thread — exactly the granularity at which the real
//! pool's interleavings differ:
//!
//! * workers run `Load → Cas → Put…Put → Load → …` until the counter
//!   passes the item count (the CAS loop in `RunnerConfig::run_grid`'s
//!   `claim_chunk`, with `Put` standing in for `ResultSlab::put`);
//! * the fold thread becomes runnable only once every worker is `Done`
//!   — that gate *is* the `thread::scope` join happens-before — and
//!   then reads one slot per step, accumulating the digest.
//!
//! The digest mixes each slot's index into its value and combines with
//! a wrapping sum, so it is sensitive to any wrong/missing value but
//! insensitive to traversal order by construction; what the explorer
//! actually proves is that the slab *contents* are schedule-independent
//! (a torn claim or rogue put changes contents, double-puts and early
//! reads are flagged as they happen).
//!
//! [`Bug`] variants re-introduce real concurrency mistakes, each
//! breaking exactly one modeled guarantee, so the test suite can show
//! the explorer catches them.

use std::collections::BTreeSet;

/// Deliberately broken protocol variants for regression tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bug {
    /// The protocol as implemented: CAS claim, puts only into claimed
    /// slots, fold after join.
    None,
    /// Worker 0 writes slot 0 before claiming anything — violates the
    /// claim-partition invariant (`ResultSlab::put` without owning the
    /// item).
    PutWithoutClaim,
    /// The claim is a separate load + unconditional store instead of a
    /// CAS, so two workers can tear the claim and own the same chunk.
    NonAtomicClaim,
    /// The fold does not wait for workers — drops the scope-join
    /// happens-before, so it can read slots that were never written.
    NoJoin,
}

/// One exploration's parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Worker thread count (the fold adds one more thread).
    pub workers: usize,
    /// Items to claim and put (slab size).
    pub items: u32,
    /// Items claimed per CAS.
    pub chunk: u32,
    /// Which protocol variant to run.
    pub bug: Bug,
    /// Fold reads slots in descending order instead of ascending.
    pub fold_desc: bool,
    /// Search cap; an exhaustive run must stay below it (the report's
    /// `truncated` flag says whether it did).
    pub max_schedules: u64,
}

impl Config {
    /// The correct protocol at the given size, with a cap high enough
    /// for the bounded-exhaustive test configurations.
    pub fn correct(workers: usize, items: u32, chunk: u32) -> Config {
        Config {
            workers,
            items,
            chunk,
            bug: Bug::None,
            fold_desc: false,
            max_schedules: 1_000_000_000_000,
        }
    }
}

/// What a worker does on its next step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Phase {
    /// `PutWithoutClaim` only: write slot 0 without owning it.
    Rogue,
    /// Read the claim counter.
    Load,
    /// Try to advance the counter from the loaded value (one CAS; under
    /// `NonAtomicClaim`, an unconditional store).
    Cas { cur: u32 },
    /// Write slots `[idx, end)`, one per step.
    Put { idx: u32, end: u32 },
    /// Finished; never runnable again.
    Done,
}

/// The fold thread's progress: next slot ordinal to read (not an index
/// — order depends on `fold_desc`), or done.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Fold {
    Read { ordinal: u32, digest: u64 },
    Done { digest: u64 },
}

/// Shared memory plus every thread's phase — one node of the schedule
/// DAG. Cloned at each branch point of the DFS; hashed so the explorer
/// can merge the many interleavings that converge on the same state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    cfg_items: u32,
    cfg_chunk: u32,
    cfg_bug: Bug,
    cfg_fold_desc: bool,
    /// The chunk-claim counter (`AtomicUsize` in the real pool).
    next: u32,
    /// The result slab; `None` = never written.
    slots: Vec<Option<u64>>,
    /// Writes per slot — the double-put detector.
    puts: Vec<u8>,
    workers: Vec<Phase>,
    fold: Fold,
}

/// What the real computation would store for item `i` (any injective
/// function works; index-dependent so misrouted puts change the digest).
fn payload(i: u32) -> u64 {
    (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) | 1
}

fn mix(i: u32, v: u64) -> u64 {
    v.wrapping_mul((i as u64).wrapping_add(0x1000_0000_1b3))
}

impl State {
    /// The initial state: every worker at its first operation, the fold
    /// waiting, the slab empty.
    pub fn new(cfg: &Config) -> State {
        let first = if cfg.bug == Bug::PutWithoutClaim {
            Phase::Rogue
        } else {
            Phase::Load
        };
        let mut workers = vec![Phase::Load; cfg.workers];
        if let Some(w0) = workers.first_mut() {
            *w0 = first;
        }
        State {
            cfg_items: cfg.items,
            cfg_chunk: cfg.chunk,
            cfg_bug: cfg.bug,
            cfg_fold_desc: cfg.fold_desc,
            next: 0,
            slots: vec![None; cfg.items as usize],
            puts: vec![0; cfg.items as usize],
            workers,
            fold: Fold::Read {
                ordinal: 0,
                digest: 0,
            },
        }
    }

    /// Thread ids that can take a step: worker `i` is thread `i`; the
    /// fold is thread `workers.len()` and — absent the `NoJoin` bug —
    /// becomes runnable only when every worker is done (the scope-join
    /// happens-before edge).
    pub fn runnable(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, p)| **p != Phase::Done)
            .map(|(i, _)| i)
            .collect();
        let join_passed =
            self.cfg_bug == Bug::NoJoin || self.workers.iter().all(|p| *p == Phase::Done);
        if join_passed && matches!(self.fold, Fold::Read { .. }) {
            ids.push(self.workers.len());
        }
        ids
    }

    /// Performs `thread`'s next atomic operation, recording any
    /// violation it commits.
    pub fn step(&mut self, thread: usize, violations: &mut BTreeSet<String>) {
        if thread == self.workers.len() {
            self.step_fold(violations);
            return;
        }
        let phase = self.workers[thread].clone();
        self.workers[thread] = match phase {
            Phase::Rogue => {
                self.write_slot(0, thread, violations);
                Phase::Load
            }
            Phase::Load => {
                if self.next >= self.cfg_items {
                    Phase::Done
                } else {
                    Phase::Cas { cur: self.next }
                }
            }
            Phase::Cas { cur } => {
                let claimed = if self.cfg_bug == Bug::NonAtomicClaim {
                    // Torn claim: store unconditionally, keep the range
                    // computed from the stale load.
                    self.next = cur + self.cfg_chunk;
                    true
                } else {
                    // One atomic compare-and-swap.
                    if self.next == cur {
                        self.next = cur + self.cfg_chunk;
                        true
                    } else {
                        false
                    }
                };
                if claimed {
                    Phase::Put {
                        idx: cur,
                        end: (cur + self.cfg_chunk).min(self.cfg_items),
                    }
                } else {
                    Phase::Load
                }
            }
            Phase::Put { idx, end } => {
                self.write_slot(idx, thread, violations);
                if idx + 1 < end {
                    Phase::Put { idx: idx + 1, end }
                } else {
                    Phase::Load
                }
            }
            Phase::Done => Phase::Done,
        };
    }

    fn write_slot(&mut self, idx: u32, thread: usize, violations: &mut BTreeSet<String>) {
        let i = idx as usize;
        if i >= self.slots.len() {
            violations.insert(format!("out-of-range put of slot {idx}"));
            return;
        }
        self.puts[i] += 1;
        if self.puts[i] > 1 {
            violations.insert(format!(
                "double-put: slot {idx} written {} times (last by worker {thread})",
                self.puts[i]
            ));
        }
        self.slots[i] = Some(payload(idx));
    }

    fn step_fold(&mut self, violations: &mut BTreeSet<String>) {
        let Fold::Read { ordinal, digest } = self.fold.clone() else {
            return;
        };
        let idx = if self.cfg_fold_desc {
            self.cfg_items - 1 - ordinal
        } else {
            ordinal
        };
        let v = match self.slots[idx as usize] {
            Some(v) => v,
            None => {
                violations.insert(format!("read-before-put: fold read empty slot {idx}"));
                0
            }
        };
        let digest = digest.wrapping_add(mix(idx, v));
        self.fold = if ordinal + 1 < self.cfg_items {
            Fold::Read {
                ordinal: ordinal + 1,
                digest,
            }
        } else {
            Fold::Done { digest }
        };
    }

    /// Terminal-state checks: the schedule is over (nothing runnable),
    /// so every slot must be filled exactly once and the fold must have
    /// finished; its digest joins the outcome set.
    pub fn check_terminal(
        &self,
        violations: &mut BTreeSet<String>,
        digests: &mut BTreeSet<u64>,
    ) {
        for (i, s) in self.slots.iter().enumerate() {
            if s.is_none() {
                violations.insert(format!("lost item: slot {i} never written"));
            }
        }
        match self.fold {
            Fold::Done { digest } => {
                digests.insert(digest);
            }
            Fold::Read { .. } => {
                violations.insert("fold never completed".to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_runs_to_completion() {
        let cfg = Config::correct(1, 3, 2);
        let mut state = State::new(&cfg);
        let mut violations = BTreeSet::new();
        let mut digests = BTreeSet::new();
        let mut steps = 0;
        loop {
            let runnable = state.runnable();
            let Some(&t) = runnable.first() else { break };
            state.step(t, &mut violations);
            steps += 1;
            assert!(steps < 100, "single-thread run must terminate");
        }
        state.check_terminal(&mut violations, &mut digests);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(digests.len(), 1);
    }

    #[test]
    fn fold_waits_for_workers() {
        let cfg = Config::correct(2, 2, 1);
        let state = State::new(&cfg);
        assert_eq!(
            state.runnable(),
            vec![0, 1],
            "fold (thread 2) must not be runnable before the join"
        );
    }

    #[test]
    fn payload_is_injective_on_small_ranges() {
        let mut seen = BTreeSet::new();
        for i in 0..64 {
            assert!(seen.insert(payload(i)), "payload collision at {i}");
        }
    }
}

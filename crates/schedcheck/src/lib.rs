//! schedcheck — a small loom-style schedule explorer for the grid
//! pool's lock-free core.
//!
//! `crates/core/src/runner.rs` runs Monte-Carlo campaigns on a
//! work-stealing pool whose soundness rests on two invariants declared
//! on `ResultSlab` (`simlint: invariant(slab-claim-partition)` and
//! `invariant(slab-scope-join)`): the chunk-claim CAS loop hands every
//! item to exactly one worker, and results are read only after
//! `thread::scope` joins every worker. Those invariants were argued in
//! prose; this crate checks them by exhaustive interleaving of an
//! explicit operation model (the registry is unreachable, so no loom —
//! the explorer is hand-rolled, like the workspace's rand/proptest
//! shims).
//!
//! The model ([`model`]) reduces each thread to a state machine over
//! atomic operations — `Load` the claim counter, `Cas` it forward,
//! `Put` a slab slot, `Read` a slot during the fold — and the explorer
//! ([`explore`]) runs a depth-first search over every choice of which
//! runnable thread performs its next operation. Each maximal
//! interleaving is one *schedule*; along every step the model checks
//! for double puts and reads of unwritten slots, and at every terminal
//! state it checks completeness and folds the slab into a digest. A
//! correct protocol yields zero violations and a **singleton digest
//! set** — the fold result is independent of both the schedule and the
//! fold traversal order.
//!
//! Seeded-bug variants ([`model::Bug`]) deliberately break the
//! protocol (put without a claim, a torn load+store claim instead of a
//! CAS, folding without the join barrier) and the regression tests
//! assert the explorer catches each one — proving the checker has the
//! teeth the invariant comments claim.

pub mod model;

use model::{Config, State};
use std::collections::{BTreeSet, HashMap};

/// Everything one exploration discovered.
#[derive(Debug)]
pub struct Report {
    /// Number of maximal interleavings (schedules) explored.
    pub schedules: u64,
    /// True if [`Config::max_schedules`] stopped the search early; an
    /// exhaustive claim requires this to be false.
    pub truncated: bool,
    /// Distinct invariant violations observed across all schedules.
    pub violations: Vec<String>,
    /// Distinct terminal fold digests across all schedules. Length 1
    /// means the outcome is schedule-independent.
    pub digests: Vec<u64>,
}

impl Report {
    /// True when every schedule completed without a violation and all
    /// of them agreed on one fold digest.
    pub fn holds(&self) -> bool {
        !self.truncated && self.violations.is_empty() && self.digests.len() == 1
    }
}

struct Search {
    max_schedules: u64,
    schedules: u64,
    truncated: bool,
    violations: BTreeSet<String>,
    digests: BTreeSet<u64>,
    /// State → number of maximal schedules reachable from it. Many
    /// interleavings converge on identical states; merging them keeps
    /// the walk proportional to distinct states while `schedules` still
    /// counts every interleaving (each memo hit credits the full
    /// subtree). HashMap iteration order never matters: it is only a
    /// lookup table, and all reported sets are BTree-ordered.
    memo: HashMap<State, u64>,
}

/// Explores every bounded interleaving of the claim/slab/fold model
/// under `cfg`.
pub fn explore(cfg: &Config) -> Report {
    let mut search = Search {
        max_schedules: cfg.max_schedules,
        schedules: 0,
        truncated: false,
        violations: BTreeSet::new(),
        digests: BTreeSet::new(),
        memo: HashMap::new(),
    };
    dfs(&mut search, State::new(cfg));
    Report {
        schedules: search.schedules,
        truncated: search.truncated,
        violations: search.violations.into_iter().collect(),
        digests: search.digests.into_iter().collect(),
    }
}

/// Walks the schedule DAG below `state`, returning how many maximal
/// schedules it roots. `search.schedules` carries the running total so
/// the `max_schedules` cap can stop the walk mid-way; once `truncated`
/// is set the counts are lower bounds and the report claims nothing.
fn dfs(search: &mut Search, state: State) -> u64 {
    if search.truncated {
        return 0;
    }
    if let Some(&n) = search.memo.get(&state) {
        // Every violation and terminal digest below this state was
        // already recorded on first visit; only the count is re-credited.
        search.schedules = search.schedules.saturating_add(n);
        if search.schedules >= search.max_schedules {
            search.truncated = true;
        }
        return n;
    }
    let runnable = state.runnable();
    let n = if runnable.is_empty() {
        search.schedules += 1;
        if search.schedules >= search.max_schedules {
            search.truncated = true;
        }
        state.check_terminal(&mut search.violations, &mut search.digests);
        1
    } else {
        let mut n: u64 = 0;
        for thread in runnable {
            let mut next = state.clone();
            next.step(thread, &mut search.violations);
            n = n.saturating_add(dfs(search, next));
        }
        n
    };
    if !search.truncated {
        search.memo.insert(state, n);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Bug, Config};

    #[test]
    fn two_workers_exhaustive_clean() {
        let report = explore(&Config::correct(2, 4, 2));
        assert!(report.holds(), "{report:?}");
        assert!(report.schedules > 1, "more than one interleaving exists");
    }

    #[test]
    fn chunk_sizes_do_not_change_the_digest() {
        let d1 = explore(&Config::correct(2, 4, 1)).digests;
        let d2 = explore(&Config::correct(2, 4, 2)).digests;
        let d4 = explore(&Config::correct(2, 4, 4)).digests;
        assert_eq!(d1, d2);
        assert_eq!(d2, d4);
    }

    #[test]
    fn fold_order_independence() {
        let asc = explore(&Config::correct(2, 3, 1));
        let desc = explore(&Config {
            fold_desc: true,
            ..Config::correct(2, 3, 1)
        });
        assert!(asc.holds() && desc.holds(), "{asc:?}\n{desc:?}");
        assert_eq!(asc.digests, desc.digests, "fold order must not matter");
    }

    #[test]
    fn truncation_is_reported() {
        let report = explore(&Config {
            max_schedules: 10,
            ..Config::correct(3, 3, 1)
        });
        assert!(report.truncated);
        assert!(!report.holds(), "a truncated run can claim nothing");
    }

    #[test]
    fn seeded_put_without_claim_is_caught() {
        let report = explore(&Config {
            bug: Bug::PutWithoutClaim,
            ..Config::correct(2, 2, 1)
        });
        assert!(
            report.violations.iter().any(|v| v.contains("double-put")),
            "{report:?}"
        );
    }

    #[test]
    fn seeded_torn_claim_is_caught() {
        let report = explore(&Config {
            bug: Bug::NonAtomicClaim,
            ..Config::correct(2, 2, 1)
        });
        assert!(
            report.violations.iter().any(|v| v.contains("double-put")),
            "{report:?}"
        );
    }

    #[test]
    fn seeded_missing_join_is_caught() {
        let report = explore(&Config {
            bug: Bug::NoJoin,
            ..Config::correct(1, 1, 1)
        });
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("read-before-put")),
            "{report:?}"
        );
    }
}

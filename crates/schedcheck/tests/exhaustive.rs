//! Bounded-exhaustive acceptance runs for the grid-pool protocol model.
//!
//! These are the checks the `ResultSlab` invariant comments in
//! `crates/core/src/runner.rs` point at: every interleaving of three
//! workers plus the fold, under the real protocol, upholds
//! `slab-claim-partition` and `slab-scope-join`, and a deliberately
//! broken slab is caught. The three-worker run must cover at least a
//! thousand schedules so the claim is about genuine interleaving
//! coverage, not a handful of lucky orders.

use schedcheck::explore;
use schedcheck::model::{Bug, Config};

#[test]
fn three_workers_exhaustive_upholds_slab_invariants() {
    let report = explore(&Config::correct(3, 3, 1));
    assert!(!report.truncated, "run must be exhaustive: {report:?}");
    assert!(
        report.schedules >= 1000,
        "need real interleaving coverage, got {} schedules",
        report.schedules
    );
    assert!(report.holds(), "{report:?}");
}

#[test]
fn three_workers_chunked_claims_hold() {
    // chunk=2 over 4 items: workers race for two chunks, one worker is
    // always left empty-handed — the CAS-failure retry path is covered.
    let report = explore(&Config::correct(3, 4, 2));
    assert!(!report.truncated && report.holds(), "{report:?}");
    assert!(report.schedules >= 1000, "got {}", report.schedules);
}

#[test]
fn broken_slab_put_without_claim_is_caught_with_three_workers() {
    let report = explore(&Config {
        bug: Bug::PutWithoutClaim,
        ..Config::correct(3, 3, 1)
    });
    assert!(!report.truncated, "{report:?}");
    assert!(
        report.violations.iter().any(|v| v.contains("double-put")),
        "rogue put must collide with the legitimate owner: {report:?}"
    );
    assert!(!report.holds());
}

#[test]
fn broken_join_is_caught_with_three_workers() {
    let report = explore(&Config {
        bug: Bug::NoJoin,
        ..Config::correct(3, 2, 1)
    });
    assert!(!report.truncated, "{report:?}");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.contains("read-before-put")),
        "{report:?}"
    );
    assert!(!report.holds());
}

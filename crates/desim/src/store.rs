//! A bounded FIFO item store (SimPy's `Store`).
//!
//! Producers deposit items, consumers withdraw them; both sides can block
//! — producers when the buffer is full, consumers when it is empty. Like
//! [`crate::resource::Resource`], the structure is engine-agnostic: it
//! tracks *caller tokens* for both wait lists and leaves the wake-up
//! scheduling to its owner (a model, or shared state behind a
//! [`crate::process::ProcessWorld`] paired with signals).
//!
//! The C/R stack uses it in tests and examples (e.g. a Spectral-style
//! drain pipeline where checkpoint fragments queue for a limited set of
//! PFS movers).

use std::collections::VecDeque;

/// Outcome of a put attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Put {
    /// The item was deposited.
    Stored,
    /// The buffer was full; the producer token was queued.
    Blocked,
}

/// A bounded FIFO store with blocking semantics on both sides.
#[derive(Debug)]
pub struct Store<T, W> {
    capacity: usize,
    items: VecDeque<T>,
    /// Consumers waiting for an item (FIFO).
    getters: VecDeque<W>,
    /// Producers waiting for space, with the item they want to deposit
    /// (FIFO).
    putters: VecDeque<(W, T)>,
}

impl<T, W> Store<T, W> {
    /// Creates a store holding at most `capacity` items (> 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store capacity must be > 0");
        Self {
            capacity,
            items: VecDeque::new(),
            getters: VecDeque::new(),
            putters: VecDeque::new(),
        }
    }

    /// Deposits `item`, or queues `(token, item)` if the buffer is full.
    ///
    /// Returns the outcome plus, when an item was stored while a consumer
    /// was waiting, the consumer token to wake (the item passes through
    /// the buffer to them: call [`Store::get`] on their behalf when they
    /// resume, or use the returned token's wake to re-poll).
    pub fn put(&mut self, token: W, item: T) -> (Put, Option<W>) {
        if self.items.len() < self.capacity {
            self.items.push_back(item);
            let wake = self.getters.pop_front();
            (Put::Stored, wake)
        } else {
            self.putters.push_back((token, item));
            (Put::Blocked, None)
        }
    }

    /// Withdraws the oldest item, or queues `token` if empty.
    ///
    /// On success, also returns the producer token to wake when a blocked
    /// producer's item could now be admitted (its item is moved into the
    /// buffer as part of this call).
    pub fn get(&mut self, token: W) -> (Option<T>, Option<W>) {
        match self.items.pop_front() {
            Some(item) => {
                let wake = if let Some((producer, queued_item)) = self.putters.pop_front() {
                    self.items.push_back(queued_item);
                    Some(producer)
                } else {
                    None
                };
                (Some(item), wake)
            }
            None => {
                self.getters.push_back(token);
                (None, None)
            }
        }
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Capacity of the buffer.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Consumers currently blocked.
    pub fn waiting_getters(&self) -> usize {
        self.getters.len()
    }

    /// Producers currently blocked.
    pub fn waiting_putters(&self) -> usize {
        self.putters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get_fifo() {
        let mut s: Store<&str, u32> = Store::new(4);
        assert_eq!(s.put(1, "a"), (Put::Stored, None));
        assert_eq!(s.put(2, "b"), (Put::Stored, None));
        assert_eq!(s.get(10), (Some("a"), None));
        assert_eq!(s.get(11), (Some("b"), None));
        assert!(s.is_empty());
    }

    #[test]
    fn get_on_empty_blocks_and_wakes_on_put() {
        let mut s: Store<i32, &str> = Store::new(2);
        assert_eq!(s.get("consumer"), (None, None));
        assert_eq!(s.waiting_getters(), 1);
        // The producer's put reports the waiting consumer to wake.
        let (outcome, wake) = s.put("producer", 7);
        assert_eq!(outcome, Put::Stored);
        assert_eq!(wake, Some("consumer"));
        // The woken consumer re-polls and finds the item.
        assert_eq!(s.get("consumer"), (Some(7), None));
    }

    #[test]
    fn put_on_full_blocks_and_wakes_on_get() {
        let mut s: Store<i32, &str> = Store::new(1);
        assert_eq!(s.put("p1", 1), (Put::Stored, None));
        assert_eq!(s.put("p2", 2), (Put::Blocked, None));
        assert_eq!(s.waiting_putters(), 1);
        // A get admits the queued item and reports the producer to wake.
        let (item, wake) = s.get("c");
        assert_eq!(item, Some(1));
        assert_eq!(wake, Some("p2"));
        assert_eq!(s.len(), 1, "the blocked item moved into the buffer");
        assert_eq!(s.get("c"), (Some(2), None));
    }

    #[test]
    fn many_blocked_producers_admitted_in_order() {
        let mut s: Store<i32, u32> = Store::new(1);
        s.put(0, 10);
        for (tok, item) in [(1u32, 11), (2, 12), (3, 13)] {
            assert_eq!(s.put(tok, item), (Put::Blocked, None));
        }
        let mut admitted = Vec::new();
        let mut woken = Vec::new();
        for _ in 0..4 {
            let (item, wake) = s.get(99);
            admitted.push(item.unwrap());
            if let Some(w) = wake {
                woken.push(w);
            }
        }
        assert_eq!(admitted, vec![10, 11, 12, 13]);
        assert_eq!(woken, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_rejected() {
        let _: Store<(), ()> = Store::new(0);
    }
}

//! Fluid-flow model of a shared transfer link.
//!
//! Checkpoint traffic in the paper is bulk data movement over shared media
//! (burst-buffer device, node NIC, the PFS as a whole). Simulating
//! individual I/O requests would be both slow and spuriously precise;
//! instead, each medium is a [`FlowLink`]: concurrent transfers progress
//! simultaneously, each receiving an equal share of an aggregate capacity
//! that may itself depend on how many transfers are active (this is how the
//! weak-scaling GPFS matrix of Fig. 2c enters the simulation — aggregate
//! bandwidth is *not* proportional to writer count).
//!
//! The link is passive: it never touches the event queue. The owning model
//! asks [`FlowLink::next_completion`] after every mutation and (re)schedules
//! its own completion event. Stale completion events are detected with
//! [`FlowLink::epoch`], which increments on every state change.
//!
//! ```
//! use pckpt_desim::{FlowLink, SimTime};
//!
//! // A 100 B/s link carrying two equal transfers: each gets 50 B/s.
//! let mut link = FlowLink::with_constant_capacity(100.0);
//! let t0 = SimTime::ZERO;
//! link.start(t0, 100.0);
//! link.start(t0, 100.0);
//! let done_at = link.next_completion(t0).unwrap();
//! assert_eq!(done_at.as_secs(), 2.0);
//! assert_eq!(link.take_completed(done_at).len(), 2);
//! ```

use std::collections::HashMap;

use crate::time::{SimDuration, SimTime};

/// Identifies one in-flight transfer on a [`FlowLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferId(u64);

#[derive(Debug, Clone)]
struct Flow {
    remaining: f64, // bytes
    started: SimTime,
    total: f64,
    weight: f64,
}

/// A shared link carrying concurrent fluid transfers.
///
/// Transfers can be *weighted*: a transfer of weight `w` receives
/// `w / W_total` of the capacity, and the capacity function is consulted
/// with the total active weight. This models per-node fair sharing on a
/// parallel file system — a 512-node drain and a single-node commit are
/// one transfer each, but the drain holds 512× the bandwidth share and
/// the aggregate capacity curve sees 513 writers.
pub struct FlowLink {
    /// Aggregate capacity (bytes/sec) as a function of the total active
    /// weight (= writer count for node-weighted transfers). Must be
    /// strictly positive for any non-zero weight.
    capacity: Box<dyn Fn(usize) -> f64 + Send>,
    flows: HashMap<TransferId, Flow>,
    last_advance: SimTime,
    next_id: u64,
    epoch: u64,
    bytes_moved: f64,
}

impl std::fmt::Debug for FlowLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowLink")
            .field("active", &self.flows.len())
            .field("last_advance", &self.last_advance)
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// Base completion threshold: a flow with less than this many bytes left
/// is done. The effective threshold is rate-aware — simulation time has
/// nanosecond resolution, so at rate `r` a completion instant can be off
/// by up to ~1 ns, leaving `r × 1e-9` bytes (≈13 bytes at 13 GB/s).
const DONE_EPSILON: f64 = 1.0;

/// Effective completion threshold for a flow moving at `rate` bytes/sec.
fn done_threshold(rate: f64) -> f64 {
    DONE_EPSILON + rate * 2e-9
}

impl FlowLink {
    /// Creates a link with a constant aggregate capacity in bytes/sec.
    pub fn with_constant_capacity(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "link capacity must be > 0");
        Self::with_capacity_fn(move |_| bytes_per_sec)
    }

    /// Creates a link whose aggregate capacity depends on the number of
    /// active transfers (e.g. the GPFS weak-scaling matrix).
    pub fn with_capacity_fn(f: impl Fn(usize) -> f64 + Send + 'static) -> Self {
        Self {
            capacity: Box::new(f),
            flows: HashMap::new(),
            last_advance: SimTime::ZERO,
            next_id: 0,
            epoch: 0,
            bytes_moved: 0.0,
        }
    }

    /// Total active weight.
    fn total_weight(&self) -> f64 {
        self.flows.values().map(|f| f.weight).sum()
    }

    /// Bandwidth of one unit of weight at the current membership.
    fn rate_per_weight(&self) -> f64 {
        let w = self.total_weight();
        if w <= 0.0 {
            return 0.0;
        }
        let writers = w.ceil() as usize;
        let cap = (self.capacity)(writers);
        assert!(
            cap > 0.0 && cap.is_finite(),
            "capacity function returned {cap} for weight {w}"
        );
        cap / w
    }

    /// Advances all flows to `now`. Must be called (and is called by every
    /// mutating method) with a monotonically non-decreasing `now`.
    pub fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.last_advance,
            "FlowLink time went backwards: {now} < {}",
            self.last_advance
        );
        let dt = now.since(self.last_advance).as_secs();
        if dt > 0.0 && !self.flows.is_empty() {
            let rpw = self.rate_per_weight();
            for flow in self.flows.values_mut() {
                let step = (rpw * flow.weight * dt).min(flow.remaining);
                flow.remaining -= step;
                self.bytes_moved += step;
            }
        }
        self.last_advance = now;
    }

    /// Starts a transfer of `bytes` with unit weight at time `now`.
    /// Zero-byte transfers are legal and complete at the next
    /// [`FlowLink::take_completed`] call.
    pub fn start(&mut self, now: SimTime, bytes: f64) -> TransferId {
        self.start_weighted(now, bytes, 1.0)
    }

    /// Starts a transfer of `bytes` carrying `weight` units of bandwidth
    /// share (e.g. the number of nodes writing collectively).
    pub fn start_weighted(&mut self, now: SimTime, bytes: f64, weight: f64) -> TransferId {
        assert!(
            bytes >= 0.0 && bytes.is_finite(),
            "transfer size must be finite and non-negative, got {bytes}"
        );
        assert!(
            weight > 0.0 && weight.is_finite(),
            "transfer weight must be positive, got {weight}"
        );
        self.advance(now);
        let id = TransferId(self.next_id);
        self.next_id += 1;
        self.epoch += 1;
        self.flows.insert(
            id,
            Flow {
                remaining: bytes,
                started: now,
                total: bytes,
                weight,
            },
        );
        id
    }

    /// Aborts a transfer, returning the bytes it still had left, or `None`
    /// if it was not active (already completed or cancelled).
    pub fn cancel(&mut self, now: SimTime, id: TransferId) -> Option<f64> {
        self.advance(now);
        let flow = self.flows.remove(&id)?;
        self.epoch += 1;
        Some(flow.remaining)
    }

    /// When, at current rates, will the earliest active transfer finish?
    ///
    /// Returns `None` if no transfers are active. The returned time is the
    /// moment the first flow's remaining volume reaches zero; the owner
    /// should schedule a completion event there and call
    /// [`FlowLink::take_completed`] when it fires.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        if self.flows.is_empty() {
            return None;
        }
        debug_assert!(now >= self.last_advance);
        let already = now.since(self.last_advance).as_secs();
        let rpw = self.rate_per_weight();
        let min_dt = self
            .flows
            .values()
            .map(|f| {
                let rate = rpw * f.weight;
                let outstanding = (f.remaining - already * rate).max(0.0);
                if outstanding <= done_threshold(rate) {
                    0.0
                } else {
                    outstanding / rate
                }
            })
            .fold(f64::INFINITY, f64::min);
        // Round *up* to the next nanosecond so the scheduled instant never
        // undershoots the completion (undershooting by even 1 ns leaves
        // bytes at multi-GB/s rates).
        Some(now + SimDuration::from_nanos((min_dt * 1e9).ceil() as u64))
    }

    /// Advances to `now` and removes every transfer that has finished,
    /// returning `(id, total_bytes, started_at)` for each in start order.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<(TransferId, f64, SimTime)> {
        self.advance(now);
        let rpw = self.rate_per_weight();
        let mut done: Vec<(TransferId, f64, SimTime)> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= done_threshold(rpw * f.weight))
            .map(|(&id, f)| (id, f.total, f.started))
            .collect();
        done.sort_by_key(|&(id, _, _)| id);
        for &(id, _, _) in &done {
            let f = self.flows.remove(&id).expect("listed as done");
            // Account the rounding remainder so bytes_moved stays exact.
            self.bytes_moved += f.remaining;
        }
        if !done.is_empty() {
            self.epoch += 1;
        }
        done
    }

    /// Monotone counter incremented on every membership change. Owners
    /// stamp their scheduled completion events with this and discard stale
    /// ones.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of active transfers.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// True if no transfers are in flight.
    pub fn is_idle(&self) -> bool {
        self.flows.is_empty()
    }

    /// Total bytes delivered since construction.
    pub fn bytes_moved(&self) -> f64 {
        self.bytes_moved
    }

    /// Remaining bytes of an active transfer (as of the last advance).
    pub fn remaining(&self, id: TransferId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_transfer_takes_bytes_over_capacity() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        link.start(t(0.0), 500.0);
        let finish = link.next_completion(t(0.0)).unwrap();
        assert!((finish.as_secs() - 5.0).abs() < 1e-6);
        let done = link.take_completed(finish);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, 500.0);
        assert!(link.is_idle());
        assert!((link.bytes_moved() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn two_equal_transfers_share_fairly() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        link.start(t(0.0), 100.0);
        link.start(t(0.0), 100.0);
        // Each gets 50 B/s → both finish at t=2.
        let finish = link.next_completion(t(0.0)).unwrap();
        assert!((finish.as_secs() - 2.0).abs() < 1e-6);
        let done = link.take_completed(finish);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn late_joiner_slows_existing_transfer() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        let a = link.start(t(0.0), 100.0);
        // At t=0.5, A has 50 B left; B joins with 100 B.
        let b = link.start(t(0.5), 100.0);
        // Shares are 50 B/s each → A finishes at t=1.5, B at t=2.5.
        let fin_a = link.next_completion(t(0.5)).unwrap();
        assert!((fin_a.as_secs() - 1.5).abs() < 1e-6);
        let done = link.take_completed(fin_a);
        assert_eq!(done[0].0, a);
        // A gone → B back to full rate with 50 B left → t=2.0.
        let fin_b = link.next_completion(fin_a).unwrap();
        assert!((fin_b.as_secs() - 2.0).abs() < 1e-6);
        let done = link.take_completed(fin_b);
        assert_eq!(done[0].0, b);
    }

    #[test]
    fn cancel_returns_remaining_and_restores_rate() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        let a = link.start(t(0.0), 1000.0);
        link.start(t(0.0), 1000.0);
        let rem = link.cancel(t(4.0), a).unwrap();
        // 4 s at 50 B/s each → 200 drained, 800 left.
        assert!((rem - 800.0).abs() < 1e-6);
        assert!(link.cancel(t(4.0), a).is_none(), "double cancel is None");
        // Survivor now drains at 100 B/s with 800 left → t=12.
        let fin = link.next_completion(t(4.0)).unwrap();
        assert!((fin.as_secs() - 12.0).abs() < 1e-6);
    }

    #[test]
    fn load_dependent_capacity_is_consulted() {
        // Aggregate capacity saturates: 100 for one flow, 150 for two.
        let mut link = FlowLink::with_capacity_fn(|n| if n <= 1 { 100.0 } else { 150.0 });
        link.start(t(0.0), 100.0);
        link.start(t(0.0), 100.0);
        // Each gets 75 B/s → finish at t≈1.333.
        let fin = link.next_completion(t(0.0)).unwrap();
        assert!((fin.as_secs() - 100.0 / 75.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_transfer_completes_immediately() {
        let mut link = FlowLink::with_constant_capacity(10.0);
        let id = link.start(t(1.0), 0.0);
        let fin = link.next_completion(t(1.0)).unwrap();
        assert_eq!(fin, t(1.0));
        let done = link.take_completed(t(1.0));
        assert_eq!(done[0].0, id);
    }

    #[test]
    fn epoch_increments_on_membership_changes_only() {
        let mut link = FlowLink::with_constant_capacity(10.0);
        let e0 = link.epoch();
        let id = link.start(t(0.0), 10.0);
        assert!(link.epoch() > e0);
        let e1 = link.epoch();
        link.advance(t(0.5));
        assert_eq!(link.epoch(), e1, "advance must not bump the epoch");
        link.cancel(t(0.5), id);
        assert!(link.epoch() > e1);
    }

    #[test]
    fn next_completion_accounts_for_time_since_last_advance() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        link.start(t(0.0), 100.0);
        // Asking at t=0.75 without advancing must still answer t=1.0.
        let fin = link.next_completion(t(0.75)).unwrap();
        assert!((fin.as_secs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn remaining_tracks_progress() {
        let mut link = FlowLink::with_constant_capacity(10.0);
        let id = link.start(t(0.0), 100.0);
        link.advance(t(3.0));
        assert!((link.remaining(id).unwrap() - 70.0).abs() < 1e-6);
        assert_eq!(link.remaining(TransferId(999)), None);
    }

    #[test]
    fn conservation_of_bytes_across_churn() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        let mut injected = 0.0;
        let mut returned = 0.0;
        let mut clock = 0.0;
        let mut ids = Vec::new();
        for i in 0..20 {
            let bytes = 50.0 + i as f64 * 10.0;
            injected += bytes;
            ids.push(link.start(t(clock), bytes));
            clock += 0.3;
            if i % 3 == 0 {
                if let Some(rem) = link.cancel(t(clock), ids[i / 2]) {
                    returned += rem;
                }
            }
            for (_, _, _) in link.take_completed(t(clock)) {}
            clock += 0.1;
        }
        // Drain everything that's left.
        while let Some(fin) = link.next_completion(t(clock)) {
            clock = fin.as_secs();
            link.take_completed(fin);
        }
        let moved = link.bytes_moved();
        assert!(
            (injected - returned - moved).abs() < 1e-3,
            "injected {injected} = returned {returned} + moved {moved}"
        );
    }

    #[test]
    fn weighted_transfers_share_proportionally() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        // A 3-weight drain and a 1-weight commit: 75 vs 25 B/s.
        let heavy = link.start_weighted(t(0.0), 300.0, 3.0);
        let light = link.start_weighted(t(0.0), 100.0, 1.0);
        // Both finish at t=4 (300/75 = 100/25).
        let fin = link.next_completion(t(0.0)).unwrap();
        assert!((fin.as_secs() - 4.0).abs() < 1e-6);
        let done = link.take_completed(fin);
        assert_eq!(done.len(), 2);
        let _ = (heavy, light);
    }

    #[test]
    fn weighted_capacity_fn_sees_total_weight() {
        // Capacity grows with writer count: 100·writers^0.5.
        let mut link = FlowLink::with_capacity_fn(|w| 100.0 * (w as f64).sqrt());
        link.start_weighted(t(0.0), 1_000.0, 4.0);
        // Total weight 4 → capacity 200, all of it to this flow → t=5.
        let fin = link.next_completion(t(0.0)).unwrap();
        assert!((fin.as_secs() - 5.0).abs() < 1e-6, "fin = {fin}");
        // Add a unit-weight flow: weight 5 → capacity 100·√5 ≈ 223.6;
        // heavy gets 4/5 ≈ 178.9 B/s, light 44.7 B/s.
        link.advance(t(1.0));
        link.start_weighted(t(1.0), 44.7, 1.0);
        let fin2 = link.next_completion(t(1.0)).unwrap();
        assert!((fin2.as_secs() - 2.0).abs() < 0.01, "fin2 = {fin2}");
    }

    #[test]
    fn weighted_early_finisher_frees_share() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        let small = link.start_weighted(t(0.0), 25.0, 1.0);
        let big = link.start_weighted(t(0.0), 300.0, 3.0);
        // small at 25 B/s finishes at t=1; big has 225 left, then runs at
        // the full 100 B/s → finishes at t = 1 + 2.25.
        let f1 = link.next_completion(t(0.0)).unwrap();
        assert!((f1.as_secs() - 1.0).abs() < 1e-6);
        let done = link.take_completed(f1);
        assert_eq!(done[0].0, small);
        let f2 = link.next_completion(f1).unwrap();
        assert!((f2.as_secs() - 3.25).abs() < 1e-6, "f2 = {f2}");
        let done = link.take_completed(f2);
        assert_eq!(done[0].0, big);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let mut link = FlowLink::with_constant_capacity(10.0);
        link.start_weighted(t(0.0), 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rewinding_time_panics() {
        let mut link = FlowLink::with_constant_capacity(10.0);
        link.advance(t(5.0));
        link.advance(t(4.0));
    }
}

//! Fluid-flow model of a shared transfer link.
//!
//! Checkpoint traffic in the paper is bulk data movement over shared media
//! (burst-buffer device, node NIC, the PFS as a whole). Simulating
//! individual I/O requests would be both slow and spuriously precise;
//! instead, each medium is a [`FlowLink`]: concurrent transfers progress
//! simultaneously, each receiving an equal share of an aggregate capacity
//! that may itself depend on how many transfers are active (this is how the
//! weak-scaling GPFS matrix of Fig. 2c enters the simulation — aggregate
//! bandwidth is *not* proportional to writer count).
//!
//! The link is passive: it never touches the event queue. The owning model
//! asks [`FlowLink::next_completion`] after every mutation and (re)schedules
//! its own completion event. Stale completion events are detected with
//! [`FlowLink::epoch`], which increments on every state change.
//!
//! # Virtual-time implementation
//!
//! Between membership changes every unit of weight progresses at the same
//! rate `rpw = capacity(W)/W`. The link therefore tracks a single
//! cumulative *virtual time* `v` — bytes delivered per unit weight since
//! the link was last idle — instead of per-flow byte counters:
//!
//! * `advance` is O(1): `v += rpw · dt`.
//! * A flow starting with `b` bytes and weight `w` at virtual time
//!   `start_v` is fully delivered when `v` reaches its *finish tag*
//!   `finish_v = start_v + b/w`, a constant computed once at start.
//! * Its bytes delivered so far are `min(b, (v − start_v)·w)`, computed
//!   on demand.
//!
//! Completion timing and done-detection are two lazily-pruned min-heaps:
//! one keyed by `finish_v` (earliest completion = smallest tag, so
//! [`FlowLink::next_completion`] is an O(1) peek) and one keyed by the
//! *snap tag* `finish_v − ε/w` that linearizes the rate-aware done
//! threshold (see [`done_threshold`]), so [`FlowLink::take_completed`]
//! pops exactly the finished flows in O(k log n). Cancelled flows leave
//! stale heap entries behind; they are skipped when they surface and the
//! heaps are compacted outright when stale entries outnumber live ones.
//!
//! The previous per-flow O(n) implementation is preserved unchanged as
//! [`reference::ReferenceFlowLink`]; property tests assert the two are
//! observationally equivalent (completion instants within 1 ns, identical
//! completion order and byte accounting) on randomized workloads.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pckpt_simobs::{kind, Recorder};

use crate::time::{SimDuration, SimTime};

pub mod reference;

/// Identifies one in-flight transfer on a [`FlowLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferId(u64);

/// Base completion threshold: a flow with less than this many bytes left
/// is done. The effective threshold is rate-aware — simulation time has
/// nanosecond resolution, so at rate `r` a completion instant can be off
/// by up to ~1 ns, leaving `r × 1e-9` bytes (≈13 bytes at 13 GB/s).
const DONE_EPSILON: f64 = 1.0;

/// Effective completion threshold for a flow moving at `rate` bytes/sec.
fn done_threshold(rate: f64) -> f64 {
    DONE_EPSILON + rate * 2e-9
}

/// Totally-ordered finite float heap key (`f64::total_cmp`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key(f64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Min-heap entry: `(virtual-time key, id)`; ties broken by id so heap
/// order is deterministic.
type HeapEntry = Reverse<(Key, TransferId)>;

#[derive(Debug, Clone)]
struct VFlow {
    /// Virtual time at which the flow started.
    start_v: f64,
    /// Virtual time at which the flow's bytes are fully delivered.
    finish_v: f64,
    total: f64,
    weight: f64,
    started: SimTime,
}

impl VFlow {
    /// Bytes delivered by virtual time `v` (never exceeds `total`).
    fn delivered(&self, v: f64) -> f64 {
        ((v - self.start_v) * self.weight).min(self.total)
    }

    /// The snap tag: the flow is done once `v + rpw·2e-9` reaches it.
    ///
    /// Derivation: the reference condition `remaining ≤ ε + rate·2e-9`
    /// with `remaining = (finish_v − v)·w` and `rate = rpw·w` rearranges
    /// to `finish_v − ε/w ≤ v + rpw·2e-9`. The left side is constant per
    /// flow, so done-detection is a heap peek.
    fn snap_tag(&self) -> f64 {
        self.finish_v - DONE_EPSILON / self.weight
    }
}

/// A shared link carrying concurrent fluid transfers.
///
/// Transfers can be *weighted*: a transfer of weight `w` receives
/// `w / W_total` of the capacity, and the capacity function is consulted
/// with the total active weight. This models per-node fair sharing on a
/// parallel file system — a 512-node drain and a single-node commit are
/// one transfer each, but the drain holds 512× the bandwidth share and
/// the aggregate capacity curve sees 513 writers.
pub struct FlowLink {
    /// Aggregate capacity (bytes/sec) as a function of the total active
    /// weight (= writer count for node-weighted transfers). Must be
    /// strictly positive for any non-zero weight.
    capacity: Box<dyn Fn(usize) -> f64 + Send>,
    /// Active flows, sorted by id. Ids are issued monotonically, so
    /// insertion is a push at the end and lookup is a binary search; a
    /// plain Vec (not a tree map) keeps the table allocation-free in
    /// steady state — [`reset`](Self::reset) retains its capacity.
    flows: Vec<(TransferId, VFlow)>,
    /// Cumulative virtual time: bytes delivered per unit weight since the
    /// link was last idle. Rebased to zero whenever the link drains so
    /// float granularity cannot grow without bound over a long campaign.
    v: f64,
    /// Incrementally-maintained total active weight (reset to exactly
    /// zero when the link drains, killing accumulated rounding).
    total_weight: f64,
    last_advance: SimTime,
    next_id: u64,
    epoch: u64,
    /// Bytes fully accounted for flows no longer in `flows`; the public
    /// counter adds in-flight progress on demand.
    bytes_retired: f64,
    /// Min-heap on [`VFlow::snap_tag`]: drives `take_completed`.
    by_tag: BinaryHeap<HeapEntry>,
    /// Min-heap on `finish_v`: drives `next_completion`.
    by_finish: BinaryHeap<HeapEntry>,
    /// Debug-mode byte-conservation auditor (zero-sized in release).
    audit: crate::audit::ByteLedger,
    /// Structured trace sink; zero-sized no-op unless the `trace`
    /// feature is enabled and a live recorder is installed.
    rec: Recorder,
}

impl std::fmt::Debug for FlowLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowLink")
            .field("active", &self.flows.len())
            .field("last_advance", &self.last_advance)
            .field("epoch", &self.epoch)
            .field("virtual_time", &self.v)
            .finish()
    }
}

impl FlowLink {
    /// Creates a link with a constant aggregate capacity in bytes/sec.
    pub fn with_constant_capacity(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "link capacity must be > 0");
        Self::with_capacity_fn(move |_| bytes_per_sec)
    }

    /// Creates a link whose aggregate capacity depends on the number of
    /// active transfers (e.g. the GPFS weak-scaling matrix).
    pub fn with_capacity_fn(f: impl Fn(usize) -> f64 + Send + 'static) -> Self {
        Self {
            capacity: Box::new(f),
            flows: Vec::new(),
            v: 0.0,
            total_weight: 0.0,
            last_advance: SimTime::ZERO,
            next_id: 0,
            epoch: 0,
            bytes_retired: 0.0,
            by_tag: BinaryHeap::new(),
            by_finish: BinaryHeap::new(),
            audit: crate::audit::ByteLedger::default(),
            rec: Recorder::disabled(),
        }
    }

    /// Installs a trace recorder; every completed wave is emitted as a
    /// [`kind::FLOW_WAVE`] record. A no-op unless the `trace` feature is
    /// active.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// Clears the link back to its just-constructed idle state while
    /// retaining the capacity function and all allocated storage (flow
    /// table and both heaps), so a recycled link starts transfers without
    /// heap allocation. Outstanding [`TransferId`]s are invalidated.
    pub fn reset(&mut self) {
        self.flows.clear();
        self.v = 0.0;
        self.total_weight = 0.0;
        self.last_advance = SimTime::ZERO;
        self.next_id = 0;
        self.epoch = 0;
        self.bytes_retired = 0.0;
        self.by_tag.clear();
        self.by_finish.clear();
        self.audit.reset();
    }

    /// Index of `id` in the id-sorted flow table.
    #[inline]
    fn flow_idx(&self, id: TransferId) -> Option<usize> {
        self.flows.binary_search_by_key(&id, |&(i, _)| i).ok()
    }

    /// Bandwidth of one unit of weight at the current membership.
    fn rate_per_weight(&self) -> f64 {
        let w = self.total_weight;
        if w <= 0.0 {
            return 0.0;
        }
        let writers = w.ceil() as usize;
        let cap = (self.capacity)(writers);
        assert!(
            cap > 0.0 && cap.is_finite(),
            "capacity function returned {cap} for weight {w}"
        );
        cap / w
    }

    /// Advances all flows to `now`. Must be called (and is called by every
    /// mutating method) with a monotonically non-decreasing `now`.
    pub fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.last_advance,
            "FlowLink time went backwards: {now} < {}",
            self.last_advance
        );
        let dt = now.since(self.last_advance).as_secs();
        if dt > 0.0 && !self.flows.is_empty() {
            self.v += self.rate_per_weight() * dt;
        }
        self.last_advance = now;
    }

    /// Starts a transfer of `bytes` with unit weight at time `now`.
    /// Zero-byte transfers are legal and complete at the next
    /// [`FlowLink::take_completed`] call.
    pub fn start(&mut self, now: SimTime, bytes: f64) -> TransferId {
        self.start_weighted(now, bytes, 1.0)
    }

    /// Starts a transfer of `bytes` carrying `weight` units of bandwidth
    /// share (e.g. the number of nodes writing collectively).
    pub fn start_weighted(&mut self, now: SimTime, bytes: f64, weight: f64) -> TransferId {
        assert!(
            bytes >= 0.0 && bytes.is_finite(),
            "transfer size must be finite and non-negative, got {bytes}"
        );
        assert!(
            weight > 0.0 && weight.is_finite(),
            "transfer weight must be positive, got {weight}"
        );
        self.advance(now);
        self.audit.inject(bytes);
        let id = TransferId(self.next_id);
        self.next_id += 1;
        self.epoch += 1;
        let flow = VFlow {
            start_v: self.v,
            finish_v: self.v + bytes / weight,
            total: bytes,
            weight,
            started: now,
        };
        self.by_tag.push(Reverse((Key(flow.snap_tag()), id)));
        self.by_finish.push(Reverse((Key(flow.finish_v), id)));
        self.total_weight += weight;
        // Ids are monotone, so pushing keeps the table sorted.
        self.flows.push((id, flow));
        id
    }

    /// Aborts a transfer, returning the bytes it still had left, or `None`
    /// if it was not active (already completed or cancelled).
    pub fn cancel(&mut self, now: SimTime, id: TransferId) -> Option<f64> {
        self.advance(now);
        let idx = self.flow_idx(id)?;
        let (_, flow) = self.flows.remove(idx);
        self.epoch += 1;
        let delivered = flow.delivered(self.v);
        self.bytes_retired += delivered;
        self.total_weight -= flow.weight;
        if self.flows.is_empty() {
            self.rebase_idle();
        } else {
            self.prune_heaps();
        }
        self.audit.give_back(flow.total - delivered);
        Some(flow.total - delivered)
    }

    /// When, at current rates, will the earliest active transfer finish?
    ///
    /// Returns `None` if no transfers are active. The returned time is the
    /// moment the first flow's remaining volume reaches zero; the owner
    /// should schedule a completion event there and call
    /// [`FlowLink::take_completed`] when it fires.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        if self.flows.is_empty() {
            return None;
        }
        debug_assert!(now >= self.last_advance);
        let already = now.since(self.last_advance).as_secs();
        let rpw = self.rate_per_weight();
        let v_proj = self.v + already * rpw;
        // Heap tops are always live (mutating methods prune), so both
        // peeks see the minimum over active flows.
        // Non-empty checked above; tops are pruned live. simlint: allow(no-unwrap-in-lib)
        let Reverse((Key(min_tag), _)) = *self.by_tag.peek().expect("live flow in heap");
        let min_dt = if min_tag <= v_proj + rpw * 2e-9 {
            0.0 // some flow is already inside its done threshold
        } else {
            let Reverse((Key(min_finish), _)) =
                // Non-empty checked above; tops are pruned live. simlint: allow(no-unwrap-in-lib)
                *self.by_finish.peek().expect("live flow in heap");
            (min_finish - v_proj) / rpw
        };
        // Round *up* to the next nanosecond so the scheduled instant never
        // undershoots the completion (undershooting by even 1 ns leaves
        // bytes at multi-GB/s rates).
        Some(now + SimDuration::from_secs_f64_ceil(min_dt))
    }

    /// Advances to `now` and removes every transfer that has finished,
    /// returning `(id, total_bytes, started_at)` for each in start order.
    ///
    /// Allocating convenience wrapper around
    /// [`FlowLink::take_completed_into`].
    pub fn take_completed(&mut self, now: SimTime) -> Vec<(TransferId, f64, SimTime)> {
        let mut out = Vec::new();
        self.take_completed_into(now, &mut out);
        out
    }

    /// Advances to `now` and removes every finished transfer, appending
    /// `(id, total_bytes, started_at)` in start order to `out` (which is
    /// cleared first). Hot loops pass the same buffer every call so the
    /// steady state performs no allocation.
    pub fn take_completed_into(
        &mut self,
        now: SimTime,
        out: &mut Vec<(TransferId, f64, SimTime)>,
    ) {
        out.clear();
        self.advance(now);
        if self.flows.is_empty() {
            return;
        }
        // One threshold for the whole batch, from the pre-removal
        // membership — mirrors the reference implementation, which
        // computes `rpw` once before removing anything.
        let bound = self.v + self.rate_per_weight() * 2e-9;
        while let Some(&Reverse((Key(tag), id))) = self.by_tag.peek() {
            let Some(idx) = self.flow_idx(id) else {
                self.by_tag.pop(); // stale: cancelled earlier
                continue;
            };
            if tag > bound {
                break;
            }
            self.by_tag.pop();
            let (_, flow) = self.flows.remove(idx);
            // Retire the flow's *full* byte count: delivered progress plus
            // the sub-threshold rounding remainder, accounted before the
            // epoch bump below so observers at the new epoch see a
            // consistent counter.
            self.bytes_retired += flow.total;
            self.total_weight -= flow.weight;
            out.push((id, flow.total, flow.started));
        }
        // Heap order is by snap tag; the public contract is start order.
        out.sort_unstable_by_key(|&(id, _, _)| id);
        if !out.is_empty() {
            self.epoch += 1;
            for &(id, total, _) in out.iter() {
                self.rec
                    .emit(now.as_nanos(), kind::FLOW_WAVE, id.0, total.to_bits());
            }
        }
        if self.flows.is_empty() {
            self.rebase_idle();
        } else {
            self.prune_heaps();
        }
        // Per-wave conservation audit: everything injected is either
        // retired, returned by cancel, or still in flight.
        self.audit.check_conserved(self.bytes_retired, || {
            self.flows.iter().map(|(_, f)| f.total).sum()
        });
    }

    /// The link just drained: reset virtual time and the weight
    /// accumulator so float error cannot build up across a campaign.
    fn rebase_idle(&mut self) {
        debug_assert!(self.flows.is_empty());
        self.v = 0.0;
        self.total_weight = 0.0;
        self.by_tag.clear();
        self.by_finish.clear();
    }

    /// Restores the invariant that both heap tops refer to live flows,
    /// and compacts either heap when stale entries dominate it.
    fn prune_heaps(&mut self) {
        let flows = &self.flows;
        let contains = |id: TransferId| flows.binary_search_by_key(&id, |&(i, _)| i).is_ok();
        while let Some(&Reverse((_, id))) = self.by_tag.peek() {
            if contains(id) {
                break;
            }
            self.by_tag.pop();
        }
        while let Some(&Reverse((_, id))) = self.by_finish.peek() {
            if contains(id) {
                break;
            }
            self.by_finish.pop();
        }
        let cap = flows.len() * 2 + 64;
        if self.by_tag.len() > cap {
            self.by_tag.retain(|Reverse((_, id))| contains(*id));
        }
        if self.by_finish.len() > cap {
            self.by_finish.retain(|Reverse((_, id))| contains(*id));
        }
    }

    /// Monotone counter incremented on every membership change. Owners
    /// stamp their scheduled completion events with this and discard stale
    /// ones.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of active transfers.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// True if no transfers are in flight.
    pub fn is_idle(&self) -> bool {
        self.flows.is_empty()
    }

    /// Total bytes delivered since construction.
    ///
    /// Cold path: sums in-flight progress over active flows on demand
    /// (the hot loop never maintains per-flow byte counters).
    pub fn bytes_moved(&self) -> f64 {
        self.bytes_retired
            + self
                .flows
                .iter()
                .map(|(_, f)| f.delivered(self.v))
                .sum::<f64>()
    }

    /// Remaining bytes of an active transfer (as of the last advance).
    pub fn remaining(&self, id: TransferId) -> Option<f64> {
        self.flow_idx(id).map(|i| {
            let f = &self.flows[i].1;
            f.total - f.delivered(self.v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_transfer_takes_bytes_over_capacity() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        link.start(t(0.0), 500.0);
        let finish = link.next_completion(t(0.0)).unwrap();
        assert!((finish.as_secs() - 5.0).abs() < 1e-6);
        let done = link.take_completed(finish);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, 500.0);
        assert!(link.is_idle());
        assert!((link.bytes_moved() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn two_equal_transfers_share_fairly() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        link.start(t(0.0), 100.0);
        link.start(t(0.0), 100.0);
        // Each gets 50 B/s → both finish at t=2.
        let finish = link.next_completion(t(0.0)).unwrap();
        assert!((finish.as_secs() - 2.0).abs() < 1e-6);
        let done = link.take_completed(finish);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn late_joiner_slows_existing_transfer() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        let a = link.start(t(0.0), 100.0);
        // At t=0.5, A has 50 B left; B joins with 100 B.
        let b = link.start(t(0.5), 100.0);
        // Shares are 50 B/s each → A finishes at t=1.5, B at t=2.5.
        let fin_a = link.next_completion(t(0.5)).unwrap();
        assert!((fin_a.as_secs() - 1.5).abs() < 1e-6);
        let done = link.take_completed(fin_a);
        assert_eq!(done[0].0, a);
        // A gone → B back to full rate with 50 B left → t=2.0.
        let fin_b = link.next_completion(fin_a).unwrap();
        assert!((fin_b.as_secs() - 2.0).abs() < 1e-6);
        let done = link.take_completed(fin_b);
        assert_eq!(done[0].0, b);
    }

    #[test]
    fn cancel_returns_remaining_and_restores_rate() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        let a = link.start(t(0.0), 1000.0);
        link.start(t(0.0), 1000.0);
        let rem = link.cancel(t(4.0), a).unwrap();
        // 4 s at 50 B/s each → 200 drained, 800 left.
        assert!((rem - 800.0).abs() < 1e-6);
        assert!(link.cancel(t(4.0), a).is_none(), "double cancel is None");
        // Survivor now drains at 100 B/s with 800 left → t=12.
        let fin = link.next_completion(t(4.0)).unwrap();
        assert!((fin.as_secs() - 12.0).abs() < 1e-6);
    }

    #[test]
    fn load_dependent_capacity_is_consulted() {
        // Aggregate capacity saturates: 100 for one flow, 150 for two.
        let mut link = FlowLink::with_capacity_fn(|n| if n <= 1 { 100.0 } else { 150.0 });
        link.start(t(0.0), 100.0);
        link.start(t(0.0), 100.0);
        // Each gets 75 B/s → finish at t≈1.333.
        let fin = link.next_completion(t(0.0)).unwrap();
        assert!((fin.as_secs() - 100.0 / 75.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_transfer_completes_immediately() {
        let mut link = FlowLink::with_constant_capacity(10.0);
        let id = link.start(t(1.0), 0.0);
        let fin = link.next_completion(t(1.0)).unwrap();
        assert_eq!(fin, t(1.0));
        let done = link.take_completed(t(1.0));
        assert_eq!(done[0].0, id);
    }

    #[test]
    fn epoch_increments_on_membership_changes_only() {
        let mut link = FlowLink::with_constant_capacity(10.0);
        let e0 = link.epoch();
        let id = link.start(t(0.0), 10.0);
        assert!(link.epoch() > e0);
        let e1 = link.epoch();
        link.advance(t(0.5));
        assert_eq!(link.epoch(), e1, "advance must not bump the epoch");
        link.cancel(t(0.5), id);
        assert!(link.epoch() > e1);
    }

    #[test]
    fn next_completion_accounts_for_time_since_last_advance() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        link.start(t(0.0), 100.0);
        // Asking at t=0.75 without advancing must still answer t=1.0.
        let fin = link.next_completion(t(0.75)).unwrap();
        assert!((fin.as_secs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn remaining_tracks_progress() {
        let mut link = FlowLink::with_constant_capacity(10.0);
        let id = link.start(t(0.0), 100.0);
        link.advance(t(3.0));
        assert!((link.remaining(id).unwrap() - 70.0).abs() < 1e-6);
        assert_eq!(link.remaining(TransferId(999)), None);
    }

    #[test]
    fn conservation_of_bytes_across_churn() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        let mut injected = 0.0;
        let mut returned = 0.0;
        let mut clock = 0.0;
        let mut ids = Vec::new();
        for i in 0..20 {
            let bytes = 50.0 + i as f64 * 10.0;
            injected += bytes;
            ids.push(link.start(t(clock), bytes));
            clock += 0.3;
            if i % 3 == 0 {
                if let Some(rem) = link.cancel(t(clock), ids[i / 2]) {
                    returned += rem;
                }
            }
            for (_, _, _) in link.take_completed(t(clock)) {}
            clock += 0.1;
        }
        // Drain everything that's left.
        while let Some(fin) = link.next_completion(t(clock)) {
            clock = fin.as_secs();
            link.take_completed(fin);
        }
        let moved = link.bytes_moved();
        assert!(
            (injected - returned - moved).abs() < 1e-3,
            "injected {injected} = returned {returned} + moved {moved}"
        );
    }

    #[test]
    fn weighted_transfers_share_proportionally() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        // A 3-weight drain and a 1-weight commit: 75 vs 25 B/s.
        let heavy = link.start_weighted(t(0.0), 300.0, 3.0);
        let light = link.start_weighted(t(0.0), 100.0, 1.0);
        // Both finish at t=4 (300/75 = 100/25).
        let fin = link.next_completion(t(0.0)).unwrap();
        assert!((fin.as_secs() - 4.0).abs() < 1e-6);
        let done = link.take_completed(fin);
        assert_eq!(done.len(), 2);
        let _ = (heavy, light);
    }

    #[test]
    fn weighted_capacity_fn_sees_total_weight() {
        // Capacity grows with writer count: 100·writers^0.5.
        let mut link = FlowLink::with_capacity_fn(|w| 100.0 * (w as f64).sqrt());
        link.start_weighted(t(0.0), 1_000.0, 4.0);
        // Total weight 4 → capacity 200, all of it to this flow → t=5.
        let fin = link.next_completion(t(0.0)).unwrap();
        assert!((fin.as_secs() - 5.0).abs() < 1e-6, "fin = {fin}");
        // Add a unit-weight flow: weight 5 → capacity 100·√5 ≈ 223.6;
        // heavy gets 4/5 ≈ 178.9 B/s, light 44.7 B/s.
        link.advance(t(1.0));
        link.start_weighted(t(1.0), 44.7, 1.0);
        let fin2 = link.next_completion(t(1.0)).unwrap();
        assert!((fin2.as_secs() - 2.0).abs() < 0.01, "fin2 = {fin2}");
    }

    #[test]
    fn weighted_early_finisher_frees_share() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        let small = link.start_weighted(t(0.0), 25.0, 1.0);
        let big = link.start_weighted(t(0.0), 300.0, 3.0);
        // small at 25 B/s finishes at t=1; big has 225 left, then runs at
        // the full 100 B/s → finishes at t = 1 + 2.25.
        let f1 = link.next_completion(t(0.0)).unwrap();
        assert!((f1.as_secs() - 1.0).abs() < 1e-6);
        let done = link.take_completed(f1);
        assert_eq!(done[0].0, small);
        let f2 = link.next_completion(f1).unwrap();
        assert!((f2.as_secs() - 3.25).abs() < 1e-6, "f2 = {f2}");
        let done = link.take_completed(f2);
        assert_eq!(done[0].0, big);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let mut link = FlowLink::with_constant_capacity(10.0);
        link.start_weighted(t(0.0), 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rewinding_time_panics() {
        let mut link = FlowLink::with_constant_capacity(10.0);
        link.advance(t(5.0));
        link.advance(t(4.0));
    }

    #[test]
    fn take_completed_into_reuses_buffer() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        let mut buf = Vec::new();
        link.start(t(0.0), 100.0);
        link.take_completed_into(t(1.0), &mut buf);
        assert_eq!(buf.len(), 1);
        let cap = buf.capacity();
        // Second round with the same buffer: cleared, refilled, and no
        // regrowth for a same-sized batch.
        link.start(t(1.0), 100.0);
        link.take_completed_into(t(2.0), &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn cancel_churn_keeps_heaps_bounded() {
        // Start/cancel far more flows than stay live; the lazily-pruned
        // heaps must compact rather than grow with total churn.
        let mut link = FlowLink::with_constant_capacity(1e6);
        let keep = link.start(t(0.0), 1e12);
        for i in 0..10_000 {
            let id = link.start_weighted(t(0.0), 1e12, 1.0);
            link.cancel(t(0.0), id);
            let _ = i;
        }
        assert_eq!(link.active(), 1);
        assert!(
            link.by_tag.len() <= 2 * link.active() + 64,
            "by_tag grew to {}",
            link.by_tag.len()
        );
        assert!(
            link.by_finish.len() <= 2 * link.active() + 64,
            "by_finish grew to {}",
            link.by_finish.len()
        );
        link.cancel(t(1.0), keep);
        assert!(link.is_idle());
        assert_eq!(link.by_tag.len(), 0, "idle rebase clears heaps");
    }

    #[test]
    fn reset_behaves_like_a_fresh_link() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        let a = link.start(t(0.0), 1000.0);
        link.start(t(1.0), 300.0);
        link.cancel(t(2.0), a);
        link.reset();
        assert!(link.is_idle());
        assert_eq!(link.epoch(), 0);
        assert_eq!(link.bytes_moved(), 0.0);
        assert_eq!(link.v, 0.0);
        assert_eq!(link.total_weight, 0.0);
        // The recycled link replays the single-transfer scenario exactly,
        // including reissuing ids from zero.
        let b = link.start(t(0.0), 500.0);
        assert_eq!(b, a, "transfer ids restart after reset");
        let finish = link.next_completion(t(0.0)).unwrap();
        assert!((finish.as_secs() - 5.0).abs() < 1e-6);
        let done = link.take_completed(finish);
        assert_eq!(done.len(), 1);
        assert!((link.bytes_moved() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn idle_rebase_resets_virtual_time() {
        let mut link = FlowLink::with_constant_capacity(100.0);
        link.start(t(0.0), 1000.0);
        link.take_completed(t(10.0));
        assert!(link.is_idle());
        assert_eq!(link.v, 0.0);
        assert_eq!(link.total_weight, 0.0);
        // A fresh flow after the rebase behaves exactly like the first.
        link.start(t(100.0), 500.0);
        let fin = link.next_completion(t(100.0)).unwrap();
        assert!((fin.as_secs() - 105.0).abs() < 1e-6);
    }
}

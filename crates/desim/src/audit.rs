//! Debug-mode runtime invariant auditor.
//!
//! `simlint` (see `crates/simlint`) enforces determinism discipline
//! *statically*; this module is its dynamic cross-check. Every audit is
//! compiled away in release builds (`debug_assertions` off), so the hot
//! loop's release-mode cost is zero — debug test runs pay an O(active)
//! scan per completion wave and get three invariants checked
//! continuously:
//!
//! 1. **Pop monotonicity** ([`PopAudit`]): events leave the
//!    [`EventQueue`](crate::queue::EventQueue) in strictly increasing
//!    `(time, seq)` order. A violation means the heap ordering or the
//!    tombstone bookkeeping is corrupt — the simulated world would
//!    observe effects before causes.
//! 2. **Pending/heap consistency after compaction**
//!    ([`check_compaction`]): compaction retains exactly the live
//!    entries, so immediately afterwards the heap and the pending set
//!    must have equal cardinality. An inequality means either a live
//!    event was dropped (lost wakeup) or a dead one survived (ghost
//!    event).
//! 3. **Byte conservation** ([`ByteLedger`]): per completion wave of a
//!    [`FlowLink`](crate::flow::FlowLink), bytes injected by `start` =
//!    bytes retired (completed + delivered-before-cancel) + bytes handed
//!    back by `cancel` + total bytes of still-active flows, to within
//!    float rounding. A drift means the virtual-time accounting is
//!    leaking or double-counting volume — exactly the failure mode that
//!    would silently skew the paper's overhead tables.

use crate::time::SimTime;

/// Relative tolerance for byte conservation: the ledger sums are each a
/// few-thousand-term f64 accumulation, so exact equality is not
/// guaranteed, but drift beyond 1 part in 10⁹ is a real leak.
#[cfg(debug_assertions)]
const CONSERVATION_RTOL: f64 = 1e-9;

/// Audits that event-queue pops never go backwards in `(time, seq)`.
///
/// Zero-sized in release builds; all methods compile to nothing.
#[derive(Debug, Default)]
pub struct PopAudit {
    #[cfg(debug_assertions)]
    last: Option<(SimTime, u64)>,
}

impl PopAudit {
    /// Forgets the last observed pop, for queue reuse across runs: the
    /// recycled queue restarts at `(t = 0, seq = 0)`, which would
    /// otherwise trip the monotonicity check.
    #[inline]
    pub fn reset(&mut self) {
        #[cfg(debug_assertions)]
        {
            self.last = None;
        }
    }

    /// Records a pop and asserts it is strictly after the previous one.
    #[inline]
    pub fn observe_pop(&mut self, time: SimTime, seq: u64) {
        #[cfg(debug_assertions)]
        {
            if let Some(last) = self.last {
                assert!(
                    (time, seq) > last,
                    "audit: event-queue pop went backwards: ({time}, seq {seq}) \
                     after ({}, seq {})",
                    last.0,
                    last.1,
                );
            }
            self.last = Some((time, seq));
        }
        #[cfg(not(debug_assertions))]
        let _ = (time, seq);
    }
}

/// Asserts the post-compaction invariant: the heap holds exactly the
/// live (pending) entries — no ghost survived, no live event was lost.
#[inline]
pub fn check_compaction(heap_len: usize, pending_len: usize) {
    #[cfg(debug_assertions)]
    assert_eq!(
        heap_len, pending_len,
        "audit: event-queue compaction left {heap_len} heap entries for \
         {pending_len} pending ids"
    );
    #[cfg(not(debug_assertions))]
    let _ = (heap_len, pending_len);
}

/// Audits byte conservation across a [`FlowLink`](crate::flow::FlowLink)'s
/// lifetime: injected = retired + cancel-returned + still-active.
///
/// Zero-sized in release builds; all methods compile to nothing.
#[derive(Debug, Default)]
pub struct ByteLedger {
    #[cfg(debug_assertions)]
    injected: f64,
    #[cfg(debug_assertions)]
    cancel_returned: f64,
}

impl ByteLedger {
    /// Zeroes the ledger, for link reuse across runs.
    #[inline]
    pub fn reset(&mut self) {
        #[cfg(debug_assertions)]
        {
            self.injected = 0.0;
            self.cancel_returned = 0.0;
        }
    }

    /// Records bytes entering the link via `start`/`start_weighted`.
    #[inline]
    pub fn inject(&mut self, bytes: f64) {
        #[cfg(debug_assertions)]
        {
            self.injected += bytes;
        }
        #[cfg(not(debug_assertions))]
        let _ = bytes;
    }

    /// Records undelivered bytes handed back to the caller by `cancel`.
    #[inline]
    pub fn give_back(&mut self, bytes: f64) {
        #[cfg(debug_assertions)]
        {
            self.cancel_returned += bytes;
        }
        #[cfg(not(debug_assertions))]
        let _ = bytes;
    }

    /// Asserts conservation after a completion wave. `retired` is the
    /// link's cumulative retired-byte counter; `active_total` is only
    /// evaluated in debug builds (it is an O(active) scan).
    #[inline]
    pub fn check_conserved(&self, retired: f64, active_total: impl FnOnce() -> f64) {
        #[cfg(debug_assertions)]
        {
            let accounted = retired + self.cancel_returned + active_total();
            let tol = CONSERVATION_RTOL * self.injected.max(1.0);
            assert!(
                (self.injected - accounted).abs() <= tol,
                "audit: FlowLink byte-conservation drift: injected {} vs \
                 accounted {} (retired {retired} + cancelled {} + active) \
                 exceeds tolerance {tol}",
                self.injected,
                accounted,
                self.cancel_returned,
            );
        }
        #[cfg(not(debug_assertions))]
        let _ = (retired, active_total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_audit_accepts_monotone_sequences() {
        let mut a = PopAudit::default();
        a.observe_pop(SimTime::from_secs(1.0), 0);
        a.observe_pop(SimTime::from_secs(1.0), 3); // same time, later seq
        a.observe_pop(SimTime::from_secs(2.0), 1); // later time, any seq
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "audit compiled out in release")]
    #[should_panic(expected = "pop went backwards")]
    fn pop_audit_rejects_time_regression() {
        let mut a = PopAudit::default();
        a.observe_pop(SimTime::from_secs(2.0), 0);
        a.observe_pop(SimTime::from_secs(1.0), 1);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "audit compiled out in release")]
    #[should_panic(expected = "pop went backwards")]
    fn pop_audit_rejects_seq_regression() {
        let mut a = PopAudit::default();
        a.observe_pop(SimTime::from_secs(1.0), 5);
        a.observe_pop(SimTime::from_secs(1.0), 4);
    }

    #[test]
    fn ledger_balances_completion_and_cancellation() {
        let mut l = ByteLedger::default();
        l.inject(100.0);
        l.inject(50.0);
        l.give_back(20.0); // cancel returned 20 of the second transfer
        // 100 completed + 30 delivered-before-cancel retired; none active.
        l.check_conserved(130.0, || 0.0);
        // A third transfer still in flight counts at full volume.
        l.inject(40.0);
        l.check_conserved(130.0, || 40.0);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "audit compiled out in release")]
    #[should_panic(expected = "byte-conservation drift")]
    fn ledger_catches_leaks() {
        let mut l = ByteLedger::default();
        l.inject(100.0);
        l.check_conserved(90.0, || 0.0); // 10 bytes vanished
    }

    #[test]
    fn compaction_check_accepts_equal_sizes() {
        check_compaction(7, 7);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "audit compiled out in release")]
    #[should_panic(expected = "compaction left")]
    fn compaction_check_rejects_mismatch() {
        check_compaction(8, 7);
    }
}

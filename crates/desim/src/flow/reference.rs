//! The original per-flow O(n) fluid-link implementation, kept verbatim
//! as the behavioral oracle for the virtual-time [`super::FlowLink`].
//!
//! [`ReferenceFlowLink`] advances every flow's byte counter on every
//! `advance` and scans all flows in `next_completion`/`take_completed`.
//! That is O(n) per event — too slow for churn-heavy campaigns, but
//! directly readable against the model description. Property tests
//! (`crates/desim/tests/proptests.rs`) drive both implementations with
//! identical randomized start/cancel/complete sequences and assert
//! observational equivalence; the benches in `crates/bench` measure the
//! speedup of the virtual-time engine over this baseline.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

use super::{done_threshold, TransferId};

#[derive(Debug, Clone)]
struct Flow {
    remaining: f64, // bytes
    started: SimTime,
    total: f64,
    weight: f64,
}

/// The pre-virtual-time link: semantics identical to [`super::FlowLink`],
/// cost O(active flows) per operation.
pub struct ReferenceFlowLink {
    capacity: Box<dyn Fn(usize) -> f64 + Send>,
    flows: BTreeMap<TransferId, Flow>,
    last_advance: SimTime,
    next_id: u64,
    epoch: u64,
    bytes_moved: f64,
}

impl std::fmt::Debug for ReferenceFlowLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReferenceFlowLink")
            .field("active", &self.flows.len())
            .field("last_advance", &self.last_advance)
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl ReferenceFlowLink {
    /// Creates a link with a constant aggregate capacity in bytes/sec.
    pub fn with_constant_capacity(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "link capacity must be > 0");
        Self::with_capacity_fn(move |_| bytes_per_sec)
    }

    /// Creates a link whose aggregate capacity depends on the number of
    /// active transfers.
    pub fn with_capacity_fn(f: impl Fn(usize) -> f64 + Send + 'static) -> Self {
        Self {
            capacity: Box::new(f),
            flows: BTreeMap::new(),
            last_advance: SimTime::ZERO,
            next_id: 0,
            epoch: 0,
            bytes_moved: 0.0,
        }
    }

    /// Total active weight.
    fn total_weight(&self) -> f64 {
        self.flows.values().map(|f| f.weight).sum()
    }

    /// Bandwidth of one unit of weight at the current membership.
    fn rate_per_weight(&self) -> f64 {
        let w = self.total_weight();
        if w <= 0.0 {
            return 0.0;
        }
        let writers = w.ceil() as usize;
        let cap = (self.capacity)(writers);
        assert!(
            cap > 0.0 && cap.is_finite(),
            "capacity function returned {cap} for weight {w}"
        );
        cap / w
    }

    /// Advances all flows to `now`.
    pub fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.last_advance,
            "FlowLink time went backwards: {now} < {}",
            self.last_advance
        );
        let dt = now.since(self.last_advance).as_secs();
        if dt > 0.0 && !self.flows.is_empty() {
            let rpw = self.rate_per_weight();
            for flow in self.flows.values_mut() {
                let step = (rpw * flow.weight * dt).min(flow.remaining);
                flow.remaining -= step;
                self.bytes_moved += step;
            }
        }
        self.last_advance = now;
    }

    /// Starts a transfer of `bytes` with unit weight at time `now`.
    pub fn start(&mut self, now: SimTime, bytes: f64) -> TransferId {
        self.start_weighted(now, bytes, 1.0)
    }

    /// Starts a transfer of `bytes` carrying `weight` units of share.
    pub fn start_weighted(&mut self, now: SimTime, bytes: f64, weight: f64) -> TransferId {
        assert!(
            bytes >= 0.0 && bytes.is_finite(),
            "transfer size must be finite and non-negative, got {bytes}"
        );
        assert!(
            weight > 0.0 && weight.is_finite(),
            "transfer weight must be positive, got {weight}"
        );
        self.advance(now);
        let id = TransferId(self.next_id);
        self.next_id += 1;
        self.epoch += 1;
        self.flows.insert(
            id,
            Flow {
                remaining: bytes,
                started: now,
                total: bytes,
                weight,
            },
        );
        id
    }

    /// Aborts a transfer, returning the bytes it still had left.
    pub fn cancel(&mut self, now: SimTime, id: TransferId) -> Option<f64> {
        self.advance(now);
        let flow = self.flows.remove(&id)?;
        self.epoch += 1;
        Some(flow.remaining)
    }

    /// When, at current rates, will the earliest active transfer finish?
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        if self.flows.is_empty() {
            return None;
        }
        debug_assert!(now >= self.last_advance);
        let already = now.since(self.last_advance).as_secs();
        let rpw = self.rate_per_weight();
        let min_dt = self
            .flows
            .values()
            .map(|f| {
                let rate = rpw * f.weight;
                let outstanding = (f.remaining - already * rate).max(0.0);
                if outstanding <= done_threshold(rate) {
                    0.0
                } else {
                    outstanding / rate
                }
            })
            .fold(f64::INFINITY, f64::min);
        Some(now + SimDuration::from_secs_f64_ceil(min_dt))
    }

    /// Advances to `now` and removes every transfer that has finished,
    /// returning `(id, total_bytes, started_at)` for each in start order.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<(TransferId, f64, SimTime)> {
        self.advance(now);
        let rpw = self.rate_per_weight();
        let mut done: Vec<(TransferId, f64, SimTime)> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= done_threshold(rpw * f.weight))
            .map(|(&id, f)| (id, f.total, f.started))
            .collect();
        done.sort_by_key(|&(id, _, _)| id);
        for &(id, _, _) in &done {
            // `done` was built from this map two lines up. simlint: allow(no-unwrap-in-lib)
            let f = self.flows.remove(&id).expect("listed as done");
            // Account the rounding remainder so bytes_moved stays exact.
            self.bytes_moved += f.remaining;
        }
        if !done.is_empty() {
            self.epoch += 1;
        }
        done
    }

    /// Monotone counter incremented on every membership change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of active transfers.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// True if no transfers are in flight.
    pub fn is_idle(&self) -> bool {
        self.flows.is_empty()
    }

    /// Total bytes delivered since construction.
    pub fn bytes_moved(&self) -> f64 {
        self.bytes_moved
    }

    /// Remaining bytes of an active transfer (as of the last advance).
    pub fn remaining(&self, id: TransferId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    // Spot checks that the oracle still behaves; the full 15-case suite
    // lives in the parent module against the virtual-time engine, and the
    // property tests pin the two implementations to each other.
    #[test]
    fn reference_basics_hold() {
        let mut link = ReferenceFlowLink::with_constant_capacity(100.0);
        let a = link.start(t(0.0), 100.0);
        let b = link.start(t(0.5), 100.0);
        let fin_a = link.next_completion(t(0.5)).unwrap();
        assert!((fin_a.as_secs() - 1.5).abs() < 1e-6);
        assert_eq!(link.take_completed(fin_a)[0].0, a);
        let fin_b = link.next_completion(fin_a).unwrap();
        assert!((fin_b.as_secs() - 2.0).abs() < 1e-6);
        assert_eq!(link.take_completed(fin_b)[0].0, b);
        assert!(link.is_idle());
        assert!((link.bytes_moved() - 200.0).abs() < 1e-6);
    }

    #[test]
    fn reference_weighted_shares() {
        let mut link = ReferenceFlowLink::with_constant_capacity(100.0);
        link.start_weighted(t(0.0), 300.0, 3.0);
        link.start_weighted(t(0.0), 100.0, 1.0);
        let fin = link.next_completion(t(0.0)).unwrap();
        assert!((fin.as_secs() - 4.0).abs() < 1e-6);
        assert_eq!(link.take_completed(fin).len(), 2);
    }
}

//! Counting resources with prioritized waiters.
//!
//! The p-ckpt protocol's essence is *prioritized* access to a contended
//! resource: vulnerable nodes with the shortest lead time to failure go
//! first ("a lower lead time implies a higher priority", Sec. VI). This
//! module provides the queueing structure for that: a counting semaphore
//! whose wait queue is ordered by an integer priority (lower value = served
//! earlier), FIFO within a priority level.
//!
//! The structure is deliberately engine-agnostic: it stores caller-provided
//! tokens (process ids, node ids) and never touches the event queue, so it
//! can be unit-tested exhaustively and reused by both the process layer and
//! the C/R models.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of an acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// A slot was free; the caller holds it now.
    Granted,
    /// All slots busy; the caller was enqueued.
    Queued,
}

#[derive(Debug)]
struct Waiter<T> {
    priority: i64,
    seq: u64,
    token: T,
}

impl<T> PartialEq for Waiter<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.priority, self.seq) == (other.priority, other.seq)
    }
}
impl<T> Eq for Waiter<T> {}
impl<T> PartialOrd for Waiter<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Waiter<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.priority, self.seq).cmp(&(other.priority, other.seq))
    }
}

/// A counting resource with a priority wait queue.
#[derive(Debug)]
pub struct Resource<T> {
    capacity: usize,
    in_use: usize,
    waiters: BinaryHeap<Reverse<Waiter<T>>>,
    next_seq: u64,
}

impl<T> Resource<T> {
    /// Creates a resource with `capacity` slots (> 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "resource capacity must be > 0");
        Self {
            capacity,
            in_use: 0,
            waiters: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Forgets all held slots and queued waiters while retaining the
    /// capacity and the wait queue's allocation, for world reuse across
    /// runs.
    pub fn reset(&mut self) {
        self.in_use = 0;
        self.waiters.clear();
        self.next_seq = 0;
    }

    /// Attempts to take a slot, enqueueing `token` at `priority` (lower is
    /// served first) if none is free.
    pub fn acquire(&mut self, token: T, priority: i64) -> Acquire {
        if self.in_use < self.capacity && self.waiters.is_empty() {
            self.in_use += 1;
            Acquire::Granted
        } else {
            self.waiters.push(Reverse(Waiter {
                priority,
                seq: self.next_seq,
                token,
            }));
            self.next_seq += 1;
            Acquire::Queued
        }
    }

    /// Releases one held slot. If a waiter exists, the slot passes directly
    /// to the highest-priority one, whose token is returned — the caller is
    /// responsible for waking it. Panics if no slot is held.
    pub fn release(&mut self) -> Option<T> {
        assert!(self.in_use > 0, "release() without a held slot");
        match self.waiters.pop() {
            Some(Reverse(w)) => Some(w.token), // slot transfers; in_use unchanged
            None => {
                self.in_use -= 1;
                None
            }
        }
    }

    /// Removes the first queued waiter matching `pred` (e.g. a node whose
    /// p-ckpt request is superseded). Returns its token.
    pub fn cancel_wait(&mut self, pred: impl Fn(&T) -> bool) -> Option<T> {
        // BinaryHeap has no removal; rebuild without the first match. The
        // wait queues here are tiny (vulnerable nodes at one instant).
        let mut drained: Vec<Reverse<Waiter<T>>> = std::mem::take(&mut self.waiters).into_vec();
        drained.sort(); // deterministic scan order (priority, seq)
        let mut removed = None;
        // sort() puts Reverse-largest (lowest priority value) last, so
        // scan from the back to test waiters in service order.
        for i in (0..drained.len()).rev() {
            if pred(&drained[i].0.token) {
                removed = Some(drained.remove(i).0.token);
                break;
            }
        }
        // Heapify in place: reuses the drained buffer, so cancellation
        // never allocates (pop order is fixed by Ord, not heap layout).
        self.waiters = BinaryHeap::from(drained);
        removed
    }

    /// Slots currently held.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of queued waiters.
    pub fn queued(&self) -> usize {
        self.waiters.len()
    }

    /// True if a slot is free *and* nobody is queued for it.
    pub fn available(&self) -> bool {
        self.in_use < self.capacity && self.waiters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_until_capacity_then_queues() {
        let mut r = Resource::new(2);
        assert_eq!(r.acquire("a", 0), Acquire::Granted);
        assert_eq!(r.acquire("b", 0), Acquire::Granted);
        assert_eq!(r.acquire("c", 0), Acquire::Queued);
        assert_eq!(r.in_use(), 2);
        assert_eq!(r.queued(), 1);
        assert!(!r.available());
    }

    #[test]
    fn release_hands_slot_to_highest_priority_waiter() {
        let mut r = Resource::new(1);
        assert_eq!(r.acquire("holder", 0), Acquire::Granted);
        r.acquire("low", 10);
        r.acquire("high", 1);
        r.acquire("mid", 5);
        assert_eq!(r.release(), Some("high"));
        assert_eq!(r.release(), Some("mid"));
        assert_eq!(r.release(), Some("low"));
        assert_eq!(r.release(), None);
        assert_eq!(r.in_use(), 0);
    }

    #[test]
    fn fifo_within_equal_priority() {
        let mut r = Resource::new(1);
        r.acquire("holder", 0);
        r.acquire("first", 3);
        r.acquire("second", 3);
        assert_eq!(r.release(), Some("first"));
        assert_eq!(r.release(), Some("second"));
    }

    #[test]
    fn in_use_constant_while_slot_transfers() {
        let mut r = Resource::new(1);
        r.acquire(1, 0);
        r.acquire(2, 0);
        assert_eq!(r.in_use(), 1);
        r.release();
        assert_eq!(r.in_use(), 1, "slot transferred, not freed");
        r.release();
        assert_eq!(r.in_use(), 0);
    }

    #[test]
    fn queue_blocks_new_grants_even_with_free_slots() {
        // Prevents barging: once someone waits, later arrivals go behind
        // them even if a slot frees up in between (the wake-up path hands
        // slots to waiters directly).
        let mut r = Resource::new(2);
        r.acquire("a", 0);
        r.acquire("b", 0);
        r.acquire("w", 0); // queued
        // "a" releases → slot goes to "w", in_use stays 2.
        assert_eq!(r.release(), Some("w"));
        // A newcomer must queue if someone else is already waiting.
        r.acquire("x", 0);
        assert_eq!(r.in_use(), 2);
        assert_eq!(r.queued(), 1);
    }

    #[test]
    fn cancel_wait_removes_only_first_match_in_service_order() {
        let mut r = Resource::new(1);
        r.acquire(0, 0); // holder
        r.acquire(10, 5);
        r.acquire(11, 1);
        r.acquire(10, 2);
        // Two waiters equal 10; service order is (11,p1), (10,p2), (10,p5);
        // the first matching in service order is the p2 one.
        let removed = r.cancel_wait(|&t| t == 10);
        assert_eq!(removed, Some(10));
        assert_eq!(r.queued(), 2);
        assert_eq!(r.release(), Some(11));
        assert_eq!(r.release(), Some(10)); // the p5 waiter survived
    }

    #[test]
    fn cancel_wait_no_match() {
        let mut r: Resource<u32> = Resource::new(1);
        r.acquire(1, 0);
        r.acquire(2, 0);
        assert_eq!(r.cancel_wait(|&t| t == 99), None);
        assert_eq!(r.queued(), 1);
    }

    #[test]
    #[should_panic(expected = "without a held slot")]
    fn release_without_hold_panics() {
        let mut r: Resource<()> = Resource::new(1);
        r.release();
    }

    #[test]
    fn reset_frees_slots_and_forgets_waiters() {
        let mut r = Resource::new(1);
        r.acquire("holder", 0);
        r.acquire("waiter", 0);
        r.reset();
        assert_eq!(r.in_use(), 0);
        assert_eq!(r.queued(), 0);
        assert!(r.available());
        assert_eq!(r.acquire("fresh", 0), Acquire::Granted);
    }

    #[test]
    fn negative_priorities_serve_first() {
        let mut r = Resource::new(1);
        r.acquire("holder", 0);
        r.acquire("zero", 0);
        r.acquire("neg", -5);
        assert_eq!(r.release(), Some("neg"));
    }
}

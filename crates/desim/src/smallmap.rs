//! A sorted-vector map for small, hot key sets.
//!
//! The C/R models keep a handful of keyed entries alive at any instant
//! (active live migrations, outstanding predictions) and mutate them on
//! every event. A `BTreeMap` allocates tree nodes as it crosses the
//! empty/non-empty boundary, which it does thousands of times per
//! campaign — precisely the churn the allocation-free steady state must
//! avoid. [`SmallMap`] stores `(key, value)` pairs in a single Vec kept
//! sorted by key: lookups are a binary search, iteration is in key order
//! (the same determinism contract a `BTreeMap` gives), and
//! [`clear`](SmallMap::clear) retains the backing storage so a recycled
//! map never allocates after warmup.

/// A map backed by a key-sorted `Vec`, tuned for few (≲ dozens of)
/// entries and allocation-free reuse.
#[derive(Debug, Clone)]
pub struct SmallMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K: Ord, V> SmallMap<K, V> {
    /// Creates an empty map (no allocation until the first insert).
    pub const fn new() -> Self {
        Self { entries: Vec::new() }
    }

    #[inline]
    fn idx(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.idx(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes and returns the value at `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.idx(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Borrows the value at `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.idx(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutably borrows the value at `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.idx(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.idx(key).is_ok()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all entries, retaining the backing allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Mutably iterates values in ascending key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.iter_mut().map(|(_, v)| v)
    }

    /// Drains all entries in ascending key order, retaining the backing
    /// allocation (unlike `mem::take`, which surrenders it).
    pub fn drain(&mut self) -> std::vec::Drain<'_, (K, V)> {
        self.entries.drain(..)
    }
}

impl<K: Ord, V> Default for SmallMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = SmallMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(3, "c"), None);
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(2, "b"), None);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&2), Some(&"b"));
        assert_eq!(m.insert(2, "B"), Some("b"), "insert replaces");
        assert_eq!(m.remove(&1), Some("a"));
        assert_eq!(m.remove(&1), None);
        assert!(!m.contains_key(&1));
        assert!(m.contains_key(&3));
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut m = SmallMap::new();
        for k in [5u32, 1, 9, 3, 7] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u32> = m.iter().map(|(&k, _)| k).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
        let vals: Vec<u32> = m.values().copied().collect();
        assert_eq!(vals, vec![10, 30, 50, 70, 90]);
    }

    #[test]
    fn drain_yields_key_order_and_keeps_capacity() {
        let mut m = SmallMap::new();
        for k in [4, 2, 8] {
            m.insert(k, ());
        }
        let cap = m.entries.capacity();
        let drained: Vec<i32> = m.drain().map(|(k, _)| k).collect();
        assert_eq!(drained, vec![2, 4, 8]);
        assert!(m.is_empty());
        assert_eq!(m.entries.capacity(), cap, "drain retains storage");
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut m = SmallMap::new();
        m.insert("k", 1);
        *m.get_mut(&"k").unwrap() += 10;
        assert_eq!(m.get(&"k"), Some(&11));
        for v in m.values_mut() {
            *v *= 2;
        }
        assert_eq!(m.get(&"k"), Some(&22));
    }

    #[test]
    fn clear_retains_storage() {
        let mut m = SmallMap::new();
        for k in 0..16 {
            m.insert(k, k);
        }
        let cap = m.entries.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.entries.capacity(), cap);
        m.insert(1, 1);
        assert_eq!(m.len(), 1);
    }
}

//! Simulation time.
//!
//! Time is an integer number of **nanoseconds** since simulation start.
//! Integer time makes event ordering exact (no float-comparison ties) and
//! keeps runs bit-for-bit reproducible; at nanosecond resolution the
//! representable horizon is ≈292 years, far beyond the 720-hour VULCAN run
//! in Table I. All user-facing constructors and accessors speak `f64`
//! seconds/hours because the physical models (bandwidths, Weibull
//! inter-arrivals) are naturally real-valued.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

const NANOS_PER_SEC: f64 = 1e9;

/// A point in simulated time (nanoseconds since t = 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation origin, t = 0.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from seconds. Panics if negative or non-finite.
    pub fn from_secs(secs: f64) -> Self {
        Self::from_secs_f64(secs)
    }

    /// Checked f64-seconds → nanosecond conversion: the single blessed
    /// entry point for building a `SimTime` from real-valued seconds.
    /// Panics on negative/non-finite input or clock overflow.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Checked nanosecond → f64-seconds conversion; the inverse of
    /// [`SimTime::from_secs_f64`]. Debug builds assert the value is
    /// exactly representable (see [`nanos_to_secs`]).
    pub fn to_secs_f64(self) -> f64 {
        nanos_to_secs(self.0)
    }

    /// Creates a time from hours. Panics if negative or non-finite.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Raw nanoseconds since t = 0.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.to_secs_f64()
    }

    /// Time as fractional hours.
    pub fn as_hours(self) -> f64 {
        self.as_secs() / 3600.0
    }

    /// Duration elapsed since `earlier`. Panics (debug) / saturates to zero
    /// (release) if `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            self >= earlier,
            "since() called with a future reference point ({:?} < {:?})",
            self,
            earlier
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from seconds. Panics if negative or non-finite.
    pub fn from_secs(secs: f64) -> Self {
        Self::from_secs_f64(secs)
    }

    /// Checked f64-seconds → nanosecond conversion (round-to-nearest);
    /// the blessed entry point mirroring [`SimTime::from_secs_f64`].
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Like [`SimDuration::from_secs_f64`] but rounds **up** to the next
    /// whole nanosecond. Use this when the duration is a lower bound —
    /// e.g. the wake-up delay that must cover a fluid transfer's
    /// completion — so rounding can never make an event fire early.
    pub fn from_secs_f64_ceil(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "time values must be finite and non-negative, got {secs}"
        );
        let ns = (secs * NANOS_PER_SEC).ceil();
        assert!(
            ns <= u64::MAX as f64,
            "time value {secs}s overflows the simulation clock"
        );
        // The assertions above establish the range. simlint: allow(no-lossy-time-cast)
        SimDuration(ns as u64)
    }

    /// Checked nanosecond → f64-seconds conversion; the inverse of
    /// [`SimDuration::from_secs_f64`].
    pub fn to_secs_f64(self) -> f64 {
        nanos_to_secs(self.0)
    }

    /// Creates a duration from minutes.
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Creates a duration from hours.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.to_secs_f64()
    }

    /// Duration as fractional hours.
    pub fn as_hours(self) -> f64 {
        self.as_secs() / 3600.0
    }

    /// True iff this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

/// Nanoseconds at or below which an f64 holds every integer exactly
/// (2^53 ns ≈ 104 simulated days — well past the 720-hour VULCAN run).
const MAX_EXACT_NANOS: u64 = 1 << 53;

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "time values must be finite and non-negative, got {secs}"
    );
    let ns = secs * NANOS_PER_SEC;
    assert!(
        ns <= u64::MAX as f64,
        "time value {secs}s overflows the simulation clock"
    );
    // The assertions above establish the range. simlint: allow(no-lossy-time-cast)
    ns.round() as u64
}

/// The blessed nanosecond → f64-seconds conversion. Debug builds check
/// the count is small enough for the f64 mantissa to hold it exactly,
/// so accumulated-time readouts cannot silently lose nanoseconds
/// (`u64::MAX` — the "never" sentinel — is exempt).
fn nanos_to_secs(ns: u64) -> f64 {
    debug_assert!(
        ns <= MAX_EXACT_NANOS || ns == u64::MAX,
        "nanosecond count {ns} exceeds exact f64 range; readout would lose precision"
    );
    // Range checked above (debug); division by 1e9 is exact-mantissa safe. simlint: allow(no-lossy-time-cast)
    ns as f64 / NANOS_PER_SEC
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(d.0)
                // Overflowing the 292-year clock is a programming error,
                // not recoverable input. simlint: allow(no-unwrap-in-lib)
                .expect("simulation clock overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(d.0)
                // Subtracting past t=0 is a programming error, not
                // recoverable input. simlint: allow(no-unwrap-in-lib)
                .expect("simulation clock underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(other.0)
                // 292-year span overflow is a programming error, not
                // recoverable input. simlint: allow(no-unwrap-in-lib)
                .expect("duration overflow"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(other.0)
                // Negative spans cannot exist in u64 time; underflow is a
                // programming error. simlint: allow(no-unwrap-in-lib)
                .expect("duration underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: f64) -> SimDuration {
        SimDuration::from_secs(self.as_secs() * k)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: f64) -> SimDuration {
        assert!(k > 0.0, "division of a duration by a non-positive factor");
        SimDuration::from_secs(self.as_secs() / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs();
        if s >= 3600.0 {
            write!(f, "{:.2}h", s / 3600.0)
        } else if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else {
            write!(f, "{:.1}µs", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_secs(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs() - 1.5).abs() < 1e-12);
        let h = SimTime::from_hours(2.0);
        assert!((h.as_hours() - 2.0).abs() < 1e-12);
        let d = SimDuration::from_micros(8.0);
        assert_eq!(d.as_nanos(), 8_000);
        assert_eq!(SimDuration::from_mins(2.0), SimDuration::from_secs(120.0));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0) + SimDuration::from_secs(5.0);
        assert_eq!(t, SimTime::from_secs(15.0));
        assert_eq!(
            t.since(SimTime::from_secs(10.0)),
            SimDuration::from_secs(5.0)
        );
        assert_eq!(t - SimDuration::from_secs(15.0), SimTime::ZERO);
        let d = SimDuration::from_secs(4.0) - SimDuration::from_secs(1.0);
        assert_eq!(d, SimDuration::from_secs(3.0));
        assert_eq!(d * 2.0, SimDuration::from_secs(6.0));
        assert_eq!(d / 3.0, SimDuration::from_secs(1.0));
    }

    #[test]
    fn ordering_is_total_and_exact() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(
            SimDuration::from_nanos(3).min(SimDuration::from_nanos(5)),
            SimDuration::from_nanos(3)
        );
        assert_eq!(
            SimDuration::from_nanos(3).max(SimDuration::from_nanos(5)),
            SimDuration::from_nanos(5)
        );
    }

    #[test]
    fn saturating_and_checked_ops() {
        let d = SimDuration::from_secs(1.0);
        assert_eq!(d.saturating_sub(SimDuration::from_secs(2.0)), SimDuration::ZERO);
        assert!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)).is_none());
        assert!(SimTime::ZERO.checked_add(d).is_some());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        let _ = SimDuration::from_secs(f64::NAN);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_hours(2.0)), "2.00h");
        assert_eq!(format!("{}", SimDuration::from_secs(1.5)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_micros(8.0)), "8.0µs");
        assert_eq!(format!("{}", SimTime::from_secs(1.0)), "t=1.000s");
    }

    #[test]
    fn checked_f64_helpers_roundtrip() {
        let t = SimTime::from_secs_f64(2.25);
        assert_eq!(t.as_nanos(), 2_250_000_000);
        assert_eq!(t.to_secs_f64(), 2.25);
        let d = SimDuration::from_secs_f64(0.5);
        assert_eq!(d.to_secs_f64(), 0.5);
        // from_secs / as_secs are aliases of the checked helpers.
        assert_eq!(SimTime::from_secs(2.25), t);
        assert_eq!(d.as_secs(), d.to_secs_f64());
    }

    #[test]
    fn ceil_conversion_never_rounds_down() {
        // 1.25 ns of seconds: nearest rounds to 1 ns, ceil must give 2.
        let secs = 1.25e-9;
        assert_eq!(SimDuration::from_secs_f64(secs).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64_ceil(secs).as_nanos(), 2);
        // Exact values stay exact.
        assert_eq!(SimDuration::from_secs_f64_ceil(1.0).as_nanos(), 1_000_000_000);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn ceil_rejects_negative() {
        let _ = SimDuration::from_secs_f64_ceil(-1e-9);
    }

    #[test]
    fn is_zero() {
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_nanos(1).is_zero());
    }
}

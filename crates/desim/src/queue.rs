//! The pending-event set: a cancellable, deterministic priority queue.
//!
//! Cancellation is first-class because the C/R models revoke scheduled
//! futures all the time: a pending failure event is cancelled when live
//! migration moves the process off the vulnerable node; an LM-completion
//! event is cancelled when a shorter-lead prediction aborts the migration
//! (Fig. 5 of the paper). Cancellation is *lazy*: entries stay in the heap
//! and are dropped when popped, which keeps both `schedule` and `cancel`
//! O(log n) / O(1) amortized.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

/// Opaque handle identifying a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

// Ordering for the min-heap: earliest time first, FIFO within a timestamp.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic pending-event set.
///
/// Events are `(time, payload)` pairs; simultaneous events pop in the order
/// they were scheduled. Any event can be cancelled by its [`EventId`] until
/// it has been popped.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<EventId>,
    now: SimTime,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at t = 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// Panics if `at` is in the past — an event scheduled behind the clock
    /// is always a model bug, and silently reordering it would corrupt
    /// causality.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({at} < now {})",
            self.now
        );
        let id = EventId(self.next_seq);
        self.heap.push(Reverse(Entry {
            time: at,
            seq: self.next_seq,
            id,
            payload,
        }));
        self.next_seq += 1;
        self.scheduled_total += 1;
        id
    }

    /// Schedules `payload` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        let at = self.now + delay;
        self.schedule_at(at, payload)
    }

    /// Cancels a scheduled event. Returns `true` if the event was still
    /// pending (and is now guaranteed never to fire), `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false; // never issued
        }
        // Membership in the heap is not tracked directly; inserting into
        // `cancelled` is harmless for already-popped ids because pop()
        // removes ids from the set when it skips them, and popped ids are
        // never re-issued.
        if self.is_pending(id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    fn is_pending(&self, id: EventId) -> bool {
        // O(n) scan; only used on the cancel path which is rare compared to
        // schedule/pop. (The C/R models cancel a handful of events per
        // failure, and failures are sparse.)
        !self.cancelled.contains(&id) && self.heap.iter().any(|Reverse(e)| e.id == id)
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue; // tombstone
            }
            debug_assert!(entry.time >= self.now, "heap returned a past event");
            self.now = entry.time;
            return Some((entry.time, entry.id, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop leading tombstones so the peek is accurate.
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.id) {
                let Reverse(entry) = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&entry.id);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (monotone; for metrics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(secs(3.0), "c");
        q.schedule_at(secs(1.0), "a");
        q.schedule_at(secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), secs(3.0));
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(secs(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_secs(2.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop().unwrap();
        assert_eq!(q.now(), secs(2.0));
        q.schedule_in(SimDuration::from_secs(1.0), ());
        let (t, _, _) = q.pop().unwrap();
        assert_eq!(t, secs(3.0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(secs(2.0), ());
        q.pop().unwrap();
        q.schedule_at(secs(1.0), ());
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(secs(1.0), "a");
        q.schedule_at(secs(2.0), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        let (_, _, p) = q.pop().unwrap();
        assert_eq!(p, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_is_idempotent_and_rejects_fired_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(secs(1.0), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "second cancel must report failure");
        let b = q.schedule_at(secs(2.0), ());
        q.pop().unwrap();
        assert!(!q.cancel(b), "cannot cancel an event that already fired");
    }

    #[test]
    fn cancel_unknown_id_is_safe() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(12345)));
    }

    #[test]
    fn peek_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(secs(1.0), "a");
        q.schedule_at(secs(2.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(secs(2.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..5).map(|i| q.schedule_at(secs(i as f64 + 1.0), i)).collect();
        assert_eq!(q.len(), 5);
        q.cancel(ids[1]);
        q.cancel(ids[3]);
        assert_eq!(q.len(), 3);
        let survivors: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(survivors, vec![0, 2, 4]);
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 5);
    }
}

//! The pending-event set: a cancellable, deterministic priority queue.
//!
//! Cancellation is first-class because the C/R models revoke scheduled
//! futures all the time: a pending failure event is cancelled when live
//! migration moves the process off the vulnerable node; an LM-completion
//! event is cancelled when a shorter-lead prediction aborts the migration
//! (Fig. 5 of the paper). Cancellation is *lazy*: the heap entry stays
//! put and the id is dropped from the live-id set, so `cancel` is O(1)
//! and `schedule`/`pop` stay O(log n). Dead entries are skipped when
//! they surface and the heap is compacted in one O(n) pass whenever dead
//! entries outnumber live ones, so memory stays proportional to the live
//! event count no matter how much is cancelled.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pckpt_simobs::Recorder;

use crate::time::{SimDuration, SimTime};

/// Opaque handle identifying a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

// Ordering for the min-heap: earliest time first, FIFO within a timestamp.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Compaction is skipped below this heap size: scanning a few dozen
/// entries is cheaper than bookkeeping about them.
const COMPACT_MIN_HEAP: usize = 64;

/// A deterministic pending-event set.
///
/// Events are `(time, payload)` pairs; simultaneous events pop in the order
/// they were scheduled. Any event can be cancelled by its [`EventId`] until
/// it has been popped.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Liveness bitset indexed by sequence number (= the id's value).
    /// The single source of truth for liveness: a heap entry whose bit is
    /// clear is dead. A bitset (not a tree set) so that scheduling and
    /// cancellation never allocate in steady state: [`reset`](Self::reset)
    /// zeroes the words in place and the backing storage is reused across
    /// runs.
    live: Vec<u64>,
    /// Number of set bits in `live`.
    live_count: usize,
    now: SimTime,
    next_seq: u64,
    scheduled_total: u64,
    /// High-water mark of live pending events since the last reset.
    depth_hwm: usize,
    /// Debug-mode pop-monotonicity auditor (zero-sized in release).
    audit: crate::audit::PopAudit,
    /// Structured event recorder (ZST no-op unless the `trace` feature
    /// of `pckpt-simobs` is enabled).
    rec: Recorder,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at t = 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            live: Vec::new(),
            live_count: 0,
            now: SimTime::ZERO,
            next_seq: 0,
            scheduled_total: 0,
            depth_hwm: 0,
            audit: crate::audit::PopAudit::default(),
            rec: Recorder::disabled(),
        }
    }

    /// Clears the queue back to its t = 0 state while retaining all
    /// allocated storage (heap slots and liveness words), so a recycled
    /// queue schedules without heap allocation until it outgrows the
    /// largest run it has hosted.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.live.fill(0);
        self.live_count = 0;
        self.now = SimTime::ZERO;
        self.next_seq = 0;
        self.scheduled_total = 0;
        self.depth_hwm = 0;
        self.audit.reset();
        // The recorder is deliberately kept: whoever installed it owns
        // its lifecycle (see `Recorder::clear`/`take`).
    }

    #[inline]
    fn is_live(&self, id: EventId) -> bool {
        let idx = id.0 as usize;
        self.live
            .get(idx >> 6)
            .is_some_and(|w| w & (1 << (idx & 63)) != 0)
    }

    /// Clears the liveness bit for `id`; `true` if it was set.
    #[inline]
    fn clear_live(&mut self, id: EventId) -> bool {
        let idx = id.0 as usize;
        if let Some(w) = self.live.get_mut(idx >> 6) {
            let bit = 1u64 << (idx & 63);
            if *w & bit != 0 {
                *w &= !bit;
                self.live_count -= 1;
                return true;
            }
        }
        false
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// Panics if `at` is in the past — an event scheduled behind the clock
    /// is always a model bug, and silently reordering it would corrupt
    /// causality.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({at} < now {})",
            self.now
        );
        let id = EventId(self.next_seq);
        self.heap.push(Reverse(Entry {
            time: at,
            seq: self.next_seq,
            id,
            payload,
        }));
        let word = (self.next_seq as usize) >> 6;
        if word >= self.live.len() {
            self.live.resize(word + 1, 0);
        }
        self.live[word] |= 1 << (self.next_seq & 63);
        self.live_count += 1;
        self.next_seq += 1;
        self.scheduled_total += 1;
        if self.live_count > self.depth_hwm {
            self.depth_hwm = self.live_count;
        }
        self.rec.on_sched(at.as_nanos(), id.0);
        id
    }

    /// Schedules `payload` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        let at = self.now + delay;
        self.schedule_at(at, payload)
    }

    /// Cancels a scheduled event. Returns `true` if the event was still
    /// pending (and is now guaranteed never to fire), `false` if it had
    /// already fired or been cancelled. O(1).
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Already-popped and never-issued ids have a clear (or absent)
        // liveness bit, so they can't re-tombstone anything.
        let was_pending = self.clear_live(id);
        if was_pending {
            self.rec.on_cancel(self.now.as_nanos(), id.0);
            self.maybe_compact();
        }
        was_pending
    }

    /// Drops dead heap entries wholesale once they outnumber live ones.
    fn maybe_compact(&mut self) {
        if self.heap.len() > COMPACT_MIN_HEAP && self.heap.len() >= 2 * self.live_count {
            let live = &self.live;
            self.heap.retain(|Reverse(e)| {
                let idx = e.id.0 as usize;
                live.get(idx >> 6).is_some_and(|w| w & (1 << (idx & 63)) != 0)
            });
            crate::audit::check_compaction(self.heap.len(), self.live_count);
        }
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if !self.clear_live(entry.id) {
                continue; // dead entry: cancelled earlier
            }
            debug_assert!(entry.time >= self.now, "heap returned a past event");
            self.audit.observe_pop(entry.time, entry.seq);
            self.now = entry.time;
            self.rec.on_pop(entry.time.as_nanos(), entry.id.0);
            return Some((entry.time, entry.id, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop leading dead entries so the peek is accurate.
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.is_live(entry.id) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Total number of events ever scheduled (monotone; for metrics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Heap slots currently held, live or dead (for memory diagnostics
    /// and the compaction regression test).
    pub fn heap_slots(&self) -> usize {
        self.heap.len()
    }

    /// High-water mark of live pending events since the last reset.
    pub fn depth_hwm(&self) -> usize {
        self.depth_hwm
    }

    /// Installs a structured-event recorder: every schedule, cancel and
    /// pop from here on is reported to it. Without the `trace` feature
    /// the recorder is zero-sized and the hook calls compile away.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// The installed recorder (shared handle; disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(secs(3.0), "c");
        q.schedule_at(secs(1.0), "a");
        q.schedule_at(secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), secs(3.0));
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(secs(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_secs(2.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop().unwrap();
        assert_eq!(q.now(), secs(2.0));
        q.schedule_in(SimDuration::from_secs(1.0), ());
        let (t, _, _) = q.pop().unwrap();
        assert_eq!(t, secs(3.0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(secs(2.0), ());
        q.pop().unwrap();
        q.schedule_at(secs(1.0), ());
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(secs(1.0), "a");
        q.schedule_at(secs(2.0), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        let (_, _, p) = q.pop().unwrap();
        assert_eq!(p, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_is_idempotent_and_rejects_fired_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(secs(1.0), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "second cancel must report failure");
        let b = q.schedule_at(secs(2.0), ());
        q.pop().unwrap();
        assert!(!q.cancel(b), "cannot cancel an event that already fired");
    }

    #[test]
    fn cancel_unknown_id_is_safe() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(12345)));
    }

    #[test]
    fn peek_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(secs(1.0), "a");
        q.schedule_at(secs(2.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(secs(2.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..5).map(|i| q.schedule_at(secs(i as f64 + 1.0), i)).collect();
        assert_eq!(q.len(), 5);
        q.cancel(ids[1]);
        q.cancel(ids[3]);
        assert_eq!(q.len(), 3);
        let survivors: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(survivors, vec![0, 2, 4]);
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 5);
    }

    #[test]
    fn cancel_after_pop_does_not_tombstone_future_events() {
        // Regression: the old implementation inserted a tombstone for any
        // id that looked pending; a cancel racing a pop must not poison
        // the set or miscount len().
        let mut q = EventQueue::new();
        let a = q.schedule_at(secs(1.0), "a");
        q.schedule_at(secs(2.0), "b");
        let (_, popped, _) = q.pop().unwrap();
        assert_eq!(popped, a);
        assert!(!q.cancel(a), "popped event is not cancellable");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().2, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn reset_recycles_storage_and_restarts_clock() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(secs(1.0), 1);
        q.schedule_at(secs(2.0), 2);
        q.cancel(a);
        q.pop().unwrap();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.scheduled_total(), 0);
        assert_eq!(q.heap_slots(), 0);
        // A recycled queue behaves exactly like a fresh one: ids restart
        // from zero, the clock from t = 0, FIFO ties still hold.
        let b = q.schedule_at(secs(5.0), 7);
        q.schedule_at(secs(5.0), 8);
        assert_eq!(q.len(), 2);
        let (t, id, p) = q.pop().unwrap();
        assert_eq!((t, id, p), (secs(5.0), b, 7));
        assert_eq!(q.pop().unwrap().2, 8);
        assert!(q.pop().is_none());
    }

    #[test]
    fn reset_after_heavy_churn_leaves_no_ghosts() {
        let mut q = EventQueue::new();
        for round in 0..50 {
            let ids: Vec<_> =
                (0..40).map(|i| q.schedule_at(secs((round * 40 + i) as f64 + 1.0), i)).collect();
            for id in ids.iter().skip(1) {
                q.cancel(*id);
            }
        }
        q.reset();
        // Nothing from before the reset may surface.
        assert_eq!(q.peek_time(), None);
        q.schedule_at(secs(1.0), 99);
        assert_eq!(q.pop().unwrap().2, 99);
        assert!(q.pop().is_none());
    }

    #[test]
    fn depth_hwm_tracks_peak_and_resets() {
        let mut q = EventQueue::new();
        assert_eq!(q.depth_hwm(), 0);
        let ids: Vec<_> = (0..4).map(|i| q.schedule_at(secs(i as f64 + 1.0), i)).collect();
        assert_eq!(q.depth_hwm(), 4);
        q.cancel(ids[0]);
        q.pop().unwrap();
        // Draining does not lower the mark...
        assert_eq!(q.depth_hwm(), 4);
        // ...and re-growing past it raises it.
        for i in 0..5 {
            q.schedule_at(secs(10.0 + i as f64), 100 + i);
        }
        assert_eq!(q.depth_hwm(), 7);
        q.reset();
        assert_eq!(q.depth_hwm(), 0);
    }

    #[test]
    fn heavy_cancellation_keeps_heap_bounded() {
        // Regression for the tombstone leak: schedule/cancel churn with a
        // small live set must not grow the heap with dead entries.
        let mut q = EventQueue::new();
        let keep: Vec<_> = (0..10).map(|i| q.schedule_at(secs(1e6 + i as f64), i)).collect();
        for round in 0..1_000 {
            let ids: Vec<_> = (0..100)
                .map(|i| q.schedule_at(secs(10.0 + (round * 100 + i) as f64), i))
                .collect();
            for id in ids {
                assert!(q.cancel(id));
            }
            assert!(
                q.heap_slots() <= 2 * q.len() + COMPACT_MIN_HEAP + 100,
                "heap grew to {} slots with {} live events",
                q.heap_slots(),
                q.len()
            );
        }
        assert_eq!(q.len(), keep.len());
        // The survivors still pop in order.
        let popped: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(popped, (0..10).collect::<Vec<_>>());
    }
}

//! `pckpt-desim` — a discrete-event simulation engine.
//!
//! The paper evaluates its C/R models with SimPy, a process-based
//! discrete-event simulation framework. This crate is the Rust substrate
//! playing that role. It provides two complementary programming models:
//!
//! 1. **Event-driven** ([`engine`], [`queue`]): a model implements
//!    [`engine::Model`] and handles typed events popped from a cancellable
//!    priority queue. This is the style the p-ckpt C/R simulator uses —
//!    coordination protocols with aborts (live migration cancelled by a
//!    higher-priority prediction) map naturally onto explicit state
//!    machines plus event cancellation.
//! 2. **Process-based** ([`process`], [`resource`]): SimPy-flavored
//!    cooperative processes that `sleep`, wait on [`process::SignalId`]s,
//!    acquire prioritized [`resource::Resource`] slots, and can be
//!    interrupted. Processes are poll-style state machines (stable Rust has
//!    no coroutines), resumed with a [`process::Wake`] describing why they
//!    ran.
//!
//! On top of both sits [`flow`], a fluid-flow model of shared links:
//! concurrent transfers progress simultaneously at a fair share of a
//! (possibly load-dependent) capacity, which is how the PFS and burst
//! buffer bandwidth contention of the paper's I/O model is simulated
//! without simulating individual I/O requests.
//!
//! Determinism: ties in event time are broken by schedule order (a
//! monotone sequence number), so a simulation is a pure function of its
//! inputs and RNG seed.

#![warn(missing_docs)]

pub mod audit;
pub mod engine;
pub mod flow;
pub mod monitor;
pub mod process;
pub mod queue;
pub mod resource;
pub mod smallmap;
pub mod store;
pub mod time;

pub use engine::{run_with_queue, Ctx, Model, Simulation};
pub use flow::{FlowLink, TransferId};
pub use flow::reference::ReferenceFlowLink;
pub use monitor::{Counter, TimeSeries, TimeWeighted};
pub use queue::{EventId, EventQueue};
pub use smallmap::SmallMap;
pub use time::{SimDuration, SimTime};

/// Re-export of the structured observability layer threaded through the
/// engine, queue, flow link, and process world (see `pckpt-simobs`).
pub use pckpt_simobs as obs;

//! The event-driven simulation loop.
//!
//! A model implements [`Model`] over its own event type; [`Simulation`]
//! owns the event queue and drives `handle` until the queue drains, a time
//! horizon is reached, or the model calls [`Ctx::stop`]. The model receives
//! a [`Ctx`] giving it scheduling, cancellation, and clock access — but not
//! access to the loop itself, so models cannot corrupt the causal order.
//!
//! ```
//! use pckpt_desim::{Ctx, Model, SimDuration, Simulation};
//!
//! /// Emits one event per second and counts them.
//! struct Heartbeat {
//!     beats: u32,
//! }
//!
//! impl Model for Heartbeat {
//!     type Event = ();
//!     fn init(&mut self, ctx: &mut Ctx<'_, ()>) {
//!         ctx.schedule_in(SimDuration::from_secs(1.0), ());
//!     }
//!     fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _ev: ()) {
//!         self.beats += 1;
//!         if self.beats < 5 {
//!             ctx.schedule_in(SimDuration::from_secs(1.0), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Heartbeat { beats: 0 });
//! sim.run();
//! assert_eq!(sim.model().beats, 5);
//! assert_eq!(sim.now().as_secs(), 5.0);
//! ```

use crate::queue::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// Why the simulation loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No live events remained.
    Drained,
    /// The configured horizon was reached before the queue drained.
    Horizon,
    /// The model requested a stop via [`Ctx::stop`].
    Requested,
    /// The configured event budget was exhausted (runaway protection).
    EventBudget,
}

/// Scheduling context handed to [`Model::handle`].
pub struct Ctx<'a, E> {
    queue: &'a mut EventQueue<E>,
    stop: &'a mut bool,
}

impl<'a, E> Ctx<'a, E> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedules an event after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.schedule_in(delay, event)
    }

    /// Schedules an event at absolute time `at` (must not be in the past).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        self.queue.schedule_at(at, event)
    }

    /// Schedules an event to fire immediately (at the current time, after
    /// all events already scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.queue.schedule_at(self.queue.now(), event)
    }

    /// Cancels a pending event; `true` if it was still live.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Requests the loop to stop after the current event is handled.
    pub fn stop(&mut self) {
        *self.stop = true;
    }

    /// Number of live pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// A discrete-event model: typed events plus a handler.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Called once before the first event, to seed the queue.
    fn init(&mut self, ctx: &mut Ctx<'_, Self::Event>);

    /// Handles one event at its scheduled time.
    fn handle(&mut self, ctx: &mut Ctx<'_, Self::Event>, event: Self::Event);
}

/// Owns the queue and runs a [`Model`] to completion.
pub struct Simulation<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    events_handled: u64,
    event_budget: u64,
}

impl<M: Model> Simulation<M> {
    /// Creates a simulation around `model`. `init` has not run yet; it runs
    /// on the first call to a `run*` method.
    pub fn new(model: M) -> Self {
        Self {
            model,
            queue: EventQueue::new(),
            events_handled: 0,
            event_budget: u64::MAX,
        }
    }

    /// Caps the total number of handled events (default: unlimited). A
    /// safety net for property tests over adversarial inputs.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Runs until the queue drains or the model stops. Returns why.
    pub fn run(&mut self) -> StopReason {
        self.run_until(SimTime::MAX)
    }

    /// Runs until `horizon` (inclusive), the queue drains, or the model
    /// stops.
    pub fn run_until(&mut self, horizon: SimTime) -> StopReason {
        let mut stop = false;
        if self.events_handled == 0 {
            let mut ctx = Ctx {
                queue: &mut self.queue,
                stop: &mut stop,
            };
            self.model.init(&mut ctx);
            if stop {
                return StopReason::Requested;
            }
        }
        loop {
            if self.events_handled >= self.event_budget {
                return StopReason::EventBudget;
            }
            match self.queue.peek_time() {
                None => return StopReason::Drained,
                Some(t) if t > horizon => return StopReason::Horizon,
                Some(_) => {}
            }
            // peek_time() above returned Some. simlint: allow(no-unwrap-in-lib)
            let (_, _, event) = self.queue.pop().expect("peeked event exists");
            self.events_handled += 1;
            let mut ctx = Ctx {
                queue: &mut self.queue,
                stop: &mut stop,
            };
            self.model.handle(&mut ctx, event);
            if stop {
                return StopReason::Requested;
            }
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Number of events handled so far.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Installs a structured-event recorder on the owned queue.
    pub fn set_recorder(&mut self, rec: pckpt_simobs::Recorder) {
        self.queue.set_recorder(rec);
    }

    /// Read-only access to the owned queue (observability: depth
    /// high-water mark, scheduled totals).
    pub fn queue(&self) -> &EventQueue<M::Event> {
        &self.queue
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (e.g. to read out metrics between
    /// phased `run_until` calls).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulation, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }
}

/// Runs `model` to completion against a caller-owned queue: the arena
/// path for campaign workers that recycle one [`EventQueue`] across many
/// runs via [`EventQueue::reset`] instead of constructing a
/// [`Simulation`] (and its queue) per run.
///
/// The queue must be empty and at t = 0 — i.e. freshly constructed or
/// just reset. `init` runs first, then events are handled until the
/// queue drains, the model stops, or `event_budget` events have been
/// handled. Returns the stop reason and the number of events handled.
// simlint: hot
pub fn run_with_queue<M: Model>(
    model: &mut M,
    queue: &mut EventQueue<M::Event>,
    event_budget: u64,
) -> (StopReason, u64) {
    assert!(
        queue.is_empty() && queue.now() == SimTime::ZERO,
        "run_with_queue needs an empty queue at t = 0 (call reset() between runs)"
    );
    let mut stop = false;
    let mut ctx = Ctx {
        queue,
        stop: &mut stop,
    };
    model.init(&mut ctx);
    if stop {
        return (StopReason::Requested, 0);
    }
    let mut handled = 0u64;
    loop {
        if handled >= event_budget {
            return (StopReason::EventBudget, handled);
        }
        if queue.peek_time().is_none() {
            return (StopReason::Drained, handled);
        }
        // peek_time() above returned Some. simlint: allow(no-unwrap-in-lib)
        let (_, _, event) = queue.pop().expect("peeked event exists");
        handled += 1;
        let mut ctx = Ctx {
            queue,
            stop: &mut stop,
        };
        model.handle(&mut ctx, event);
        if stop {
            return (StopReason::Requested, handled);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that re-schedules itself `n` times at a fixed period.
    struct Ticker {
        period: SimDuration,
        remaining: u32,
        fire_times: Vec<SimTime>,
    }

    impl Model for Ticker {
        type Event = ();

        fn init(&mut self, ctx: &mut Ctx<'_, ()>) {
            if self.remaining > 0 {
                ctx.schedule_in(self.period, ());
            }
        }

        fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _: ()) {
            self.fire_times.push(ctx.now());
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.schedule_in(self.period, ());
            }
        }
    }

    #[test]
    fn ticker_fires_periodically_and_drains() {
        let mut sim = Simulation::new(Ticker {
            period: SimDuration::from_secs(2.0),
            remaining: 3,
            fire_times: Vec::new(),
        });
        assert_eq!(sim.run(), StopReason::Drained);
        assert_eq!(
            sim.model().fire_times,
            vec![
                SimTime::from_secs(2.0),
                SimTime::from_secs(4.0),
                SimTime::from_secs(6.0)
            ]
        );
        assert_eq!(sim.events_handled(), 3);
    }

    #[test]
    fn horizon_stops_before_future_events() {
        let mut sim = Simulation::new(Ticker {
            period: SimDuration::from_secs(10.0),
            remaining: 100,
            fire_times: Vec::new(),
        });
        assert_eq!(sim.run_until(SimTime::from_secs(35.0)), StopReason::Horizon);
        assert_eq!(sim.model().fire_times.len(), 3);
        // Resuming continues from where we left off.
        assert_eq!(sim.run_until(SimTime::from_secs(55.0)), StopReason::Horizon);
        assert_eq!(sim.model().fire_times.len(), 5);
    }

    struct Stopper;
    impl Model for Stopper {
        type Event = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            for i in 0..10 {
                ctx.schedule_in(SimDuration::from_secs(i as f64 + 1.0), i);
            }
        }
        fn handle(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
            if ev == 2 {
                ctx.stop();
            }
        }
    }

    #[test]
    fn model_can_stop_the_loop() {
        let mut sim = Simulation::new(Stopper);
        assert_eq!(sim.run(), StopReason::Requested);
        assert_eq!(sim.events_handled(), 3);
        assert_eq!(sim.now(), SimTime::from_secs(3.0));
    }

    #[test]
    fn event_budget_guards_runaway_models() {
        let mut sim = Simulation::new(Ticker {
            period: SimDuration::from_secs(1.0),
            remaining: u32::MAX,
            fire_times: Vec::new(),
        })
        .with_event_budget(50);
        assert_eq!(sim.run(), StopReason::EventBudget);
        assert_eq!(sim.events_handled(), 50);
    }

    struct CancelModel {
        victim: Option<crate::queue::EventId>,
        handled: Vec<&'static str>,
    }
    impl Model for CancelModel {
        type Event = &'static str;
        fn init(&mut self, ctx: &mut Ctx<'_, &'static str>) {
            ctx.schedule_in(SimDuration::from_secs(1.0), "canceller");
            self.victim = Some(ctx.schedule_in(SimDuration::from_secs(2.0), "victim"));
            ctx.schedule_in(SimDuration::from_secs(3.0), "survivor");
        }
        fn handle(&mut self, ctx: &mut Ctx<'_, &'static str>, ev: &'static str) {
            self.handled.push(ev);
            if ev == "canceller" {
                assert!(ctx.cancel(self.victim.take().unwrap()));
            }
        }
    }

    #[test]
    fn events_cancelled_from_handlers_never_fire() {
        let mut sim = Simulation::new(CancelModel {
            victim: None,
            handled: Vec::new(),
        });
        sim.run();
        assert_eq!(sim.model().handled, vec!["canceller", "survivor"]);
    }

    struct NowScheduler {
        order: Vec<u32>,
    }
    impl Model for NowScheduler {
        type Event = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.schedule_in(SimDuration::from_secs(1.0), 0);
        }
        fn handle(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
            self.order.push(ev);
            if ev == 0 {
                // Same-timestamp events run after already-queued peers, in
                // scheduling order.
                ctx.schedule_now(1);
                ctx.schedule_now(2);
            }
        }
    }

    #[test]
    fn run_with_queue_matches_owned_simulation_across_resets() {
        let mut queue = EventQueue::new();
        for _ in 0..3 {
            queue.reset();
            let mut model = Ticker {
                period: SimDuration::from_secs(2.0),
                remaining: 3,
                fire_times: Vec::new(),
            };
            let (reason, handled) = run_with_queue(&mut model, &mut queue, u64::MAX);
            assert_eq!(reason, StopReason::Drained);
            assert_eq!(handled, 3);
            assert_eq!(
                model.fire_times,
                vec![
                    SimTime::from_secs(2.0),
                    SimTime::from_secs(4.0),
                    SimTime::from_secs(6.0)
                ]
            );
        }
    }

    #[test]
    fn run_with_queue_honors_event_budget() {
        let mut queue = EventQueue::new();
        let mut model = Ticker {
            period: SimDuration::from_secs(1.0),
            remaining: u32::MAX,
            fire_times: Vec::new(),
        };
        let (reason, handled) = run_with_queue(&mut model, &mut queue, 50);
        assert_eq!(reason, StopReason::EventBudget);
        assert_eq!(handled, 50);
    }

    #[test]
    fn schedule_now_preserves_fifo_at_same_instant() {
        let mut sim = Simulation::new(NowScheduler { order: Vec::new() });
        sim.run();
        assert_eq!(sim.model().order, vec![0, 1, 2]);
        assert_eq!(sim.now(), SimTime::from_secs(1.0));
    }
}

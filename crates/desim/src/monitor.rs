//! Measurement instruments for simulations.
//!
//! The C/R metrics of the paper (checkpoint, recomputation and recovery
//! overheads; FT ratios) are accumulated with these small instruments so
//! that the accounting logic is testable in isolation from the models.

use crate::time::{SimDuration, SimTime};

/// A monotone named counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Time-weighted statistics of a piecewise-constant signal (e.g. number of
/// nodes draining to the PFS, length of the vulnerable-node queue).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64,
    observed: SimDuration,
    max: f64,
}

impl TimeWeighted {
    /// Creates the instrument with an initial value at t = 0.
    pub fn new(initial: f64) -> Self {
        Self {
            value: initial,
            last_change: SimTime::ZERO,
            weighted_sum: 0.0,
            observed: SimDuration::ZERO,
            max: initial,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.since(self.last_change);
        self.weighted_sum += self.value * dt.as_secs();
        self.observed += dt;
        self.last_change = now;
        self.value = value;
        self.max = self.max.max(value);
    }

    /// Adds `delta` to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// The signal's current value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Maximum value ever observed.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-weighted mean over `[0, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let dt = now.since(self.last_change);
        let total = self.observed + dt;
        if total.is_zero() {
            return self.value;
        }
        (self.weighted_sum + self.value * dt.as_secs()) / total.as_secs()
    }
}

/// An append-only series of `(time, value)` samples.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Panics if `now` precedes the last sample.
    pub fn record(&mut self, now: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(now >= last, "TimeSeries must be recorded in time order");
        }
        self.points.push((now, value));
    }

    /// All recorded samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Values only (times discarded).
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn time_weighted_mean_of_step_signal() {
        let mut w = TimeWeighted::new(0.0);
        w.set(t(10.0), 4.0); // 0 for 10 s
        w.set(t(20.0), 2.0); // 4 for 10 s
        // mean over [0, 30]: (0·10 + 4·10 + 2·10) / 30 = 2
        assert!((w.mean(t(30.0)) - 2.0).abs() < 1e-12);
        assert_eq!(w.current(), 2.0);
        assert_eq!(w.max(), 4.0);
    }

    #[test]
    fn time_weighted_add_tracks_deltas() {
        let mut w = TimeWeighted::new(1.0);
        w.add(t(5.0), 2.0);
        assert_eq!(w.current(), 3.0);
        w.add(t(10.0), -3.0);
        assert_eq!(w.current(), 0.0);
        // mean over [0,10]: (1·5 + 3·5)/10 = 2
        assert!((w.mean(t(10.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_mean_at_zero_observation() {
        let w = TimeWeighted::new(7.0);
        assert_eq!(w.mean(SimTime::ZERO), 7.0);
    }

    #[test]
    fn timeseries_records_in_order() {
        let mut s = TimeSeries::new();
        s.record(t(1.0), 10.0);
        s.record(t(1.0), 11.0); // same instant is fine
        s.record(t(2.0), 12.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.values(), vec![10.0, 11.0, 12.0]);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn timeseries_rejects_out_of_order() {
        let mut s = TimeSeries::new();
        s.record(t(2.0), 1.0);
        s.record(t(1.0), 2.0);
    }
}

//! SimPy-style cooperative processes.
//!
//! The paper's simulator is written against SimPy's process abstraction:
//! each application is "a SimPy process performing computation and periodic
//! checkpointing iteratively", interrupted by injected failures. This
//! module recreates that abstraction on stable Rust.
//!
//! A process is a poll-style state machine implementing [`Process`]: the
//! world resumes it with a [`Wake`] describing why it ran, and it returns a
//! [`Step`] describing what to block on next. Between those two points the
//! process may mutate the world's shared state and issue commands (emit a
//! signal, interrupt a peer, release a resource, spawn a child) through
//! [`ProcCtx`]. Commands are applied by the world *after* the resume call
//! returns, which sidesteps the re-entrancy that makes naive
//! actor-calls-actor designs unsound.
//!
//! Supported blocking steps mirror SimPy: `timeout` ([`Step::Sleep`]),
//! `event` ([`Step::WaitSignal`], with an optional timeout), resource
//! `request` ([`Step::Acquire`], prioritized), passive wait ([`Step::Hold`])
//! and termination ([`Step::Done`]). Any blocked process can be
//! [`interrupted`](ProcCtx::interrupt), exactly like SimPy's
//! `process.interrupt()` — that is how failure injection reaches the
//! application processes.

use std::collections::BTreeMap;

use pckpt_simobs::{kind, Recorder};

use crate::engine::{Ctx, Model};
use crate::queue::EventId;
use crate::resource::{Acquire, Resource};
use crate::time::{SimDuration, SimTime};

/// Identifies a process within a [`ProcessWorld`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub usize);

/// Identifies a broadcast signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(pub usize);

/// Identifies a counting resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(pub usize);

/// Why a process was resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// First resumption after spawn.
    Started,
    /// A [`Step::Sleep`] elapsed.
    TimerFired,
    /// A signal the process waited on was emitted.
    Signal(SignalId),
    /// The timeout of a [`Step::WaitSignalTimeout`] elapsed first.
    TimedOut,
    /// A requested resource slot was granted.
    Acquired(ResourceId),
    /// Another process interrupted this one with a reason code.
    Interrupted(u64),
}

/// What a process blocks on next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Resume after a delay ([`Wake::TimerFired`]).
    Sleep(SimDuration),
    /// Resume when the signal fires ([`Wake::Signal`]).
    WaitSignal(SignalId),
    /// Resume on signal or after the timeout, whichever is first.
    WaitSignalTimeout(SignalId, SimDuration),
    /// Resume when a slot of the resource is granted; lower priority value
    /// is served first ([`Wake::Acquired`]).
    Acquire(ResourceId, i64),
    /// Block until interrupted.
    Hold,
    /// Terminate. Held resource slots are released automatically.
    Done,
}

/// A cooperative process over shared state `S`.
pub trait Process<S> {
    /// Runs the process until its next blocking point.
    fn resume(&mut self, shared: &mut S, ctx: &mut ProcCtx<S>, wake: Wake) -> Step;
}

enum Command<S> {
    Emit(SignalId),
    Interrupt(Pid, u64),
    Release(ResourceId, Pid),
    Spawn(Pid, Box<dyn Process<S>>),
}

/// Command buffer and clock access handed to a resuming process.
pub struct ProcCtx<S> {
    now: SimTime,
    me: Pid,
    commands: Vec<Command<S>>,
    next_pid: usize,
}

impl<S> ProcCtx<S> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the resuming process.
    pub fn me(&self) -> Pid {
        self.me
    }

    /// Emits a signal, waking every process currently waiting on it.
    pub fn emit(&mut self, signal: SignalId) {
        self.commands.push(Command::Emit(signal));
    }

    /// Interrupts another process: whatever it is blocked on is cancelled
    /// and it resumes with [`Wake::Interrupted`] carrying `reason`.
    /// Interrupting a finished or never-spawned pid is a no-op.
    pub fn interrupt(&mut self, target: Pid, reason: u64) {
        self.commands.push(Command::Interrupt(target, reason));
    }

    /// Releases one slot of `resource` held by this process.
    pub fn release(&mut self, resource: ResourceId) {
        let me = self.me;
        self.commands.push(Command::Release(resource, me));
    }

    /// Spawns a child process; it resumes with [`Wake::Started`] at the
    /// current time, after the caller blocks.
    pub fn spawn(&mut self, process: Box<dyn Process<S>>) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.commands.push(Command::Spawn(pid, process));
        pid
    }
}

/// Compact wake encoding for [`kind::PROC_WAKE`] trace records: the low
/// three decimal digits carry the payload (signal/resource index, or the
/// interrupt reason truncated), the next digit the variant.
fn wake_code(wake: Wake) -> u64 {
    match wake {
        Wake::Started => 0,
        Wake::TimerFired => 1_000,
        Wake::Signal(s) => 2_000 + (s.0 as u64) % 1_000,
        Wake::TimedOut => 3_000,
        Wake::Acquired(r) => 4_000 + (r.0 as u64) % 1_000,
        Wake::Interrupted(code) => 5_000 + code % 1_000,
    }
}

/// What a live process is currently blocked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    /// Transient marker while the process is being resumed.
    Running,
    Sleeping(EventId),
    WaitingSignal(SignalId, Option<EventId>),
    WaitingResource(ResourceId),
    Holding,
}

struct Entry<S> {
    process: Box<dyn Process<S>>,
    blocked: Blocked,
    held: Vec<ResourceId>,
}

/// Engine event type used by [`ProcessWorld`].
#[derive(Debug, Clone, Copy)]
pub struct Resume(Pid, Wake);

/// A [`Model`] hosting cooperative processes over shared state `S`.
pub struct ProcessWorld<S> {
    shared: S,
    procs: BTreeMap<Pid, Entry<S>>,
    next_pid: usize,
    signals: Vec<Vec<Pid>>,
    resources: Vec<Resource<Pid>>,
    start_queue: Vec<Pid>,
    finished: u64,
    /// Structured trace sink; zero-sized no-op unless the `trace`
    /// feature is enabled and a live recorder is installed.
    rec: Recorder,
}

impl<S> ProcessWorld<S> {
    /// Creates a world around shared state.
    pub fn new(shared: S) -> Self {
        Self {
            shared,
            procs: BTreeMap::new(),
            next_pid: 0,
            signals: Vec::new(),
            resources: Vec::new(),
            start_queue: Vec::new(),
            finished: 0,
            rec: Recorder::disabled(),
        }
    }

    /// Installs a trace recorder; every process resumption is emitted as a
    /// [`kind::PROC_WAKE`] record carrying the pid and a wake code. A
    /// no-op unless the `trace` feature is active.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// Clears all processes, wait lists, and resource holds back to an
    /// empty just-built world while retaining registered signals and
    /// resources (and their allocations), for reuse across runs. Shared
    /// state is kept as-is; reset it through
    /// [`shared_mut`](Self::shared_mut) before respawning processes.
    pub fn reset(&mut self) {
        self.procs.clear();
        self.next_pid = 0;
        for waitlist in &mut self.signals {
            waitlist.clear();
        }
        for resource in &mut self.resources {
            resource.reset();
        }
        self.start_queue.clear();
        self.finished = 0;
    }

    /// Registers a broadcast signal.
    pub fn add_signal(&mut self) -> SignalId {
        self.signals.push(Vec::new());
        SignalId(self.signals.len() - 1)
    }

    /// Registers a counting resource with `capacity` slots.
    pub fn add_resource(&mut self, capacity: usize) -> ResourceId {
        self.resources.push(Resource::new(capacity));
        ResourceId(self.resources.len() - 1)
    }

    /// Registers a process before the simulation starts. It will resume
    /// with [`Wake::Started`] at t = 0.
    pub fn spawn(&mut self, process: Box<dyn Process<S>>) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(
            pid,
            Entry {
                process,
                blocked: Blocked::Running,
                held: Vec::new(),
            },
        );
        self.start_queue.push(pid);
        pid
    }

    /// Shared state, immutable.
    pub fn shared(&self) -> &S {
        &self.shared
    }

    /// Shared state, mutable (between runs).
    pub fn shared_mut(&mut self) -> &mut S {
        &mut self.shared
    }

    /// Number of processes still alive.
    pub fn alive(&self) -> usize {
        self.procs.len()
    }

    /// Number of processes that have completed.
    pub fn finished(&self) -> u64 {
        self.finished
    }

    /// True if `pid` is still alive.
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.procs.contains_key(&pid)
    }

    /// Interrupts a process from outside the simulation loop is not
    /// supported; interruption is a process-level command. This helper
    /// exists for models embedding a world that need to inject an
    /// interrupt at event-handling time.
    pub fn inject_interrupt(&mut self, ctx: &mut Ctx<'_, Resume>, target: Pid, reason: u64) {
        self.unblock(ctx, target);
        if self.procs.contains_key(&target) {
            ctx.schedule_now(Resume(target, Wake::Interrupted(reason)));
        }
    }

    /// Detaches `pid` from whatever it is blocked on (cancel timers, leave
    /// wait lists / resource queues). The process stays alive, marked
    /// Running; the caller must schedule its resumption or drop it.
    fn unblock(&mut self, ctx: &mut Ctx<'_, Resume>, pid: Pid) {
        let Some(entry) = self.procs.get_mut(&pid) else {
            return;
        };
        match entry.blocked {
            Blocked::Running | Blocked::Holding => {}
            Blocked::Sleeping(ev) => {
                ctx.cancel(ev);
            }
            Blocked::WaitingSignal(sig, timeout) => {
                if let Some(ev) = timeout {
                    ctx.cancel(ev);
                }
                self.signals[sig.0].retain(|&p| p != pid);
            }
            Blocked::WaitingResource(rid) => {
                self.resources[rid.0].cancel_wait(|&p| p == pid);
            }
        }
        if let Some(entry) = self.procs.get_mut(&pid) {
            entry.blocked = Blocked::Running;
        }
    }

    /// Resumes `pid` with `wake`, then keeps stepping it while its steps
    /// complete immediately (e.g. an uncontended `Acquire`).
    fn drive(&mut self, ctx: &mut Ctx<'_, Resume>, pid: Pid, wake: Wake) {
        let mut wake = wake;
        loop {
            let Some(entry) = self.procs.get_mut(&pid) else {
                return; // interrupted/finished concurrently
            };
            entry.blocked = Blocked::Running;
            self.rec.emit(
                ctx.now().as_nanos(),
                kind::PROC_WAKE,
                pid.0 as u64,
                wake_code(wake),
            );
            let mut pctx = ProcCtx {
                now: ctx.now(),
                me: pid,
                // Capacity-0 vec: only process-transition commands grow
                // it, and the campaign steady state (CrSim, pinned by
                // the counting-allocator test) never runs ProcessWorld.
                commands: Vec::new(), // simlint: allow(no-alloc-in-hot-loop)
                next_pid: self.next_pid,
            };
            let step = entry.process.resume(&mut self.shared, &mut pctx, wake);
            self.next_pid = pctx.next_pid;
            let commands = pctx.commands;
            self.apply_commands(ctx, commands);
            // The process may have interrupted *itself* indirectly? No —
            // commands affect others; `pid`'s own state is decided here.
            let Some(entry) = self.procs.get_mut(&pid) else {
                return;
            };
            match step {
                Step::Sleep(d) => {
                    let ev = ctx.schedule_in(d, Resume(pid, Wake::TimerFired));
                    entry.blocked = Blocked::Sleeping(ev);
                    return;
                }
                Step::WaitSignal(sig) => {
                    assert!(sig.0 < self.signals.len(), "unknown signal {sig:?}");
                    entry.blocked = Blocked::WaitingSignal(sig, None);
                    self.signals[sig.0].push(pid);
                    return;
                }
                Step::WaitSignalTimeout(sig, d) => {
                    assert!(sig.0 < self.signals.len(), "unknown signal {sig:?}");
                    let ev = ctx.schedule_in(d, Resume(pid, Wake::TimedOut));
                    entry.blocked = Blocked::WaitingSignal(sig, Some(ev));
                    self.signals[sig.0].push(pid);
                    return;
                }
                Step::Acquire(rid, priority) => {
                    assert!(rid.0 < self.resources.len(), "unknown resource {rid:?}");
                    match self.resources[rid.0].acquire(pid, priority) {
                        Acquire::Granted => {
                            entry.held.push(rid);
                            wake = Wake::Acquired(rid);
                            continue; // run on without an event round-trip
                        }
                        Acquire::Queued => {
                            entry.blocked = Blocked::WaitingResource(rid);
                            return;
                        }
                    }
                }
                Step::Hold => {
                    entry.blocked = Blocked::Holding;
                    return;
                }
                Step::Done => {
                    // A stepping process is necessarily registered. simlint: allow(no-unwrap-in-lib)
                    let entry = self.procs.remove(&pid).expect("alive");
                    self.finished += 1;
                    for rid in entry.held {
                        self.do_release(ctx, rid);
                    }
                    return;
                }
            }
        }
    }

    fn do_release(&mut self, ctx: &mut Ctx<'_, Resume>, rid: ResourceId) {
        if let Some(next) = self.resources[rid.0].release() {
            if let Some(e) = self.procs.get_mut(&next) {
                e.held.push(rid);
                e.blocked = Blocked::Running;
                ctx.schedule_now(Resume(next, Wake::Acquired(rid)));
            } else {
                // The waiter died between queueing and grant; pass the slot
                // on (or free it if nobody else waits).
                self.do_release(ctx, rid);
            }
        }
    }

    fn apply_commands(&mut self, ctx: &mut Ctx<'_, Resume>, commands: Vec<Command<S>>) {
        for cmd in commands {
            match cmd {
                Command::Emit(sig) => {
                    let waiters = std::mem::take(&mut self.signals[sig.0]);
                    for pid in waiters {
                        if let Some(entry) = self.procs.get_mut(&pid) {
                            if let Blocked::WaitingSignal(_, Some(timeout)) = entry.blocked {
                                ctx.cancel(timeout);
                            }
                            entry.blocked = Blocked::Running;
                            ctx.schedule_now(Resume(pid, Wake::Signal(sig)));
                        }
                    }
                }
                Command::Interrupt(target, reason) => {
                    self.inject_interrupt(ctx, target, reason);
                }
                Command::Release(rid, holder) => {
                    if let Some(e) = self.procs.get_mut(&holder) {
                        let pos = e
                            .held
                            .iter()
                            .position(|&r| r == rid)
                            // Holder bookkeeping invariant. simlint: allow(no-unwrap-in-lib)
                            .expect("release of a resource not held");
                        e.held.swap_remove(pos);
                    }
                    self.do_release(ctx, rid);
                }
                Command::Spawn(pid, process) => {
                    self.procs.insert(
                        pid,
                        Entry {
                            process,
                            blocked: Blocked::Running,
                            // Spawn is topology construction, not steady
                            // state; the vec starts at capacity 0.
                            held: Vec::new(), // simlint: allow(no-alloc-in-hot-loop)
                        },
                    );
                    ctx.schedule_now(Resume(pid, Wake::Started));
                }
            }
        }
    }
}

impl<S> Model for ProcessWorld<S> {
    type Event = Resume;

    fn init(&mut self, ctx: &mut Ctx<'_, Resume>) {
        for pid in std::mem::take(&mut self.start_queue) {
            ctx.schedule_now(Resume(pid, Wake::Started));
        }
    }

    fn handle(&mut self, ctx: &mut Ctx<'_, Resume>, Resume(pid, wake): Resume) {
        // Stale wakeups for dead processes are dropped in drive().
        match wake {
            Wake::TimedOut => {
                // Leave the signal wait list before resuming.
                if let Some(entry) = self.procs.get(&pid) {
                    if let Blocked::WaitingSignal(sig, _) = entry.blocked {
                        self.signals[sig.0].retain(|&p| p != pid);
                    }
                }
                self.drive(ctx, pid, wake);
            }
            _ => self.drive(ctx, pid, wake),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;

    /// Shared scratch state for the tests.
    #[derive(Default)]
    struct Log {
        lines: Vec<(f64, String)>,
    }

    impl Log {
        fn push(&mut self, now: SimTime, s: impl Into<String>) {
            self.lines.push((now.as_secs(), s.into()));
        }
    }

    /// Sleeps twice, logging each wake.
    struct Sleeper {
        name: &'static str,
        naps: u32,
    }

    impl Process<Log> for Sleeper {
        fn resume(&mut self, shared: &mut Log, ctx: &mut ProcCtx<Log>, wake: Wake) -> Step {
            shared.push(ctx.now(), format!("{} {:?}", self.name, wake));
            if self.naps == 0 {
                return Step::Done;
            }
            self.naps -= 1;
            Step::Sleep(SimDuration::from_secs(1.0))
        }
    }

    #[test]
    fn sleeping_process_lifecycle() {
        let mut world = ProcessWorld::new(Log::default());
        world.spawn(Box::new(Sleeper { name: "s", naps: 2 }));
        let mut sim = Simulation::new(world);
        sim.run();
        let w = sim.model();
        assert_eq!(w.alive(), 0);
        assert_eq!(w.finished(), 1);
        let lines: Vec<&str> = w.shared().lines.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(
            lines,
            vec!["s Started", "s TimerFired", "s TimerFired"]
        );
        assert_eq!(w.shared().lines[2].0, 2.0);
    }

    /// One process emits a signal after a delay; others wait for it.
    struct Announcer {
        signal: SignalId,
        delay: SimDuration,
        fired: bool,
    }
    impl Process<Log> for Announcer {
        fn resume(&mut self, shared: &mut Log, ctx: &mut ProcCtx<Log>, _wake: Wake) -> Step {
            if !self.fired {
                self.fired = true;
                return Step::Sleep(self.delay);
            }
            shared.push(ctx.now(), "announce");
            ctx.emit(self.signal);
            Step::Done
        }
    }
    struct Listener {
        signal: SignalId,
        waiting: bool,
    }
    impl Process<Log> for Listener {
        fn resume(&mut self, shared: &mut Log, ctx: &mut ProcCtx<Log>, wake: Wake) -> Step {
            if !self.waiting {
                self.waiting = true;
                return Step::WaitSignal(self.signal);
            }
            shared.push(ctx.now(), format!("heard {wake:?}"));
            Step::Done
        }
    }

    #[test]
    fn signal_wakes_all_waiters() {
        let mut world = ProcessWorld::new(Log::default());
        let sig = world.add_signal();
        world.spawn(Box::new(Listener {
            signal: sig,
            waiting: false,
        }));
        world.spawn(Box::new(Listener {
            signal: sig,
            waiting: false,
        }));
        world.spawn(Box::new(Announcer {
            signal: sig,
            delay: SimDuration::from_secs(3.0),
            fired: false,
        }));
        let mut sim = Simulation::new(world);
        sim.run();
        let heard: Vec<&(f64, String)> = sim
            .model()
            .shared()
            .lines
            .iter()
            .filter(|(_, s)| s.starts_with("heard"))
            .collect();
        assert_eq!(heard.len(), 2);
        assert!(heard.iter().all(|(t, _)| *t == 3.0));
    }

    /// Waits with a timeout shorter than the signal delay.
    struct ImpatientListener {
        signal: SignalId,
        waiting: bool,
    }
    impl Process<Log> for ImpatientListener {
        fn resume(&mut self, shared: &mut Log, ctx: &mut ProcCtx<Log>, wake: Wake) -> Step {
            if !self.waiting {
                self.waiting = true;
                return Step::WaitSignalTimeout(self.signal, SimDuration::from_secs(1.0));
            }
            shared.push(ctx.now(), format!("{wake:?}"));
            Step::Done
        }
    }

    #[test]
    fn wait_with_timeout_times_out() {
        let mut world = ProcessWorld::new(Log::default());
        let sig = world.add_signal();
        world.spawn(Box::new(ImpatientListener {
            signal: sig,
            waiting: false,
        }));
        world.spawn(Box::new(Announcer {
            signal: sig,
            delay: SimDuration::from_secs(5.0),
            fired: false,
        }));
        let mut sim = Simulation::new(world);
        sim.run();
        let lines = &sim.model().shared().lines;
        assert!(lines.iter().any(|(t, s)| *t == 1.0 && s == "TimedOut"));
        // After timing out, the listener must not be woken again at t=5.
        assert_eq!(
            lines.iter().filter(|(_, s)| s.contains("Signal")).count(),
            0
        );
    }

    #[test]
    fn wait_with_timeout_signal_cancels_timer() {
        let mut world = ProcessWorld::new(Log::default());
        let sig = world.add_signal();
        world.spawn(Box::new(ImpatientListener {
            signal: sig,
            waiting: false,
        }));
        world.spawn(Box::new(Announcer {
            signal: sig,
            delay: SimDuration::from_secs(0.5),
            fired: false,
        }));
        let mut sim = Simulation::new(world);
        sim.run();
        let lines = &sim.model().shared().lines;
        assert!(lines
            .iter()
            .any(|(t, s)| *t == 0.5 && s.starts_with("Signal")));
        assert!(!lines.iter().any(|(_, s)| s == "TimedOut"));
    }

    /// Acquires a 1-slot resource, holds it for a second, releases.
    struct Worker {
        rid: ResourceId,
        priority: i64,
        phase: u8,
    }
    impl Process<Log> for Worker {
        fn resume(&mut self, shared: &mut Log, ctx: &mut ProcCtx<Log>, _wake: Wake) -> Step {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Step::Acquire(self.rid, self.priority)
                }
                1 => {
                    shared.push(ctx.now(), format!("got p{}", self.priority));
                    self.phase = 2;
                    Step::Sleep(SimDuration::from_secs(1.0))
                }
                _ => {
                    ctx.release(self.rid);
                    Step::Done
                }
            }
        }
    }

    #[test]
    fn resource_serves_by_priority() {
        let mut world = ProcessWorld::new(Log::default());
        let rid = world.add_resource(1);
        // Spawn in an order different from priority order.
        for p in [5i64, 1, 3] {
            world.spawn(Box::new(Worker {
                rid,
                priority: p,
                phase: 0,
            }));
        }
        let mut sim = Simulation::new(world);
        sim.run();
        let order: Vec<&str> = sim
            .model()
            .shared()
            .lines
            .iter()
            .map(|(_, s)| s.as_str())
            .collect();
        // First spawned (p5) grabs the free slot at t=0; the queue then
        // serves p1 before p3.
        assert_eq!(order, vec!["got p5", "got p1", "got p3"]);
    }

    #[test]
    fn resources_release_on_done_automatically() {
        struct Hog {
            rid: ResourceId,
            phase: u8,
        }
        impl Process<Log> for Hog {
            fn resume(&mut self, _s: &mut Log, _ctx: &mut ProcCtx<Log>, _w: Wake) -> Step {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Step::Acquire(self.rid, 0)
                    }
                    // Terminates while holding the slot.
                    _ => Step::Done,
                }
            }
        }
        let mut world = ProcessWorld::new(Log::default());
        let rid = world.add_resource(1);
        world.spawn(Box::new(Hog { rid, phase: 0 }));
        world.spawn(Box::new(Worker {
            rid,
            priority: 9,
            phase: 0,
        }));
        let mut sim = Simulation::new(world);
        sim.run();
        assert!(sim
            .model()
            .shared()
            .lines
            .iter()
            .any(|(_, s)| s == "got p9"));
    }

    /// Holds forever until interrupted; logs the reason.
    struct Passive;
    impl Process<Log> for Passive {
        fn resume(&mut self, shared: &mut Log, ctx: &mut ProcCtx<Log>, wake: Wake) -> Step {
            match wake {
                Wake::Started => Step::Hold,
                Wake::Interrupted(code) => {
                    shared.push(ctx.now(), format!("interrupted {code}"));
                    Step::Done
                }
                other => panic!("unexpected wake {other:?}"),
            }
        }
    }
    struct Interrupter {
        target: Pid,
        fired: bool,
    }
    impl Process<Log> for Interrupter {
        fn resume(&mut self, _s: &mut Log, ctx: &mut ProcCtx<Log>, _w: Wake) -> Step {
            if !self.fired {
                self.fired = true;
                return Step::Sleep(SimDuration::from_secs(2.0));
            }
            ctx.interrupt(self.target, 42);
            Step::Done
        }
    }

    #[test]
    fn interrupt_wakes_holding_process() {
        let mut world = ProcessWorld::new(Log::default());
        let target = world.spawn(Box::new(Passive));
        world.spawn(Box::new(Interrupter {
            target,
            fired: false,
        }));
        let mut sim = Simulation::new(world);
        sim.run();
        let lines = &sim.model().shared().lines;
        assert!(lines.iter().any(|(t, s)| *t == 2.0 && s == "interrupted 42"));
    }

    #[test]
    fn interrupt_cancels_pending_sleep() {
        struct SleepThenLog {
            started: bool,
        }
        impl Process<Log> for SleepThenLog {
            fn resume(&mut self, shared: &mut Log, ctx: &mut ProcCtx<Log>, wake: Wake) -> Step {
                if !self.started {
                    self.started = true;
                    return Step::Sleep(SimDuration::from_secs(100.0));
                }
                shared.push(ctx.now(), format!("{wake:?}"));
                Step::Done
            }
        }
        let mut world = ProcessWorld::new(Log::default());
        let target = world.spawn(Box::new(SleepThenLog { started: false }));
        world.spawn(Box::new(Interrupter {
            target,
            fired: false,
        }));
        let mut sim = Simulation::new(world);
        sim.run();
        let lines = &sim.model().shared().lines;
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0], (2.0, "Interrupted(42)".to_string()));
        // The 100 s timer must have been cancelled, so the run ends at t=2.
        assert_eq!(sim.now(), SimTime::from_secs(2.0));
    }

    #[test]
    fn interrupting_dead_process_is_noop() {
        let mut world = ProcessWorld::new(Log::default());
        let target = world.spawn(Box::new(Sleeper { name: "x", naps: 0 }));
        world.spawn(Box::new(Interrupter {
            target,
            fired: false,
        }));
        let mut sim = Simulation::new(world);
        sim.run(); // must not panic
        assert_eq!(sim.model().finished(), 2);
    }

    /// Parent spawns a child at runtime.
    struct Parent {
        spawned: bool,
    }
    impl Process<Log> for Parent {
        fn resume(&mut self, shared: &mut Log, ctx: &mut ProcCtx<Log>, _w: Wake) -> Step {
            if !self.spawned {
                self.spawned = true;
                let child = ctx.spawn(Box::new(Sleeper {
                    name: "child",
                    naps: 1,
                }));
                shared.push(ctx.now(), format!("spawned {child:?}"));
                return Step::Sleep(SimDuration::from_secs(10.0));
            }
            Step::Done
        }
    }

    #[test]
    fn runtime_spawn_runs_child() {
        let mut world = ProcessWorld::new(Log::default());
        world.spawn(Box::new(Parent { spawned: false }));
        let mut sim = Simulation::new(world);
        sim.run();
        let lines = &sim.model().shared().lines;
        assert!(lines.iter().any(|(_, s)| s == "child Started"));
        assert!(lines.iter().any(|(t, s)| *t == 1.0 && s == "child TimerFired"));
        assert_eq!(sim.model().finished(), 2);
    }
}

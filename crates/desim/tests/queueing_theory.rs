//! Queueing-theory validation of the DES engine.
//!
//! The classic acceptance test for a discrete-event simulator: an M/M/1
//! queue's simulated statistics must match the analytic formulas
//! (utilization ρ, mean number in system ρ/(1−ρ), mean sojourn time
//! 1/(μ−λ) by Little's law). This exercises the engine loop, the event
//! queue, and the time-weighted monitor together under heavy event
//! churn, with an independent ground truth.

use pckpt_desim::{Ctx, Model, SimDuration, SimTime, Simulation, TimeWeighted};
use pckpt_simrng::{Distribution, Exponential, SimRng};

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrival,
    Departure,
}

struct Mm1 {
    rng: SimRng,
    interarrival: Exponential,
    service: Exponential,
    queue_len: u64, // customers in system (incl. in service)
    in_system: TimeWeighted,
    busy: TimeWeighted,
    arrivals: u64,
    departures: u64,
    sojourn_sum: f64,
    arrival_times: std::collections::VecDeque<SimTime>,
    max_customers: u64,
}

impl Mm1 {
    fn new(lambda: f64, mu: f64, max_customers: u64, seed: u64) -> Self {
        Self {
            rng: SimRng::seed_from(seed),
            interarrival: Exponential::from_rate(lambda),
            service: Exponential::from_rate(mu),
            queue_len: 0,
            in_system: TimeWeighted::new(0.0),
            busy: TimeWeighted::new(0.0),
            arrivals: 0,
            departures: 0,
            sojourn_sum: 0.0,
            arrival_times: std::collections::VecDeque::new(),
            max_customers,
        }
    }
}

impl Model for Mm1 {
    type Event = Ev;

    fn init(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let gap = self.interarrival.sample(&mut self.rng);
        ctx.schedule_in(SimDuration::from_secs(gap), Ev::Arrival);
    }

    fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        let now = ctx.now();
        match ev {
            Ev::Arrival => {
                self.arrivals += 1;
                self.arrival_times.push_back(now);
                self.queue_len += 1;
                self.in_system.set(now, self.queue_len as f64);
                if self.queue_len == 1 {
                    self.busy.set(now, 1.0);
                    let s = self.service.sample(&mut self.rng);
                    ctx.schedule_in(SimDuration::from_secs(s), Ev::Departure);
                }
                if self.arrivals < self.max_customers {
                    let gap = self.interarrival.sample(&mut self.rng);
                    ctx.schedule_in(SimDuration::from_secs(gap), Ev::Arrival);
                }
            }
            Ev::Departure => {
                self.departures += 1;
                let arrived = self.arrival_times.pop_front().expect("FIFO discipline");
                self.sojourn_sum += now.since(arrived).as_secs();
                self.queue_len -= 1;
                self.in_system.set(now, self.queue_len as f64);
                if self.queue_len > 0 {
                    let s = self.service.sample(&mut self.rng);
                    ctx.schedule_in(SimDuration::from_secs(s), Ev::Departure);
                } else {
                    self.busy.set(now, 0.0);
                }
            }
        }
    }
}

fn simulate(lambda: f64, mu: f64, customers: u64, seed: u64) -> (f64, f64, f64, SimTime) {
    let mut sim = Simulation::new(Mm1::new(lambda, mu, customers, seed));
    sim.run();
    let end = sim.now();
    let m = sim.model();
    assert_eq!(m.arrivals, customers);
    assert_eq!(m.departures, customers, "queue must drain");
    (
        m.busy.mean(end),
        m.in_system.mean(end),
        m.sojourn_sum / m.departures as f64,
        end,
    )
}

#[test]
fn mm1_matches_analytic_at_moderate_load() {
    let (lambda, mu) = (0.6, 1.0);
    let rho = lambda / mu;
    let (util, l, w, _) = simulate(lambda, mu, 200_000, 11);
    assert!((util - rho).abs() < 0.01, "utilization {util} vs ρ {rho}");
    let l_expected = rho / (1.0 - rho); // 1.5
    assert!(
        (l - l_expected).abs() / l_expected < 0.05,
        "L {l} vs analytic {l_expected}"
    );
    let w_expected = 1.0 / (mu - lambda); // 2.5
    assert!(
        (w - w_expected).abs() / w_expected < 0.05,
        "W {w} vs analytic {w_expected}"
    );
}

#[test]
fn mm1_matches_analytic_at_high_load() {
    let (lambda, mu) = (0.85, 1.0);
    let rho: f64 = lambda / mu;
    let (util, l, w, _) = simulate(lambda, mu, 400_000, 23);
    assert!((util - rho).abs() < 0.01);
    let l_expected = rho / (1.0 - rho); // ≈ 5.67
    assert!(
        (l - l_expected).abs() / l_expected < 0.10,
        "L {l} vs analytic {l_expected} (high-load variance)"
    );
    // Little's law cross-check: L ≈ λ·W on the simulated values
    // themselves (tighter than matching the analytic constants).
    assert!((l - lambda * w).abs() / l < 0.03, "Little: L {l} vs λW {}", lambda * w);
}

#[test]
fn mm1_empty_system_fraction() {
    // P(empty) = 1 − ρ; check via the busy monitor's complement.
    let (lambda, mu) = (0.3, 1.0);
    let (util, _, _, _) = simulate(lambda, mu, 150_000, 5);
    assert!((1.0 - util - 0.7).abs() < 0.01);
}

//! Property-based tests of the DES engine: event ordering under random
//! schedules and cancellations, byte conservation in the fluid-flow
//! link, and priority correctness in the resource queue.

use proptest::prelude::*;

use pckpt_desim::resource::{Acquire, Resource};
use pckpt_desim::{EventQueue, FlowLink, SimTime};

proptest! {
    /// Whatever is scheduled (minus cancellations) pops in
    /// (time, insertion) order, exactly once.
    #[test]
    fn queue_pops_sorted_and_complete(
        times in proptest::collection::vec(0u64..1_000_000, 1..200),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule_at(SimTime::from_nanos(t), i))
            .collect();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        for (i, (&t, id)) in times.iter().zip(&ids).enumerate() {
            let cancelled = cancel_mask.get(i).copied().unwrap_or(false);
            if cancelled {
                prop_assert!(q.cancel(*id));
            } else {
                expected.push((t, i));
            }
        }
        expected.sort();
        let mut popped = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((at, _, payload)) = q.pop() {
            prop_assert!(at >= last, "time went backwards");
            last = at;
            popped.push((at.as_nanos(), payload));
        }
        prop_assert_eq!(popped, expected);
        prop_assert!(q.is_empty());
    }

    /// Bytes in = bytes delivered + bytes returned by cancellation, under
    /// arbitrary interleavings of starts, cancels, and drains.
    #[test]
    fn flow_link_conserves_bytes(
        ops in proptest::collection::vec((0u8..3, 1u64..1_000_000, 1u64..1000), 1..100),
        capacity in 1_000.0f64..1e9,
    ) {
        let mut link = FlowLink::with_constant_capacity(capacity);
        let mut t = 0.0f64;
        let mut injected = 0.0f64;
        let mut returned = 0.0f64;
        let mut live = Vec::new();
        for (op, bytes, dt) in ops {
            t += dt as f64 * 1e-3;
            let now = SimTime::from_secs(t);
            match op {
                0 => {
                    injected += bytes as f64;
                    live.push(link.start(now, bytes as f64));
                }
                1 => {
                    if let Some(id) = live.pop() {
                        if let Some(rem) = link.cancel(now, id) {
                            returned += rem;
                        }
                    } else {
                        link.advance(now);
                    }
                }
                _ => {
                    link.take_completed(now);
                }
            }
        }
        // Drain to completion.
        let mut now = SimTime::from_secs(t);
        while let Some(fin) = link.next_completion(now) {
            now = fin.max(now);
            if link.take_completed(now).is_empty() && !link.is_idle() {
                // All remaining flows finish at exactly `now + epsilon`;
                // advance a step to avoid an infinite loop on float dust.
                now += pckpt_desim::SimDuration::from_nanos(1);
            }
            if link.is_idle() {
                break;
            }
        }
        let moved = link.bytes_moved();
        let err = (injected - returned - moved).abs();
        prop_assert!(
            err < 1.0 + injected * 1e-9,
            "conservation violated: injected {injected}, returned {returned}, moved {moved}"
        );
    }

    /// The resource always grants to the best (priority, arrival) waiter.
    #[test]
    fn resource_serves_in_priority_order(
        priorities in proptest::collection::vec(-100i64..100, 2..50),
        capacity in 1usize..4,
    ) {
        let mut r = Resource::new(capacity);
        let mut queued: Vec<(i64, usize)> = Vec::new();
        let mut holding = 0usize;
        for (i, &p) in priorities.iter().enumerate() {
            match r.acquire(i, p) {
                Acquire::Granted => holding += 1,
                Acquire::Queued => queued.push((p, i)),
            }
        }
        queued.sort();
        // Release every held slot (initial grants plus each transferred
        // one); queue hand-offs must follow (priority, seq) order. A
        // `None` release simply freed a slot without a waiter.
        let mut served = Vec::new();
        for _ in 0..holding + queued.len() {
            if let Some(token) = r.release() {
                served.push(token);
            }
        }
        let expected: Vec<usize> = queued.iter().map(|&(_, i)| i).collect();
        prop_assert_eq!(served, expected);
        prop_assert_eq!(r.in_use(), 0);
    }

    /// Queue length accounting stays consistent under mixed operations.
    #[test]
    fn queue_len_is_consistent(
        schedule in proptest::collection::vec(0u64..10_000, 1..100),
        pops in 0usize..50,
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in schedule.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        prop_assert_eq!(q.len(), schedule.len());
        let mut popped = 0;
        for _ in 0..pops {
            if q.pop().is_some() {
                popped += 1;
            }
        }
        prop_assert_eq!(q.len(), schedule.len() - popped);
        prop_assert_eq!(q.scheduled_total(), schedule.len() as u64);
    }
}

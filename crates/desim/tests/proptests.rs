//! Property-based tests of the DES engine: event ordering under random
//! schedules and cancellations, byte conservation in the fluid-flow
//! link, and priority correctness in the resource queue.

use proptest::prelude::*;

use pckpt_desim::resource::{Acquire, Resource};
use pckpt_desim::{EventQueue, FlowLink, ReferenceFlowLink, SimTime};

proptest! {
    /// Whatever is scheduled (minus cancellations) pops in
    /// (time, insertion) order, exactly once.
    #[test]
    fn queue_pops_sorted_and_complete(
        times in proptest::collection::vec(0u64..1_000_000, 1..200),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule_at(SimTime::from_nanos(t), i))
            .collect();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        for (i, (&t, id)) in times.iter().zip(&ids).enumerate() {
            let cancelled = cancel_mask.get(i).copied().unwrap_or(false);
            if cancelled {
                prop_assert!(q.cancel(*id));
            } else {
                expected.push((t, i));
            }
        }
        expected.sort();
        let mut popped = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((at, _, payload)) = q.pop() {
            prop_assert!(at >= last, "time went backwards");
            last = at;
            popped.push((at.as_nanos(), payload));
        }
        prop_assert_eq!(popped, expected);
        prop_assert!(q.is_empty());
    }

    /// Bytes in = bytes delivered + bytes returned by cancellation, under
    /// arbitrary interleavings of starts, cancels, and drains.
    #[test]
    fn flow_link_conserves_bytes(
        ops in proptest::collection::vec((0u8..3, 1u64..1_000_000, 1u64..1000), 1..100),
        capacity in 1_000.0f64..1e9,
    ) {
        let mut link = FlowLink::with_constant_capacity(capacity);
        let mut t = 0.0f64;
        let mut injected = 0.0f64;
        let mut returned = 0.0f64;
        let mut live = Vec::new();
        for (op, bytes, dt) in ops {
            t += dt as f64 * 1e-3;
            let now = SimTime::from_secs(t);
            match op {
                0 => {
                    injected += bytes as f64;
                    live.push(link.start(now, bytes as f64));
                }
                1 => {
                    if let Some(id) = live.pop() {
                        if let Some(rem) = link.cancel(now, id) {
                            returned += rem;
                        }
                    } else {
                        link.advance(now);
                    }
                }
                _ => {
                    link.take_completed(now);
                }
            }
        }
        // Drain to completion.
        let mut now = SimTime::from_secs(t);
        while let Some(fin) = link.next_completion(now) {
            now = fin.max(now);
            if link.take_completed(now).is_empty() && !link.is_idle() {
                // All remaining flows finish at exactly `now + epsilon`;
                // advance a step to avoid an infinite loop on float dust.
                now += pckpt_desim::SimDuration::from_nanos(1);
            }
            if link.is_idle() {
                break;
            }
        }
        let moved = link.bytes_moved();
        let err = (injected - returned - moved).abs();
        prop_assert!(
            err < 1.0 + injected * 1e-9,
            "conservation violated: injected {injected}, returned {returned}, moved {moved}"
        );
    }

    /// The resource always grants to the best (priority, arrival) waiter.
    #[test]
    fn resource_serves_in_priority_order(
        priorities in proptest::collection::vec(-100i64..100, 2..50),
        capacity in 1usize..4,
    ) {
        let mut r = Resource::new(capacity);
        let mut queued: Vec<(i64, usize)> = Vec::new();
        let mut holding = 0usize;
        for (i, &p) in priorities.iter().enumerate() {
            match r.acquire(i, p) {
                Acquire::Granted => holding += 1,
                Acquire::Queued => queued.push((p, i)),
            }
        }
        queued.sort();
        // Release every held slot (initial grants plus each transferred
        // one); queue hand-offs must follow (priority, seq) order. A
        // `None` release simply freed a slot without a waiter.
        let mut served = Vec::new();
        for _ in 0..holding + queued.len() {
            if let Some(token) = r.release() {
                served.push(token);
            }
        }
        let expected: Vec<usize> = queued.iter().map(|&(_, i)| i).collect();
        prop_assert_eq!(served, expected);
        prop_assert_eq!(r.in_use(), 0);
    }

    /// Queue length accounting stays consistent under mixed operations.
    #[test]
    fn queue_len_is_consistent(
        schedule in proptest::collection::vec(0u64..10_000, 1..100),
        pops in 0usize..50,
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in schedule.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        prop_assert_eq!(q.len(), schedule.len());
        let mut popped = 0;
        for _ in 0..pops {
            if q.pop().is_some() {
                popped += 1;
            }
        }
        prop_assert_eq!(q.len(), schedule.len() - popped);
        prop_assert_eq!(q.scheduled_total(), schedule.len() as u64);
    }

    /// The virtual-time [`FlowLink`] is observationally equivalent to the
    /// per-flow [`ReferenceFlowLink`] it replaced: identical completion
    /// order and membership, completion instants within 1 ns, matching
    /// cancel returns and byte accounting, under randomized interleavings
    /// of weighted starts, cancels, and completion harvests on both
    /// constant and load-dependent capacity curves.
    #[test]
    fn virtual_time_link_matches_reference(
        ops in proptest::collection::vec(
            (0u8..4, 1u64..1_000_000_000, 1u64..=64, 0u64..2_000),
            1..120,
        ),
        base_capacity in 1_000.0f64..1e9,
        load_dependent in any::<bool>(),
    ) {
        let make_cap = |base: f64, dep: bool| {
            move |writers: usize| {
                if dep {
                    // Saturating weak-scaling curve, like the PFS matrix.
                    base * (writers as f64).sqrt().min(16.0)
                } else {
                    base
                }
            }
        };
        let mut virt = FlowLink::with_capacity_fn(make_cap(base_capacity, load_dependent));
        let mut refl = ReferenceFlowLink::with_capacity_fn(make_cap(base_capacity, load_dependent));
        let mut t = 0.0f64;
        let mut live: Vec<pckpt_desim::TransferId> = Vec::new();
        for &(op, bytes, weight, dt_ms) in &ops {
            t += dt_ms as f64 * 1e-3;
            let now = SimTime::from_secs(t);
            match op {
                0 | 1 => {
                    // Both links issue ids from the same counter sequence,
                    // so the handles must agree.
                    let a = virt.start_weighted(now, bytes as f64, weight as f64);
                    let b = refl.start_weighted(now, bytes as f64, weight as f64);
                    prop_assert_eq!(a, b);
                    live.push(a);
                }
                2 => {
                    if let Some(id) = live.pop() {
                        let a = virt.cancel(now, id);
                        let b = refl.cancel(now, id);
                        prop_assert_eq!(a.is_some(), b.is_some());
                        if let (Some(ra), Some(rb)) = (a, b) {
                            prop_assert!(
                                (ra - rb).abs() < 1.0 + rb.abs() * 1e-6,
                                "cancel remainder diverged: {ra} vs {rb}"
                            );
                        }
                    } else {
                        virt.advance(now);
                        refl.advance(now);
                    }
                }
                _ => {
                    let a = virt.take_completed(now);
                    let b = refl.take_completed(now);
                    let ids_a: Vec<_> = a.iter().map(|&(id, _, _)| id).collect();
                    let ids_b: Vec<_> = b.iter().map(|&(id, _, _)| id).collect();
                    prop_assert_eq!(ids_a, ids_b);
                    live.retain(|id| a.iter().all(|&(done, _, _)| done != *id));
                }
            }
            prop_assert_eq!(virt.active(), refl.active());
            match (virt.next_completion(now), refl.next_completion(now)) {
                (None, None) => {}
                (Some(fa), Some(fb)) => prop_assert!(
                    fa.as_nanos().abs_diff(fb.as_nanos()) <= 1,
                    "completion instants diverged: {fa} vs {fb}"
                ),
                (a, b) => prop_assert!(false, "one link idle, one not: {a:?} vs {b:?}"),
            }
        }
        // Drain both to completion, following the *virtual* link's
        // schedule (the reference is within 1 ns of it at every step).
        let mut now = SimTime::from_secs(t);
        while let Some(fin) = virt.next_completion(now) {
            now = fin.max(now);
            let a = virt.take_completed(now);
            let b = refl.take_completed(now);
            let ids_a: Vec<_> = a.iter().map(|&(id, _, _)| id).collect();
            let ids_b: Vec<_> = b.iter().map(|&(id, _, _)| id).collect();
            prop_assert_eq!(ids_a, ids_b);
            if a.is_empty() && !virt.is_idle() {
                now += pckpt_desim::SimDuration::from_nanos(1);
            }
            if virt.is_idle() {
                break;
            }
        }
        prop_assert!(virt.is_idle() && refl.is_idle());
        let (ma, mb) = (virt.bytes_moved(), refl.bytes_moved());
        prop_assert!(
            (ma - mb).abs() < 1.0 + mb.abs() * 1e-6,
            "bytes_moved diverged: {ma} vs {mb}"
        );
    }
}

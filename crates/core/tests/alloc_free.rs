//! Proves the campaign steady state is allocation-free.
//!
//! A counting global allocator wraps `System`; after a warmup pass has
//! grown every arena buffer to its high-water mark, replaying the same
//! runs through [`RunArena::run_one`] must not touch the heap at all —
//! not in the event queue, the fluid link, the p-ckpt round, the trace
//! generator, nor the result hand-off. The same bar applies to the grid
//! engine's steady state: a warm [`GridWorker`] replaying `(run, unit)`
//! items — trace-cache hits *and* misses, core instantiation included —
//! must be equally silent.
//!
//! This file is its own test binary on purpose: `#[global_allocator]`
//! is process-wide, and the sole test keeps the counter honest (no
//! parallel test threads allocating in the background).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pckpt_core::iosim::PfsMode;
use pckpt_core::{
    GridCell, GridPlan, GridWorker, ModelKind, RunArena, RunResult, SimParams, VrConfig,
};
use pckpt_failure::LeadTimeModel;
use pckpt_simrng::SimRng;
use pckpt_workloads::Application;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every operation delegates to System, preserving its layout
// contract verbatim; the only side effect is a Relaxed atomic add, which
// itself never allocates or unwinds.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_arena_runs_do_not_allocate() {
    const RUNS: usize = 8;
    let leads = LeadTimeModel::desh_default();
    let models = [ModelKind::B, ModelKind::P2];
    for mode in [PfsMode::Analytic, PfsMode::Fluid] {
        let mut p = SimParams::paper_defaults(
            ModelKind::B,
            Application::by_name("XGC").expect("known app"),
        );
        p.pfs_mode = mode;
        let master = SimRng::seed_from(41);
        let mut arena = RunArena::new(&p, &models, &leads);
        let mut out: Vec<Option<RunResult>> = vec![None; models.len()];

        // Warmup: grows every buffer to the high-water mark of this seed
        // set (trace storage, queue heap + liveness bitset, round queue,
        // scratch vectors, fluid flow table).
        for run in 0..RUNS {
            arena.run_one(&master, run, &mut out);
        }

        // Steady state: replay the identical seed set. Buffer sizes are a
        // deterministic function of the seeds, so nothing may grow.
        let before = ALLOCS.load(Ordering::SeqCst);
        for run in 0..RUNS {
            arena.run_one(&master, run, &mut out);
        }
        let after = ALLOCS.load(Ordering::SeqCst);

        // Release builds elide some debug-only bookkeeping, and the point
        // of the invariant is to catch regressions where developers run
        // tests — enforce in debug, merely exercise elsewhere.
        #[cfg(debug_assertions)]
        assert_eq!(
            after - before,
            0,
            "warm {mode:?} campaign runs must not allocate"
        );
        #[cfg(not(debug_assertions))]
        let _ = (before, after);
        assert!(out.iter().all(Option::is_some));
    }

    // Grid steady state: a warm worker replaying a lead-scale sweep.
    // Replaying run-major order makes every multi-view unit after the
    // first of a run a trace-cache *hit* (instantiate only), and the
    // first a *miss* (full regeneration into cached buffers) — both
    // paths must stay off the heap.
    let leads = LeadTimeModel::desh_default();
    let cells: Vec<GridCell> = [1.5, 1.0, 0.5]
        .iter()
        .map(|&scale| {
            let mut p = SimParams::paper_defaults(
                ModelKind::B,
                Application::by_name("XGC").expect("known app"),
            );
            p.lead_scale = scale;
            GridCell::new(p, &[ModelKind::B, ModelKind::M2])
        })
        .collect();
    let plan = GridPlan::new(&cells, &leads);
    let master = SimRng::seed_from(41);
    let mut worker = GridWorker::new(&plan);

    const GRID_RUNS: usize = 6;
    let mut checksum = 0.0f64;
    for run in 0..GRID_RUNS {
        for unit in 0..plan.units() {
            checksum += worker.run_unit(&master, run, unit).wall_secs;
        }
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    let mut replay = 0.0f64;
    for run in 0..GRID_RUNS {
        for unit in 0..plan.units() {
            replay += worker.run_unit(&master, run, unit).wall_secs;
        }
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    #[cfg(debug_assertions)]
    assert_eq!(after - before, 0, "warm grid unit executions must not allocate");
    #[cfg(not(debug_assertions))]
    let _ = (before, after);
    assert_eq!(checksum.to_bits(), replay.to_bits(), "replay must be bit-identical");
    assert!(worker.trace_reuses > 0, "sweep must exercise the trace-cache hit path");

    // Variance-reduction steady state: antithetic pairing and stratified
    // generation route draws through per-event split substreams and the
    // geometric-block thinning path. `SimRng::split` is a value
    // transform (no boxing), so a warm VR worker must be exactly as
    // silent as the plain one.
    let vr = VrConfig {
        antithetic: true,
        strata: 4,
        ..VrConfig::default()
    };
    let mut vr_worker = GridWorker::with_vr(&plan, vr);
    let mut vr_checksum = 0.0f64;
    for run in 0..GRID_RUNS {
        for unit in 0..plan.units() {
            vr_checksum += vr_worker.run_unit(&master, run, unit).wall_secs;
        }
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    let mut vr_replay = 0.0f64;
    for run in 0..GRID_RUNS {
        for unit in 0..plan.units() {
            vr_replay += vr_worker.run_unit(&master, run, unit).wall_secs;
        }
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    #[cfg(debug_assertions)]
    assert_eq!(after - before, 0, "warm VR grid unit executions must not allocate");
    #[cfg(not(debug_assertions))]
    let _ = (before, after);
    assert_eq!(
        vr_checksum.to_bits(),
        vr_replay.to_bits(),
        "VR replay must be bit-identical"
    );
}

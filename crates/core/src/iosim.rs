//! Fluid PFS traffic management (the `PfsMode::Fluid` extension).
//!
//! The paper's simulator — and this crate's default `Analytic` mode —
//! computes every PFS operation's duration up front from the bandwidth
//! matrix, implicitly assuming operations never overlap. That is mostly
//! true (the OCI dwarfs the drain window), but not always: an
//! asynchronous BB→PFS drain can still be in flight when a prediction
//! triggers a proactive commit. Fluid mode routes every PFS byte through
//! a weighted [`FlowLink`], so overlapping operations genuinely share
//! bandwidth:
//!
//! * each operation is one transfer weighted by its writer count (a
//!   512-node drain holds 512 shares; a p-ckpt phase-1 commit holds 1);
//! * the link's aggregate capacity follows the Fig. 2c weak-scaling
//!   matrix as a function of the total active writer count;
//! * the p-ckpt protocol's "contention-free access" is implemented
//!   literally: a round (and only a round — safeguard checkpointing has
//!   no such coordination) **suspends** the drain and resumes it
//!   afterwards, preserving its progress.
//!
//! [`FluidPfs`] is pure bookkeeping over the link; the simulator owns the
//! event scheduling (one `PfsTick` event stamped with the link epoch).

use pckpt_desim::{FlowLink, SimTime, TransferId};
use pckpt_ioperf::PfsModel;

/// Writer counts precomputed into the capacity table. The Summit matrix
/// is sampled up to 8192 nodes and clamps beyond, so the memoized curve
/// is exact over the whole meaningful range.
const CAPACITY_TABLE_WRITERS: usize = 8192;

/// What a PFS transfer is doing (returned to the simulator on
/// completion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfsOp {
    /// Asynchronous BB→PFS drain of one periodic checkpoint.
    Drain,
    /// Safeguard commit (all nodes, app blocked).
    Safeguard,
    /// p-ckpt phase 1 (the current vulnerable writer).
    Phase1,
    /// p-ckpt phase 2 (the healthy rest).
    Phase2,
    /// Recovery read (all nodes from the PFS).
    RecoveryRead,
    /// Recovery read (replacement node only).
    ReplacementRead,
}

/// Which PFS mode a simulation runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PfsMode {
    /// Closed-form durations from the bandwidth matrix (the paper's
    /// approach; operations never contend).
    #[default]
    Analytic,
    /// Fluid-flow sharing over a weighted link (extension).
    Fluid,
}

/// Fluid-mode PFS state: the shared link plus operation bookkeeping.
pub struct FluidPfs {
    link: FlowLink,
    ops: Vec<(TransferId, PfsOp)>,
    /// Remaining bytes of a suspended drain (weight is re-supplied on
    /// resume — it is a fixed per-configuration constant).
    suspended_drain: Option<f64>,
    drain_active: Option<TransferId>,
    /// Scratch for the link's completion batches, reused across ticks so
    /// the steady-state hot loop performs no allocation.
    scratch: Vec<(TransferId, f64, SimTime)>,
}

impl FluidPfs {
    /// Builds the fluid link for a job: aggregate capacity follows the
    /// weak-scaling matrix at the job's per-node transfer size.
    ///
    /// The writer-count → bandwidth curve is memoized into a
    /// [`pckpt_ioperf::CapacityTable`] up front: the link consults it on
    /// every advance, and the interpolating matrix lookup was the single
    /// hottest call in a fluid-mode campaign profile.
    pub fn new(pfs: &PfsModel, per_node_bytes: f64) -> Self {
        let table = pfs.capacity_table(per_node_bytes, CAPACITY_TABLE_WRITERS);
        let link = FlowLink::with_capacity_fn(move |writers| table.capacity(writers));
        Self {
            link,
            ops: Vec::new(),
            suspended_drain: None,
            drain_active: None,
            scratch: Vec::new(),
        }
    }

    /// Clears all transfer state back to idle while retaining the link
    /// (and its memoized capacity table — the dominant construction cost)
    /// and every scratch allocation, so one `FluidPfs` serves a whole
    /// campaign worker's run sequence without rebuilding.
    pub fn reset(&mut self) {
        self.link.reset();
        self.ops.clear();
        self.suspended_drain = None;
        self.drain_active = None;
        self.scratch.clear();
    }

    /// Installs a trace recorder on the underlying flow link, so PFS
    /// wave completions show up in the structured event stream. A no-op
    /// unless the `trace` feature is enabled.
    pub fn set_recorder(&mut self, rec: pckpt_simobs::Recorder) {
        self.link.set_recorder(rec);
    }

    /// Starts an operation moving `bytes` with `weight` writer shares.
    pub fn start(&mut self, now: SimTime, op: PfsOp, bytes: f64, weight: f64) {
        let id = self.link.start_weighted(now, bytes, weight);
        if op == PfsOp::Drain {
            debug_assert!(self.drain_active.is_none(), "one drain at a time");
            self.drain_active = Some(id);
        }
        self.ops.push((id, op));
    }

    /// Cancels every active operation of the given kind (aborts).
    pub fn cancel(&mut self, now: SimTime, op: PfsOp) {
        let mut i = 0;
        while i < self.ops.len() {
            if self.ops[i].1 == op {
                let (id, _) = self.ops.swap_remove(i);
                self.link.cancel(now, id);
                if Some(id) == self.drain_active {
                    self.drain_active = None;
                }
            } else {
                i += 1;
            }
        }
    }

    /// Suspends an in-flight drain (p-ckpt coordination), preserving its
    /// progress. No-op without an active drain.
    pub fn suspend_drain(&mut self, now: SimTime) {
        if let Some(id) = self.drain_active.take() {
            if let Some(remaining) = self.link.cancel(now, id) {
                self.ops.retain(|&(i, _)| i != id);
                self.suspended_drain = Some(remaining);
            }
        }
    }

    /// Resumes a suspended drain with the original writer weight.
    pub fn resume_drain(&mut self, now: SimTime, weight: f64) {
        if let Some(remaining) = self.suspended_drain.take() {
            if remaining > 1.0 {
                self.start(now, PfsOp::Drain, remaining, weight);
            }
        }
    }

    /// Discards any drain state entirely (failure voids the checkpoint).
    pub fn void_drain(&mut self, now: SimTime) {
        if let Some(id) = self.drain_active.take() {
            self.link.cancel(now, id);
            self.ops.retain(|&(i, _)| i != id);
        }
        self.suspended_drain = None;
    }

    /// True if a drain is running or suspended.
    pub fn drain_pending(&self) -> bool {
        self.drain_active.is_some() || self.suspended_drain.is_some()
    }

    /// When the next transfer completes (for scheduling the tick).
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        self.link.next_completion(now)
    }

    /// Monotone epoch for stale-tick detection.
    pub fn epoch(&self) -> u64 {
        self.link.epoch()
    }

    /// Collects operations that finished by `now`.
    ///
    /// Allocating convenience wrapper around
    /// [`FluidPfs::take_completed_into`].
    pub fn take_completed(&mut self, now: SimTime) -> Vec<PfsOp> {
        let mut out = Vec::new();
        self.take_completed_into(now, &mut out);
        out
    }

    /// Collects operations that finished by `now` into `out` (cleared
    /// first). Hot loops pass the same buffer every tick so the steady
    /// state performs no allocation.
    pub fn take_completed_into(&mut self, now: SimTime, out: &mut Vec<PfsOp>) {
        out.clear();
        self.link.take_completed_into(now, &mut self.scratch);
        for &(id, _, _) in self.scratch.iter() {
            if Some(id) == self.drain_active {
                self.drain_active = None;
            }
            if let Some(pos) = self.ops.iter().position(|&(i, _)| i == id) {
                out.push(self.ops.swap_remove(pos).1);
            }
        }
    }

    /// Number of in-flight operations.
    pub fn active(&self) -> usize {
        self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pckpt_ioperf::GB;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn fluid() -> FluidPfs {
        // 10 GB/node transfers on the Summit matrix.
        FluidPfs::new(&PfsModel::summit(), 10.0 * GB)
    }

    #[test]
    fn lone_transfer_matches_analytic_duration() {
        let pfs = PfsModel::summit();
        let per_node = 10.0 * GB;
        let mut f = FluidPfs::new(&pfs, per_node);
        // A 64-node safeguard commit alone on the link.
        f.start(t(0.0), PfsOp::Safeguard, 64.0 * per_node, 64.0);
        let fin = f.next_completion(t(0.0)).unwrap();
        let analytic = pfs.write_secs(64, per_node);
        assert!(
            (fin.as_secs() - analytic).abs() / analytic < 1e-9,
            "fluid {} vs analytic {analytic}",
            fin.as_secs()
        );
        assert_eq!(f.take_completed(fin), vec![PfsOp::Safeguard]);
        assert_eq!(f.active(), 0);
    }

    #[test]
    fn overlapping_operations_contend() {
        let pfs = PfsModel::summit();
        let per_node = 10.0 * GB;
        let mut f = FluidPfs::new(&pfs, per_node);
        // A wide drain holds most of the bandwidth...
        f.start(t(0.0), PfsOp::Drain, 512.0 * per_node, 512.0);
        // ... and a single-node commit joins.
        f.start(t(0.0), PfsOp::Phase1, per_node, 1.0);
        let solo = pfs.single_node_write_secs(per_node);
        let fin = f.next_completion(t(0.0)).unwrap();
        // The commit's share: capacity(513)/513 ≪ capacity(1).
        assert!(
            fin.as_secs() > solo * 3.0,
            "contended commit ({}) must be far slower than solo ({solo})",
            fin.as_secs()
        );
    }

    #[test]
    fn suspend_resume_drain_preserves_progress() {
        let pfs = PfsModel::summit();
        let per_node = 10.0 * GB;
        let mut f = FluidPfs::new(&pfs, per_node);
        let total = 100.0 * per_node;
        f.start(t(0.0), PfsOp::Drain, total, 100.0);
        let full = f.next_completion(t(0.0)).unwrap().as_secs();
        // Suspend halfway.
        f.suspend_drain(t(full / 2.0));
        assert!(f.drain_pending());
        assert_eq!(f.active(), 0);
        assert!(f.next_completion(t(full / 2.0)).is_none());
        // A phase-1 commit now runs at full single-node speed.
        f.start(t(full / 2.0), PfsOp::Phase1, per_node, 1.0);
        let fin = f.next_completion(t(full / 2.0)).unwrap();
        let solo = pfs.single_node_write_secs(per_node);
        assert!((fin.as_secs() - full / 2.0 - solo).abs() < 1e-6);
        assert_eq!(f.take_completed(fin), vec![PfsOp::Phase1]);
        // Resume: the remaining half drains in the remaining half time.
        f.resume_drain(fin, 100.0);
        let fin2 = f.next_completion(fin).unwrap();
        assert!(
            (fin2.as_secs() - fin.as_secs() - full / 2.0).abs() / full < 1e-6,
            "resumed drain must take the remaining half, got {}",
            fin2.as_secs() - fin.as_secs()
        );
        assert_eq!(f.take_completed(fin2), vec![PfsOp::Drain]);
        assert!(!f.drain_pending());
    }

    #[test]
    fn void_drain_discards_suspended_state() {
        let mut f = fluid();
        f.start(t(0.0), PfsOp::Drain, 100.0 * GB, 10.0);
        f.suspend_drain(t(1.0));
        assert!(f.drain_pending());
        f.void_drain(t(1.0));
        assert!(!f.drain_pending());
        // Voiding an active drain works too.
        f.start(t(2.0), PfsOp::Drain, 100.0 * GB, 10.0);
        f.void_drain(t(3.0));
        assert!(!f.drain_pending());
        assert_eq!(f.active(), 0);
    }

    #[test]
    fn cancel_by_kind_removes_only_that_kind() {
        let mut f = fluid();
        f.start(t(0.0), PfsOp::Safeguard, 100.0 * GB, 10.0);
        f.start(t(0.0), PfsOp::Drain, 100.0 * GB, 10.0);
        f.cancel(t(1.0), PfsOp::Safeguard);
        assert_eq!(f.active(), 1);
        assert!(f.drain_pending());
        let fin = f.next_completion(t(1.0)).unwrap();
        assert_eq!(f.take_completed(fin), vec![PfsOp::Drain]);
    }

    #[test]
    fn reset_replays_like_a_fresh_instance() {
        let pfs = PfsModel::summit();
        let per_node = 10.0 * GB;
        let mut f = FluidPfs::new(&pfs, per_node);
        // Dirty every piece of state: a drain suspended mid-flight plus an
        // active commit.
        f.start(t(0.0), PfsOp::Drain, 100.0 * per_node, 100.0);
        f.suspend_drain(t(5.0));
        f.start(t(5.0), PfsOp::Phase1, per_node, 1.0);
        f.reset();
        assert_eq!(f.active(), 0);
        assert!(!f.drain_pending());
        assert_eq!(f.epoch(), 0);
        // The recycled instance reproduces a fresh one's timing exactly.
        f.start(t(0.0), PfsOp::Safeguard, 64.0 * per_node, 64.0);
        let fin = f.next_completion(t(0.0)).unwrap();
        let analytic = pfs.write_secs(64, per_node);
        assert!((fin.as_secs() - analytic).abs() / analytic < 1e-9);
        assert_eq!(f.take_completed(fin), vec![PfsOp::Safeguard]);
    }

    #[test]
    fn epoch_changes_on_mutation() {
        let mut f = fluid();
        let e0 = f.epoch();
        f.start(t(0.0), PfsOp::Phase1, GB, 1.0);
        assert!(f.epoch() > e0);
    }
}

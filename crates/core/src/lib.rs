//! `pckpt-core` — the paper's contribution: five C/R models and the
//! coordinated prioritized checkpointing (p-ckpt) protocol.
//!
//! The crate simulates an HPC application running under one of five
//! checkpoint/restart models (Secs. V & VII of the paper):
//!
//! | Model | Ingredients |
//! |-------|-------------|
//! | **B**  | periodic BB checkpointing + async PFS drain (no prediction) |
//! | **M1** | B + failure prediction + *safeguard* checkpoints (all nodes → PFS just-in-time) |
//! | **M2** | B + failure prediction + *live migration* (LM-C/R) |
//! | **P1** | B + failure prediction + **p-ckpt** (coordinated prioritized checkpointing) |
//! | **P2** | B + failure prediction + p-ckpt + LM (**hybrid p-ckpt**) |
//!
//! Module map:
//!
//! * [`config`] — model selection and all tunable parameters;
//! * [`oci`] — optimal checkpoint intervals: Young's formula (Eq. 1) and
//!   the LM-adjusted variant (Eq. 2) with the σ lead-time analysis;
//! * [`prefilter`] — the analytic pre-filter: grid cells whose
//!   LM-vs-p-ckpt crossover Eqs. (4)–(8) decide confidently are answered
//!   closed-form instead of simulated (`PCKPT_PREFILTER=analytic`);
//! * [`protocol`] — the p-ckpt round state machine: node-local priority
//!   queue (least lead time first), phase-1 prioritized vulnerable-node
//!   commits, phase-2 collective commit (Fig. 5);
//! * [`sim`] — the discrete-event C/R simulation of one run, built on
//!   `pckpt-desim`;
//! * [`metrics`] — the overhead ledger (checkpoint / recomputation /
//!   recovery), FT-ratio accounting, and cross-run aggregation;
//! * [`runner`] — Monte-Carlo driver: paired failure traces across
//!   models, deterministic per-run RNG streams, thread-parallel
//!   execution.

#![warn(missing_docs)]

pub mod config;
pub mod fingerprint;
pub mod frames;
pub mod iosim;
pub mod metrics;
pub mod oci;
pub mod prefilter;
pub mod protocol;
pub mod runner;
pub mod shard;
pub mod sim;
pub mod tracer;

pub use config::{ModelKind, SimParams};
pub use fingerprint::{
    campaign_fingerprint, campaign_fingerprints, cell_fingerprint, Canon, Fingerprint,
};
pub use metrics::{Aggregate, OverheadLedger, RunResult};
pub use prefilter::{AnalyticVerdict, Prefilter, DEFAULT_MARGIN};
pub use runner::{
    fold_cell_results, fold_cell_results_with, parse_runs_spec, parse_vr_spec, record_run,
    run_grid, run_grid_filtered,
    run_grid_with_cell_sink, run_many, run_models, splice_pruned, AdaptiveConfig, CampaignResult,
    CellFold, CellResults, GridCell, GridPlan, GridResult, GridWorker, RunArena, RunnerConfig,
    RunsSpec, ShardMeta, VrConfig,
};
pub use shard::{
    decode_frame, encode_frame, run_grid_sharded, run_grid_sharded_opts, run_shard_child,
    shard_child_config, shard_spec_from_env, ShardAssignment, ShardFrame, ShardLauncher,
    ShardOptions, ShardPlan, ShardSpec,
};
pub use sim::CrSim;

/// Test-only serialization of process-global environment mutation.
///
/// `std::env::set_var` is process-global while `cargo test` runs tests
/// concurrently, so two tests that mutate the same variable (or one that
/// mutates while another reads) race. Every test that calls `set_var` /
/// `remove_var` must hold this lock for its whole mutate–assert–restore
/// span. Not part of the public API.
#[doc(hidden)]
pub fn env_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    // A panic while holding the lock poisons it, but the env state it
    // guards is restored by each test's own cleanup; keep going.
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Re-export of the structured observability layer (recorders, metrics,
/// trace exporters) so downstream bins need only depend on `pckpt-core`.
pub use pckpt_simobs as obs;
